//! A tour of the `mpisim` runtime itself — the substrate the sorters run
//! on — independent of sorting: point-to-point messaging, collectives,
//! communicator splits, the virtual-time model, memory budgets, and
//! communication tracing.
//!
//! Run with: `cargo run --release --example mpisim_primer`

use mpisim::{NetModel, World};

/// Tag for the point-to-point ring exchange below. Tags are named constants
/// by convention (enforced by `tools/xlint`) so every tag assignment in the
/// workspace is searchable and collision-auditable.
const RING_TAG: u64 = 1;

fn main() {
    println!("mpisim primer: 8 ranks on 2 simulated 4-core nodes (Edison network model)\n");
    let world = World::new(8)
        .cores_per_node(4)
        .net(NetModel::edison())
        .trace(true);

    let report = world.run(|comm| {
        let rank = comm.rank();
        let p = comm.size();

        // -- point-to-point ring ------------------------------------------
        comm.trace_phase("ring");
        comm.send_val((rank + 1) % p, RING_TAG, rank as u64);
        let from_left: u64 = comm.recv_val((rank + p - 1) % p, RING_TAG);
        assert_eq!(from_left as usize, (rank + p - 1) % p);

        // -- collectives ---------------------------------------------------
        comm.trace_phase("collectives");
        let sum = comm.allreduce(rank as u64, |a, b| a + b);
        let prefix = comm.exscan(1u64, |a, b| a + b).unwrap_or(0);
        let everyone = comm.allgather(&[rank as u32]);
        assert_eq!(everyone.len(), p);

        // -- node-local communicators (the τm machinery) --------------------
        let (leaders, node_comm) = comm.refine_comm();
        let node_sum = node_comm.allreduce(rank, |a, b| a + b);
        let leader_count = leaders.map(|c| c.size());

        // -- virtual time ----------------------------------------------------
        // Computation advances only this rank's clock; messages carry
        // timestamps. After a barrier every clock has seen the slowest rank.
        if rank == 3 {
            comm.clock().charge(0.001); // pretend rank 3 did 1 ms of work
        }
        comm.barrier();
        let now = comm.clock().now();
        assert!(now >= 0.001, "the barrier propagated rank 3's clock");

        // -- memory budget ----------------------------------------------------
        // No budget configured here, so reservations always succeed.
        comm.try_alloc(1 << 20).expect("unlimited");
        comm.free(1 << 20);

        (sum, prefix, node_sum, leader_count, now)
    });

    let (sum, ..) = report.results[0];
    println!("allreduce(rank)       = {sum} (0+1+...+7)");
    for (rank, (_, prefix, node_sum, leaders, t)) in report.results.iter().enumerate() {
        println!(
            "rank {rank}: exscan(1) = {prefix}, node-local sum = {node_sum}, \
             node-leader comm = {:?}, clock = {:.3} ms",
            leaders,
            t * 1e3
        );
    }
    println!("\nmodelled makespan: {:.3} ms", report.makespan * 1e3);
    println!("messages: {} ({} bytes)", report.messages, report.bytes);
    println!("\ntraffic by phase (tracing enabled):");
    for (name, t) in &report.trace_phases {
        println!(
            "  {name:12} {:>5} messages, {:>5} inter-node, {:>8} bytes",
            t.total_messages(),
            t.internode_messages(&report.topology),
            t.total_bytes()
        );
    }
}
