//! BD-CATS-style cosmology post-processing (the paper's second science
//! use case).
//!
//! The BD-CATS clustering pipeline labels every simulation particle with
//! a cluster ID, then sorts the particles by that ID so each cluster's
//! members are contiguous — turning per-cluster analytics into linear
//! scans. Cluster populations follow a steep power law (δ ≈ 0.73 % of all
//! particles share the largest cluster), which is precisely the skew that
//! defeats duplicate-blind sorters. This example sorts particles by
//! cluster ID with SDS-Sort and computes per-cluster aggregates from the
//! contiguous layout.
//!
//! Run with: `cargo run --release --example cosmology_clustering`

use mpisim::World;
use sdssort::{sds_sort, SdsConfig};
use workloads::{cosmology_particles, Particle};

fn main() {
    let ranks = 16;
    let per_rank = 40_000;
    println!("cosmology clustering: {ranks} ranks x {per_rank} particles, sort by cluster ID\n");

    let world = World::new(ranks).cores_per_node(8);
    let report = world.run(|comm| {
        let particles: Vec<Particle> = cosmology_particles(per_rank, 99, comm.rank());
        let out = sds_sort(comm, particles, &SdsConfig::default()).expect("sort failed");

        // With cluster members contiguous, per-cluster aggregation is one
        // linear scan — the locality benefit the paper's intro motivates.
        let mut clusters = 0usize;
        let mut largest: (u64, usize) = (0, 0);
        let mut i = 0;
        while i < out.data.len() {
            let id = out.data[i].key;
            let mut j = i;
            let mut v = [0.0f64; 3];
            while j < out.data.len() && out.data[j].key == id {
                for (axis, vel) in v.iter_mut().zip(out.data[j].payload.vel) {
                    *axis += vel as f64;
                }
                j += 1;
            }
            let size = j - i;
            // NOTE: clusters spanning a rank boundary are counted on both
            // sides; a real pipeline would stitch boundary clusters with
            // one neighbour exchange.
            if size > largest.1 {
                largest = (id, size);
            }
            clusters += 1;
            i = j;
        }
        (out.data.len(), clusters, largest)
    });

    let total: usize = report.results.iter().map(|r| r.0).sum();
    assert_eq!(total, ranks * per_rank);
    let (big_id, big_size) = report
        .results
        .iter()
        .map(|r| r.2)
        .max_by_key(|&(_, s)| s)
        .expect("non-empty");
    println!("particles sorted:     {total}");
    println!(
        "clusters seen:        {} (rank-local segments)",
        report.results.iter().map(|r| r.1).sum::<usize>()
    );
    println!(
        "largest cluster:      id {big_id:#018x} with {big_size} particles ({:.2}% of all — paper δ: 0.73%)",
        big_size as f64 / total as f64 * 100.0
    );
    println!("modelled sort time:   {:.2} ms", report.makespan * 1e3);
    println!(
        "peak simulated mem:   {} on any rank",
        bytes(report.max_memory_high_water)
    );
}

fn bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KiB", b as f64 / 1024.0)
    }
}
