//! Exploring SDS-Sort's adaptive knobs (τm, τo, τs) — a miniature of the
//! paper's §4.1.1 parameter study.
//!
//! SDS-Sort decides three things at runtime: whether to merge each node's
//! data before the exchange (τm), whether to overlap the exchange with
//! local ordering (τo), and whether to merge or re-sort in the final
//! ordering step (τs). The right settings depend on the machine; this
//! example forces each knob both ways on the same workload and prints the
//! modelled times side by side, so you can see which regime your
//! configuration is in.
//!
//! Run with: `cargo run --release --example adaptive_tuning`

use mpisim::World;
use sdssort::{sds_sort, ComputeModel, SdsConfig};
use workloads::uniform_u64;

fn run(p: usize, n_rank: usize, tweak: impl Fn(&mut SdsConfig)) -> f64 {
    let mut cfg = SdsConfig::modeled(ComputeModel::calibrate());
    cfg.tau_m_bytes = 0;
    cfg.tau_o = 0;
    cfg.tau_s = usize::MAX;
    tweak(&mut cfg);
    let world = World::new(p).cores_per_node(8).compute_scale(0.0);
    world
        .run(|comm| {
            let data = uniform_u64(n_rank, 1, comm.rank());
            sds_sort(comm, data, &cfg).expect("sort failed");
        })
        .makespan
}

fn main() {
    let p = 32;
    let n_rank = 30_000;
    println!("adaptive-knob study: p = {p}, {n_rank} u64/rank (modelled times)\n");

    println!("τm — node-level merging before the exchange:");
    let t_merge = run(p, n_rank, |c| c.tau_m_bytes = usize::MAX);
    let t_direct = run(p, n_rank, |c| c.tau_m_bytes = 0);
    println!("  merge at node : {:>10.1} us", t_merge * 1e6);
    println!("  direct        : {:>10.1} us", t_direct * 1e6);
    println!(
        "  → {} wins at this message size (paper: merge wins below 160 MB/node on Edison)\n",
        if t_merge < t_direct {
            "merging"
        } else {
            "direct"
        }
    );

    println!("τo — overlap exchange with local ordering:");
    let t_overlap = run(p, n_rank, |c| c.tau_o = usize::MAX);
    let t_sync = run(p, n_rank, |c| c.tau_o = 0);
    println!("  overlapped    : {:>10.1} us", t_overlap * 1e6);
    println!("  synchronous   : {:>10.1} us", t_sync * 1e6);
    println!(
        "  → {} wins at p = {p} (paper: overlap wins below ~4096 ranks on Edison)\n",
        if t_overlap < t_sync {
            "overlap"
        } else {
            "synchronous"
        }
    );

    println!("τs — final local ordering by merge vs re-sort:");
    let t_kway = run(p, n_rank, |c| c.tau_s = usize::MAX);
    let t_resort = run(p, n_rank, |c| c.tau_s = 0);
    println!("  k-way merge   : {:>10.1} us", t_kway * 1e6);
    println!("  adaptive sort : {:>10.1} us", t_resort * 1e6);
    println!(
        "  → {} wins with {p} chunks (paper: merge wins below ~4000 chunks on Edison)\n",
        if t_kway < t_resort {
            "merging"
        } else {
            "sorting"
        }
    );

    // The paper's future work, implemented: probe the live machine and let
    // the library pick all three thresholds itself.
    println!("autotune — live micro-probes choosing all three thresholds:");
    let world = World::new(p).cores_per_node(8);
    let report = world.run(|comm| {
        let (cfg, probe) = sdssort::autotune::<u64, _>(comm, n_rank, &SdsConfig::default());
        if comm.rank() == 0 {
            println!(
                "  probes: direct {:.1}us vs node-merge {:.1}us | sync {:.1}us vs overlap {:.1}us | merge {:.1}us vs sort {:.1}us",
                probe.t_direct * 1e6,
                probe.t_node_merge * 1e6,
                probe.t_sync * 1e6,
                probe.t_overlap * 1e6,
                probe.t_merge_order * 1e6,
                probe.t_sort_order * 1e6,
            );
            println!(
                "  chosen: node-merge {}, overlap {}, final ordering by {}",
                if cfg.should_node_merge::<u64>(n_rank, comm.size()) { "ON" } else { "OFF" },
                if cfg.should_overlap(comm.size()) { "ON" } else { "OFF" },
                if cfg.should_merge_local(comm.size()) { "merge" } else { "sort" },
            );
        }
        // and the tuned config actually sorts:
        let data = uniform_u64(n_rank, 2, comm.rank());
        sdssort::sds_sort(comm, data, &cfg).expect("sort failed").data.len()
    });
    let total: usize = report.results.iter().sum();
    println!("  sorted {total} records with the autotuned configuration");
}
