//! PTF transient-detection pipeline (the paper's first science use case).
//!
//! The Palomar Transient Factory's automated pipeline scores every
//! detected object with a real-bogus classifier; ranking objects by that
//! score — a heavily duplicated `f32` — is how candidate transients are
//! short-listed. This example sorts a synthetic PTF catalog (δ ≈ 28 %) by
//! score with the *stable* variant, so equally scored objects keep their
//! detection order, then reports the top candidates.
//!
//! Run with: `cargo run --release --example ptf_pipeline`

use mpisim::World;
use sdssort::{sds_sort, SdsConfig};
use workloads::{ptf_scores, PtfObject};

fn main() {
    let ranks = 12;
    let per_rank = 50_000;
    println!(
        "PTF pipeline: {ranks} ranks x {per_rank} detections, stable sort by real-bogus score\n"
    );

    let world = World::new(ranks).cores_per_node(6);
    let report = world.run(|comm| {
        let catalog: Vec<PtfObject> = ptf_scores(per_rank, 7, comm.rank());
        // Stable sorting keeps equal-score objects in detection order —
        // no secondary key needed, which is SDS-Sort's selling point.
        let out = sds_sort(comm, catalog, &SdsConfig::stable()).expect("sort failed");
        out.data
    });

    // Highest scores live on the last non-empty ranks.
    let all: Vec<PtfObject> = report.results.into_iter().flatten().collect();
    assert_eq!(all.len(), ranks * per_rank);
    assert!(
        all.windows(2).all(|w| w[0].key <= w[1].key),
        "catalog must be score-ordered"
    );

    let dup = workloads::replication_ratio_pct(all.iter().map(|o| o.key));
    println!("replication ratio δ: {dup:.2}% (paper reports 28.02%)");

    println!("\ntop 10 transient candidates (highest real-bogus score):");
    for obj in all.iter().rev().take(10) {
        println!("  object {:>14} score {:.4}", obj.payload, obj.key.value());
    }

    // The bogus spike: count objects with the saturated zero score.
    let zeros = all.iter().filter(|o| o.key.value() == 0.0).count();
    println!(
        "\nsaturated-bogus objects: {zeros} ({:.1}% of catalog) — the duplicate mass \
         that breaks duplicate-blind sorters",
        zeros as f64 / all.len() as f64 * 100.0
    );
    println!("modelled sort time: {:.2} ms", report.makespan * 1e3);

    // When only a short-list is needed, distributed selection skips the
    // full sort entirely (sdssort::top_k on the same infrastructure).
    let world = World::new(ranks).cores_per_node(6);
    let sel = world.run(|comm| {
        let mut catalog: Vec<PtfObject> = ptf_scores(per_rank, 7, comm.rank());
        catalog.sort_unstable_by_key(|o| o.key);
        sdssort::top_k(comm, &catalog, 10)
    });
    let short_list = &sel.results[0];
    println!(
        "\ndistributed top-10 via selection (no full sort): best score {:.4}, modelled {:.2} ms",
        short_list[0].key.value(),
        sel.makespan * 1e3
    );
    assert_eq!(short_list.len(), 10);
}
