//! Quickstart: sort a distributed dataset with SDS-Sort.
//!
//! Spins up a simulated 8-rank world (2 nodes × 4 cores), generates
//! skewed data on every rank, runs the fast variant of SDS-Sort, and
//! verifies the result is a globally sorted permutation.
//!
//! Run with: `cargo run --release --example quickstart`

use mpisim::World;
use sdssort::{sds_sort, SdsConfig};
use workloads::zipf_keys;

fn main() {
    let ranks = 8;
    let records_per_rank = 100_000;

    println!("SDS-Sort quickstart: {ranks} ranks x {records_per_rank} Zipf-distributed keys");

    let world = World::new(ranks).cores_per_node(4);
    let report = world.run(|comm| {
        // Every rank generates its own share of a skewed dataset
        // (α = 0.9 ⇒ ~6.4% of all records carry the most popular key).
        let data = zipf_keys(records_per_rank, 0.9, 42, comm.rank());

        // τm = 0 keeps node-level merging off so every rank holds a slice
        // of the output (with merging on, node leaders hold everything —
        // see examples/adaptive_tuning.rs for the τ knobs).
        let mut cfg = SdsConfig::default();
        cfg.tau_m_bytes = 0;
        let out = sds_sort(comm, data, &cfg).expect("sort failed");

        println!(
            "  rank {:>2}: kept {:>7} records | pivot {:>9.1}us exchange {:>9.1}us order {:>9.1}us",
            comm.rank(),
            out.data.len(),
            out.stats.pivot_s * 1e6,
            out.stats.exchange_s * 1e6,
            out.stats.local_order_s * 1e6,
        );
        out.data
    });

    // Verify: concatenating rank outputs yields a globally sorted sequence.
    let mut total = 0usize;
    let mut last: Option<u64> = None;
    for (rank, slice) in report.results.iter().enumerate() {
        assert!(
            slice.windows(2).all(|w| w[0] <= w[1]),
            "rank {rank} not locally sorted"
        );
        if let (Some(prev), Some(&first)) = (last, slice.first()) {
            assert!(prev <= first, "rank boundary {rank} out of order");
        }
        if let Some(&l) = slice.last() {
            last = Some(l);
        }
        total += slice.len();
    }
    assert_eq!(total, ranks * records_per_rank);

    let loads: Vec<usize> = report.results.iter().map(Vec::len).collect();
    println!("\nglobally sorted: yes");
    println!("records total:   {total}");
    println!(
        "load balance:    RDFA = {:.4} (1.0 = perfect)",
        sdssort::rdfa(&loads)
    );
    println!(
        "modelled time:   {:.2} ms on the simulated machine",
        report.makespan * 1e3
    );
    println!("host wall time:  {:.0} ms", report.wall.as_secs_f64() * 1e3);
}
