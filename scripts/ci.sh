#!/usr/bin/env bash
# CI gate: format, lints, tests, and a metrics-emission smoke test.
#
# Works both online and in sealed containers. When crates.io is not
# reachable (no vendored registry), dev-dependencies (parking_lot, rand,
# proptest, criterion) are satisfied by the committed std-only stubs under
# devstubs/ via --config patch overrides; the library crates themselves
# have no external dependencies either way.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_OPTS=()
if ! cargo fetch --quiet 2>/dev/null; then
    echo "ci: crates.io unreachable, patching dev-deps to devstubs/"
    CARGO_OPTS+=(--offline)
    for dep in parking_lot rand proptest criterion; do
        CARGO_OPTS+=(--config "patch.crates-io.${dep}.path=\"devstubs/${dep}\"")
    done
fi

run() {
    echo "ci: $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets "${CARGO_OPTS[@]}" -- -D warnings
run cargo build --release --workspace "${CARGO_OPTS[@]}"
run cargo test -q --workspace "${CARGO_OPTS[@]}"

# Workspace source lint: dependency-free AST-driven semantic pass (SPMD
# rank-divergence, partition arithmetic, tag ranges, dispatcher blocking,
# plus the hygiene rules — see DESIGN.md §13). Exceptions live in
# xlint.allow with justifications; stale entries fail the run. Emits the
# versioned JSON report for CI artifact upload, then gates on the exit
# code (the --out report is written even when the run fails).
XLINT_REPORT="${XLINT_REPORT:-target/xlint-report.json}"
run cargo run --release -q "${CARGO_OPTS[@]}" -p xlint -- \
    --format json --out "$XLINT_REPORT"

# Happens-before determinism/race checker: re-run the runtime and sorter
# suites with vector-clock checking enabled for every simulated world.
run cargo test -q "${CARGO_OPTS[@]}" -p mpisim -p sdssort --features mpisim/check

# Miri over the unsafe-bearing modules (PlainData codecs, merge internals,
# radix scatter passes, pivot sampling). Best effort: needs a nightly
# toolchain with the miri component, which sealed containers may not have.
if cargo +nightly miri --version >/dev/null 2>&1; then
    run cargo +nightly miri test "${CARGO_OPTS[@]}" -p sdssort --lib -- external merge pivot radix
else
    echo "ci: miri unavailable (no nightly toolchain with miri component); skipping"
fi

# Smoke: sortcli must emit a metrics report that it can itself validate.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
run cargo run --release -q "${CARGO_OPTS[@]}" -p bench --bin sortcli -- \
    --sorter sds --workload zipf:1.4 --ranks 16 --records 2000 \
    --metrics-out "$tmp"
test -s "$tmp/BENCH_sortcli.json" || {
    echo "ci: sortcli did not write BENCH_sortcli.json" >&2
    exit 1
}
run cargo run --release -q "${CARGO_OPTS[@]}" -p bench --bin sortcli -- \
    --validate-metrics "$tmp/BENCH_sortcli.json"

# Threads-backend smoke: the real shared-memory backend (one OS thread per
# rank) must sort, validate, and emit a wall-clock metrics report that
# sortcli itself can validate. Small n so this stays sub-second.
run cargo run --release -q "${CARGO_OPTS[@]}" -p bench --bin sortcli -- \
    --backend threads --sorter sds --workload zipf:1.2 --ranks 4 \
    --records 5000 --metrics-out "$tmp/threads"
test -s "$tmp/threads/BENCH_sortcli.json" || {
    echo "ci: threads backend did not write BENCH_sortcli.json" >&2
    exit 1
}
run cargo run --release -q "${CARGO_OPTS[@]}" -p bench --bin sortcli -- \
    --validate-metrics "$tmp/threads/BENCH_sortcli.json"

# bench_quick smoke: the committed-BENCH producer must run end to end at
# its real sizes and validate its own emission (JSON parses, carries
# git_rev/backend meta — asserted inside the binary after read-back).
run env BENCH_METRICS_OUT="$tmp/quick" cargo run --release -q "${CARGO_OPTS[@]}" \
    -p bench --bin bench_quick
test -s "$tmp/quick/BENCH_pr8.json" || {
    echo "ci: bench_quick did not write BENCH_pr8.json" >&2
    exit 1
}

# Sockets-backend smoke: the distributed process-per-rank backend (one OS
# process per rank over Unix-domain sockets) must rendezvous, sort,
# validate, and emit a metrics report that sortcli itself can validate.
run cargo test -q "${CARGO_OPTS[@]}" -p sockcomm
run cargo run --release -q "${CARGO_OPTS[@]}" -p bench --bin sortcli -- \
    --backend sockets --transport uds --sorter sds --workload zipf:1.2 \
    --ranks 4 --records 5000 --metrics-out "$tmp/sockets"
test -s "$tmp/sockets/BENCH_sortcli.json" || {
    echo "ci: sockets backend did not write BENCH_sortcli.json" >&2
    exit 1
}
run cargo run --release -q "${CARGO_OPTS[@]}" -p bench --bin sortcli -- \
    --validate-metrics "$tmp/sockets/BENCH_sortcli.json"

# Backend equivalence: same seed => bit-identical sorted output on the
# simulator, the threads backend, and the sockets backend (the PR 5
# acceptance gate, extended to three columns in PR 8 and to the AMS-sort
# and HSS peer algorithms in PR 10).
run cargo test -q "${CARGO_OPTS[@]}" --test backend_equivalence

# Peer-algorithm suite (crates/algos): AMS-sort and Histogram Sort with
# Sampling correctness, the HSS (1+eps) part-size guarantee across the
# skew matrix, and collective OOM behavior.
run cargo test -q "${CARGO_OPTS[@]}" -p algos

# 4-way skew shoot-out smoke at p=4: all five sorters must complete every
# cell, HSS must honour its balance bound, and the emitted BENCH_pr10.json
# must read back with the git_rev/backend meta and all sorter columns
# (asserted inside the binary).
run env BENCH_METRICS_OUT="$tmp/shootout" cargo run --release -q "${CARGO_OPTS[@]}" \
    -p bench --bin shootout_pr10 -- --ranks 4
test -s "$tmp/shootout/BENCH_pr10.json" || {
    echo "ci: shootout_pr10 did not write BENCH_pr10.json" >&2
    exit 1
}

# Resident-service smoke: the long-lived SortService (persistent rank
# pool, bounded queue, arena reuse) must absorb a concurrent Zipf-sized
# job burst from several clients and emit a self-describing experiment
# document. The service suite also proves equivalence with one-shot runs
# and graceful degradation under an injected pressure ramp.
run cargo test -q "${CARGO_OPTS[@]}" -p service
run cargo run --release -q "${CARGO_OPTS[@]}" -p bench --bin svc_bench -- \
    --ranks 4 --clients 4 --jobs 16 --records 4000 \
    --metrics-out "$tmp/svc"
test -s "$tmp/svc/BENCH_svc.json" || {
    echo "ci: svc_bench did not write BENCH_svc.json" >&2
    exit 1
}

# Faults smoke: the sort must survive heavy deterministic fault injection,
# and graceful degradation must complete (spilling) where the plain driver
# would OOM under the memory-pressure ramp.
run cargo test -q "${CARGO_OPTS[@]}" -p mpisim --test faults_and_deadlock
run cargo run --release -q "${CARGO_OPTS[@]}" -p bench --bin sortcli -- \
    --sorter sds --workload zipf:1.2 --ranks 8 --records 3000 \
    --faults seed=7,delay=0.5:1e-4,reorder=0.3:8,stall=2:0.3:1e-4 \
    --collective-timeout 60
run cargo run --release -q "${CARGO_OPTS[@]}" -p bench --bin sortcli -- \
    --sorter sds --workload adversarial --ranks 6 --cores 1 \
    --records 4000 --budget 60000 --faults seed=7,ramp=0:0:0.5 \
    --resilient "$tmp/spill"

echo "ci: all checks passed"
