#!/usr/bin/env bash
# Quick real-execution benchmark: a small threads-backend weak-scaling
# sweep (p = 1..8, uniform u64 keys) emitting wall-clock numbers to
# BENCH_pr5.json. Usage: scripts/bench_quick.sh [out-dir]   (default
# out/metrics). Finishes in seconds; no simulator involved.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-out/metrics}"
mkdir -p "$out"
BENCH_METRICS_OUT="$out" cargo run --release -q -p bench --bin bench_quick
test -s "$out/BENCH_pr5.json" || {
    echo "bench_quick: no BENCH_pr5.json written" >&2
    exit 1
}
echo "bench_quick: wrote $out/BENCH_pr5.json"
