#!/usr/bin/env bash
# Quick real-execution benchmark: a small threads-backend weak-scaling
# sweep (p = 1..8, uniform u64 keys) plus a resident SortService load
# burst, emitting wall-clock numbers to BENCH_pr7.json. Usage:
# scripts/bench_quick.sh [out-dir]   (default: the repo root, so the
# committed BENCH file lands next to the sources that produced it).
# Finishes in seconds; no simulator involved.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-.}"
mkdir -p "$out"
BENCH_METRICS_OUT="$out" cargo run --release -q -p bench --bin bench_quick
test -s "$out/BENCH_pr7.json" || {
    echo "bench_quick: no BENCH_pr7.json written" >&2
    exit 1
}
echo "bench_quick: wrote $out/BENCH_pr7.json"
