#!/usr/bin/env bash
# Quick real-execution benchmark: a small weak-scaling sweep (p = 1..8,
# uniform u64 keys) run on both the threads backend and the sockets
# backend (one OS process per rank over Unix-domain sockets), plus a
# resident SortService load burst, emitting wall-clock numbers to
# BENCH_pr8.json. Usage: scripts/bench_quick.sh [out-dir]   (default:
# the repo root, so the committed BENCH file lands next to the sources
# that produced it). Finishes in seconds; no simulator involved.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-.}"
mkdir -p "$out"
BENCH_METRICS_OUT="$out" cargo run --release -q -p bench --bin bench_quick
test -s "$out/BENCH_pr8.json" || {
    echo "bench_quick: no BENCH_pr8.json written" >&2
    exit 1
}
echo "bench_quick: wrote $out/BENCH_pr8.json"
