//! Offline stub of `criterion` covering the surface this workspace uses:
//! `Criterion::default().sample_size(..)`, `benchmark_group`, `throughput`,
//! `bench_function`, `bench_with_input`, `BenchmarkId::new`, `b.iter`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark closure runs a fixed handful of iterations and prints a
//! rough ns/iter figure — enough to compile and smoke-run `cargo bench`
//! offline, not for real measurements.

use std::fmt;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    group: String,
    param: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { group: function_name.into(), param: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.group, self.param)
    }
}

/// Accepted by `bench_function`: a plain string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.to_string()
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Bencher {
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            black_box(f());
        }
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into_id(), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.into_id()), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    // Warm-up pass, then one timed pass of a few iterations.
    let mut b = Bencher { iters: 1 };
    f(&mut b);
    let iters = 5u64;
    let mut b = Bencher { iters };
    let t0 = Instant::now();
    f(&mut b);
    let per_iter = t0.elapsed().as_nanos() as f64 / iters as f64;
    println!("{label:<52} ~{per_iter:>12.0} ns/iter (devstub)");
}

/// `criterion_group!` — both the struct form (`name = ...; config = ...;
/// targets = ...`) and the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
