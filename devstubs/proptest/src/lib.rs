//! Offline stub of `proptest` covering the surface this workspace uses:
//! `proptest!` with `#![proptest_config(...)]`, `prop_assert*`, `any::<T>()`,
//! integer range strategies, and `collection::vec` (exact, range, and
//! inclusive-range sizes, nestable).
//!
//! Cases are generated from a deterministic per-test seed. There is no
//! shrinking: a failing case panics with its generated arguments.

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub mod test_runner {
    use std::fmt;

    /// Deterministic case generator (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            Self { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration (only the fields this workspace sets).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// Failure raised by `prop_assert*`; carried out of the case body.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            // FNV-1a over the test name: stable across runs, distinct per test.
            let mut seed = 0xCBF2_9CE4_8422_2325u64;
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01B3);
            }
            Self { config, seed }
        }

        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        pub fn rng_for_case(&self, case: u32) -> TestRng {
            TestRng::new(self.seed ^ ((case as u64) << 32 | 0xA5A5))
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Value generator. Unlike real proptest there is no value tree or
    /// shrinking — `generate` produces a concrete value directly.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `Just` for completeness (cheap, occasionally handy in new tests).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn generate(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn generate(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    /// Arbitrary bit patterns — includes NaN, infinities, subnormals.
    impl Arbitrary for f64 {
        fn generate(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: exact, `lo..hi`, or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_incl: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi_incl: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_incl - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `proptest!` block: optional `#![proptest_config(expr)]` followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let runner =
                $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            for __case in 0..runner.cases() {
                let mut __rng = runner.rng_for_case(__case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __desc = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\n    with {}",
                        __case,
                        runner.cases(),
                        e,
                        __desc
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right` ({})\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left != right`\n  both: `{:?}`",
                    __l
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 2usize..6, y in -3i64..=3, b in any::<bool>()) {
            prop_assert!((2..6).contains(&x));
            prop_assert!((-3..=3).contains(&y));
            prop_assert!(b || !b);
        }

        #[test]
        fn vec_sizes_respected(
            exact in vec(any::<u32>(), 5),
            ranged in vec(0u8..4, 1..9),
            nested in vec(vec(any::<u64>(), 0..3), 2..4),
        ) {
            prop_assert_eq!(exact.len(), 5);
            prop_assert!((1..9).contains(&ranged.len()));
            prop_assert!(ranged.iter().all(|&v| v < 4));
            prop_assert!((2..4).contains(&nested.len()));
            prop_assert!(nested.iter().all(|inner| inner.len() < 3));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::{ProptestConfig, TestRunner};
        let mk = || TestRunner::new(ProptestConfig::default(), "fixed");
        let a = (0u64..1000).generate(&mut mk().rng_for_case(3));
        let b = (0u64..1000).generate(&mut mk().rng_for_case(3));
        assert_eq!(a, b);
    }
}
