//! Offline stub of `rand` 0.8 covering the surface this workspace uses:
//! `prelude::*` (`Rng`, `SeedableRng`, `StdRng`, `SliceRandom`),
//! `gen`, `gen_bool`, `gen_range` over integer and float ranges.
//!
//! Deterministic per seed (SplitMix64), but the streams differ from the
//! real `rand` crate — callers must not depend on golden values.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{Rng, SeedableRng, SliceRandom, StdRng};
}

pub mod rngs {
    pub use crate::StdRng;
}

/// Seedable generator (subset of the real trait: only `seed_from_u64`,
/// which is the sole constructor this workspace calls).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 — tiny, full-period-per-seed, passes basic avalanche tests.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        Self { state: state.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }
}

impl StdRng {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_u64(raw: u64) -> Self { raw as $t }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_u64(raw: u64) -> Self {
        // Double-pump via a fixed mix; adequate for a stub.
        let hi = raw.wrapping_mul(0xD129_0D3E_AFA5_6F4D) ^ raw.rotate_left(17);
        ((hi as u128) << 64) | raw as u128
    }
}

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 random bits, like the real crate.
    fn from_u64(raw: u64) -> Self {
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in [0, 1) with 24 random bits.
    fn from_u64(raw: u64) -> Self {
        (raw >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly sampleable over a range. The `SampleRange` impls below
/// are blanket over `Range<T>`/`RangeInclusive<T>` so that integer-literal
/// ranges unify with the surrounding expression's type, as with real rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample from `[lo, hi)` (`inclusive: false`) or `[lo, hi]`.
    fn sample_between(lo: Self, hi: Self, inclusive: bool, raw: u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: Self, hi: Self, inclusive: bool, raw: u64) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let off = (raw as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: Self, hi: Self, _inclusive: bool, raw: u64) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + <$t as Standard>::from_u64(raw) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, raw: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, raw: u64) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, raw)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, raw: u64) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, raw)
    }
}

/// The user-facing generator trait (subset of the real `Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        <f64 as Standard>::from_u64(self.next_u64()) < p
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self.next_u64())
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Slice helpers (subset of the real trait).
pub trait SliceRandom {
    type Item;
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let f: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: usize = r.gen_range(0..=3);
            assert!(u <= 3);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
