//! Offline stub of `parking_lot` backed by `std::sync`. Covers the surface
//! this workspace uses: `Mutex`, `Condvar::{new, notify_one, notify_all,
//! wait, wait_for}`, `RwLock`. Poisoning is swallowed (parking_lot never
//! poisons).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Mutex with parking_lot's non-poisoning `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`]. Wraps the std guard in an `Option`
/// so [`Condvar::wait_for`] can temporarily take ownership of it.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        // Any poison flag is irrelevant with exclusive access.
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside wait")
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with parking_lot's `&mut guard` wait signatures.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// RwLock with parking_lot's non-poisoning signatures.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}
