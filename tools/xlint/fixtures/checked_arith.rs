// xlint fixture: the sanctioned spellings of everything
// unchecked_arith.rs does wrong, plus the benign shapes the rule must
// not flag. Zero unchecked-partition-arith findings. Never compiled.

fn scaled_index(counts: &mut [usize], b: usize, g: usize, me: usize) {
    let dst = b
        .checked_mul(g)
        .and_then(|bg| bg.checked_add(me % g))
        .expect("destination rank fits: b < k and k*g == p");
    counts[dst] = 1;
}

fn tail_window(merged: &[u64], keep: usize) -> &[u64] {
    let lo = merged
        .len()
        .checked_sub(keep)
        .expect("merged holds both halves, so len >= keep");
    &merged[lo..]
}

fn interpolated_cut(data: &[u64], num: usize, den: usize) -> (&[u64], &[u64]) {
    // Widening to u128 is the PR 2 fix: the product cannot wrap.
    let cut = (num as u128 * data.len() as u128 / den as u128) as usize;
    data.split_at(cut)
}

fn benign_shapes(v: &[u64], i: usize, k: usize, runs: &[u64], hist: &mut [u64]) {
    // Literal-scaled and literal-offset arithmetic is exempt: the loser
    // tree (`2 * j`) and cut-table (`i + k + 1`) idioms cannot overflow
    // before the allocation itself fails.
    let _w = v[2 * i];
    let _c = v[i + k + 1];
    let _last = runs[runs.len() - 1];
    // Clamped indices are mitigated by construction.
    hist[(i).min(hist.len() - 1)] += 1;
}
