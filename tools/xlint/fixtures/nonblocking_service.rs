// xlint fixture: the sanctioned non-blocking spellings for the resident
// service — try_recv draining, condvar waits with deadlines on the
// mailbox, and methods that merely *contain* the banned names. Zero
// blocking-in-dispatcher findings. Never compiled.

fn drain(rx: &mpsc::Receiver<Outcome>) {
    while let Ok(outcome) = rx.try_recv() {
        dispatch(outcome);
    }
}

fn wait_on_mailbox(mailbox: &Mailbox) {
    // The mailbox owns the sanctioned block point: a condvar wait with a
    // deadline, under the dispatcher's control.
    mailbox.wait_until_nonempty_or(deadline());
}

fn lookalike_names(pool: &RankPool) {
    // An object's own `sleep`/`park`/`recv` methods are not std blocking
    // primitives... except `.recv()`, which the rule bans by shape: any
    // blocking receive in this crate needs an allowlist justification.
    pool.quiesce();
    let _stats = pool.park_stats();
}
