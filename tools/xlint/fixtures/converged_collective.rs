// xlint fixture: the sanctioned SPMD spellings of everything
// divergent_collective.rs does wrong — every rank reaches every
// collective; only *data* depends on rank. Must produce zero
// rank-divergent-collective findings. Never compiled.

fn data_dependent_bcast(comm: &Comm, root: usize) {
    let rank = comm.rank();
    // The branch lives inside the call's argument list: every rank still
    // reaches the bcast itself.
    let _v = comm.bcast(root, if rank == root { Some(vec![1u64]) } else { None });
}

fn color_by_rank_split(comm: &Comm) {
    let rank = comm.rank();
    // The color-by-rank idiom: rank picks the color, but split is a
    // collective every rank enters.
    let _sub = comm.split(if rank % 2 == 0 { Some(0) } else { Some(1) }, rank as i64);
}

fn unconditional_rounds(comm: &Comm, p: usize) {
    // Trip count depends on the world size, identical on every rank.
    for _round in 0..p {
        let _ = comm.allreduce(1u64, |a, b| a + b);
    }
}

fn rank_branch_without_collectives(comm: &Comm, dst: usize) {
    let rank = comm.rank();
    if rank == 0 {
        // Point-to-point inside a rank branch is the correct pattern.
        comm.send_val(dst, PIVOT_TAG, 42u64);
    } else if rank == dst {
        let _: u64 = comm.recv_val(0, PIVOT_TAG);
    }
    comm.barrier();
}

fn string_split_is_not_a_collective(line: &str, rank: usize) {
    if rank == 0 {
        // `str::split` takes one argument; `Communicator::split` takes
        // two. Arity keeps this out of the collective table.
        let _parts: Vec<&str> = line.split(',').collect();
        let _sum = [1u64].iter().copied().reduce(|a, b| a + b);
    }
}
