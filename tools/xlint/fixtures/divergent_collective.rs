// xlint fixture: rank-divergent collectives — the static mirror of the
// PR 2 deadlock test (mpisim's runtime detector catches `if rank == 0 {
// barrier() }` when a seed happens to schedule it; this pass catches the
// shape on every path). Scanned under an algorithm-crate path by
// tools/xlint/tests/fixtures.rs; never compiled.

fn root_only_barrier(comm: &Comm) {
    let rank = comm.rank();
    if rank == 0 {
        comm.barrier(); // rank-divergent-collective: other ranks never arrive
    }
}

fn leader_bcast(comm: &Comm, my_rank: usize) {
    if my_rank < 2 {
        let _v = comm.bcast(0, None); // rank-divergent-collective
    } else {
        cleanup();
    }
}

fn rank_bounded_rounds(comm: &Comm) {
    let me = comm.rank();
    for _round in 0..me {
        let _ = comm.allreduce(1u64, |a, b| a + b); // rank-divergent-collective: trip count differs per rank
    }
}

fn rank_match_split(comm: &Comm, rank: usize) {
    match rank % 2 {
        0 => {
            let _sub = comm.split_shared_node(); // rank-divergent-collective
        }
        _ => idle(),
    }
}

fn nested_divergence(comm: &Comm, rank: usize, ready: bool) {
    if rank == 0 {
        if ready {
            comm.alltoall(&[0u64]); // rank-divergent-collective: outer branch is rank-dependent
        }
    }
}
