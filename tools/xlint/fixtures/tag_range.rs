// xlint fixture: user-tag-range violations — tags wandering into the
// reserved collective space (>= 2^48) and reserved-tag RawComm calls
// outside the backend substrate. Scanned under an algorithm-crate path
// by tools/xlint/tests/fixtures.rs; never compiled.

const BASE_TAG: u64 = 1 << 47;
const PROBE_TAG: u64 = BASE_TAG + BASE_TAG; // user-tag-range: lands exactly on 2^48
const STEAL_TAG: u64 = MAX_USER_TAG + 3; // user-tag-range: reserved space by construction

fn reserved_literal(comm: &Comm) {
    comm.send_val(1, 281474976710656u64, 9u64); // user-tag-range (and tag-discipline: literal)
}

fn reserved_const(comm: &Comm) {
    comm.send_val(1, PROBE_TAG, 9u64); // user-tag-range: const chain evaluates to 2^48
}

fn raw_surface(comm: &Comm) {
    let _t = comm.next_coll_tag(); // user-tag-range: reserved-tag plumbing
    comm.send_raw(0, BASE_TAG, vec![1u64]); // user-tag-range: RawComm bypasses the check
}
