// xlint fixture: blocking calls inside the resident service — each one
// parks a pool rank or the dispatcher itself, defeating the bounded
// mailbox's backpressure. Scanned under a crates/service path by
// tools/xlint/tests/fixtures.rs; never compiled.

fn drain_with_sleep(queue: &JobQueue) {
    while queue.is_empty() {
        std::thread::sleep(std::time::Duration::from_millis(10)); // blocking-in-dispatcher
    }
}

fn wait_for_outcome(rx: &mpsc::Receiver<Outcome>) -> Outcome {
    rx.recv().expect("worker holds the sender") // blocking-in-dispatcher
}

fn poll_with_deadline(rx: &mpsc::Receiver<Outcome>) {
    let _ = rx.recv_timeout(std::time::Duration::from_secs(1)); // blocking-in-dispatcher
    std::thread::park(); // blocking-in-dispatcher
}
