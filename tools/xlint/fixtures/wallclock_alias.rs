// xlint fixture: the `wallclock` alias false-negative regression anchor.
//
// The pre-AST token rule matched the surface name `Instant`, so renaming
// the import evaded it entirely — this file produced ZERO findings under
// the old linter. The AST pass resolves names through the `use` tree, so
// it must flag the binding and both renamed uses. Scanned by
// tools/xlint/tests/fixtures.rs under a virtual-time path; never compiled.

use std::time::Instant as Stopwatch; // wallclock: binding renames std::time::Instant
use std::thread::sleep as nap; // wallclock: binding renames std::thread::sleep

fn evasive_timing() {
    let _t = Stopwatch::now(); // wallclock: resolves to std::time::Instant
    nap(std::time::Duration::from_millis(1)); // wallclock: resolves to thread::sleep
}
