// xlint fixture: the sanctioned spellings of everything banned_patterns.rs
// does wrong. Scanned under the same fake scoped paths and must produce zero
// violations. Never compiled.

const PIVOT_TAG: u64 = 7;

fn virtual_time(clock: &mut VirtualClock) {
    clock.charge(1e-3);
}

fn seqcst(x: &std::sync::atomic::AtomicU64) {
    let _ = x.load(std::sync::atomic::Ordering::SeqCst);
}

fn documented_unsafe(p: *const u8, n: usize) -> u8 {
    assert!(n > 0);
    // SAFETY: caller guarantees p points to n > 0 readable bytes; asserted
    // non-empty above, so reading the first byte is in bounds.
    unsafe { *p }
}

fn expect_with_invariant(x: Option<u8>) {
    let _ = x.expect("slot was filled by the loop above");
}

fn named_tag(comm: &Comm) {
    comm.send_val(1, PIVOT_TAG, 0u64);
    let _ = comm.recv_any::<u64>(PIVOT_TAG);
}

fn seeded(seed: u64) {
    let _rng = StdRng::seed_from_u64(seed);
}
