// xlint fixture: sanctioned tag usage — named constants safely below the
// reserved boundary, const chains that stay in user space, and large
// non-tag constants (hash mixers, sign masks) that the name filter must
// ignore. Zero user-tag-range findings. Never compiled.

const BASE_TAG: u64 = 1 << 20;
const PIVOT_TAG: u64 = BASE_TAG + 1;
const CARVE_TAG: u64 = BASE_TAG + 2;
// Large by nature, but not tags: outside the rule's name filter.
const HASH_MIX: u64 = 0x9E37_79B9_7F4A_7C15;
const SIGN_MASK: u64 = 0x8000_0000_0000_0000;

fn user_space_tags(comm: &Comm) {
    comm.send_val(1, PIVOT_TAG, 9u64);
    let _: u64 = comm.recv_val(0, CARVE_TAG);
    let _ = comm.recv_any::<u64>(BASE_TAG);
}

fn runtime_tags(comm: &Comm, round: u64) {
    // Runtime tag arithmetic is out of static reach; the dynamic check in
    // comm::check_user_tag covers it.
    comm.send_val(1, BASE_TAG + round, 9u64);
}
