// xlint fixture: unchecked partition arithmetic — the PR 2 / PR 7 bug
// class (splitter interpolation overflow, merge-cut underfill,
// radix-carve overshoot). Scanned under a partition-arithmetic path by
// tools/xlint/tests/fixtures.rs; never compiled.

fn scaled_index(counts: &mut [usize], b: usize, g: usize, me: usize) {
    counts[b * g + (me % g)] = 1; // unchecked-partition-arith: b*g can wrap
}

fn tail_window(merged: &[u64], keep: usize) -> &[u64] {
    &merged[merged.len() - keep..] // unchecked-partition-arith: underflows when keep > len
}

fn interpolated_cut(data: &[u64], num: usize, den: usize) -> (&[u64], &[u64]) {
    data.split_at(num * data.len() / den) // unchecked-partition-arith: product wraps before the divide
}
