// xlint fixture: seeded violations, one per rule. This file is excluded from
// the workspace walk (see SKIP_DIRS in tools/xlint/src/lib.rs) and is scanned
// by tools/xlint/tests/fixtures.rs under fake scoped paths to prove each rule
// fires on real source text. It is never compiled.

use std::time::Instant; // wallclock

fn wallclock() {
    let _t = Instant::now(); // wallclock
    std::thread::sleep(std::time::Duration::from_millis(1)); // wallclock
}

fn relaxed(x: &std::sync::atomic::AtomicU64) {
    let _ = x.load(std::sync::atomic::Ordering::Relaxed); // relaxed-ordering
}

fn undocumented_unsafe(p: *const u8) -> u8 {
    unsafe { *p } // safety-comment: no SAFETY comment above
}

fn unwraps(x: Option<u8>, msg: &str) {
    let _ = x.unwrap(); // no-unwrap
    let _ = x.expect(msg); // no-unwrap: non-literal message
}

fn literal_tag(comm: &Comm) {
    comm.send_val(1, 7, 0u64); // tag-discipline
    let _ = comm.recv_any::<u64>(3); // tag-discipline
    comm.isend(0, 281474976710656, 0u64); // tag-discipline: 2^48 is reserved
}

fn entropy() {
    let _rng = rand::thread_rng(); // workload-determinism
}
