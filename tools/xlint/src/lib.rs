//! xlint: a dependency-free, AST-driven semantic linter for this
//! workspace's simulation and SPMD-protocol invariants.
//!
//! The pipeline is [`lexer`] (tokens with `line:col` spans) → [`ast`] (a
//! structural parse: items, `use`-alias resolution, branch/loop/match
//! bodies) → [`rules`] (the catalog of passes) → [`diag`] (structured
//! diagnostics and the `--format json` report). Rules operate on parsed
//! structure, not text matching: `// unsafe` in a comment never trips a
//! rule, `use std::time::Instant as T` cannot evade `wallclock`, and the
//! rank-divergence pass reasons about lexical containment that token
//! streams cannot express. See [`rules`] for the catalog and [`config`]
//! for the `xlint.allow` format.
//!
//! The tool is dependency-free on purpose: this workspace builds offline
//! (every external crate is a std-only stub), so the parser and JSON
//! support live in-tree, sized to exactly what the passes need.

pub mod ast;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::AllowEntry;
use diag::Diagnostic;

/// Result of scanning a workspace root.
#[derive(Debug, Default)]
pub struct Report {
    /// Diagnostics not covered by any allowlist entry, sorted by
    /// path/line/col.
    pub diagnostics: Vec<Diagnostic>,
    /// Count of diagnostics suppressed by the allowlist.
    pub suppressed: usize,
    /// Allowlist entries that suppressed nothing (each is an error: the
    /// allowlist may only shrink).
    pub stale: Vec<AllowEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Allowlist parse diagnostics (fatal).
    pub config_errors: Vec<String>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.stale.is_empty() && self.config_errors.is_empty()
    }

    /// The report in the versioned machine-readable schema.
    pub fn to_json(&self) -> String {
        diag::report_to_json(self)
    }
}

/// Directories never descended into, relative to the workspace root.
const SKIP_DIRS: [&str; 4] = ["target", "devstubs", ".git", "tools/xlint/fixtures"];

/// Lint a single file's contents under its workspace-relative path.
/// Applies rule scopes but no allowlist — used by rule tests and fixtures.
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    rules::check_file(rel_path, src)
}

/// Walk the workspace at `root`, lint every `.rs` file, and apply the
/// allowlist at `<root>/xlint.allow` (absence means an empty allowlist).
pub fn scan_root(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();

    let allow = match fs::read_to_string(root.join("xlint.allow")) {
        Ok(text) => match config::parse_allowlist(&text) {
            Ok(entries) => entries,
            Err(errors) => {
                report.config_errors = errors;
                return Ok(report);
            }
        },
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut used = vec![false; allow.len()];

    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    for path in files {
        let rel = path
            .strip_prefix(root)
            .expect("collect_rs_files yields paths under root")
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        for d in rules::check_file(&rel, &src) {
            let hit = allow
                .iter()
                .position(|entry| entry.matches(d.rule, &d.path));
            match hit {
                Some(i) => {
                    used[i] = true;
                    report.suppressed += 1;
                }
                None => report.diagnostics.push(d),
            }
        }
    }

    report.stale = allow
        .into_iter()
        .zip(used)
        .filter_map(|(entry, was_used)| if was_used { None } else { Some(entry) })
        .collect();
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .expect("walk stays under root")
            .to_string_lossy()
            .replace('\\', "/");
        if entry.file_type()?.is_dir() {
            if SKIP_DIRS.contains(&rel.as_str()) || entry.file_name().to_string_lossy() == ".git" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
