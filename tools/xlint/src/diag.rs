//! Structured diagnostics shared by every rule, and the machine-readable
//! `--format json` emission consumed by CI.
//!
//! A [`Diagnostic`] is the unit all passes produce: rule id, exact
//! `path:line:col` span, message, and an optional suggestion (the concrete
//! sanctioned spelling). The JSON document is stable and versioned so CI
//! can archive reports as artifacts and diff them across revisions; the
//! bundled [`json`] mini-parser exists so tests (and `--validate-report`
//! style tooling) can round-trip the schema without external crates — this
//! tool stays dependency-free by design.

use std::fmt;

/// One rule finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Rule id (stable, used in the allowlist).
    pub rule: &'static str,
    /// Human-readable explanation of the violated invariant.
    pub msg: String,
    /// The sanctioned spelling, when there is a mechanical one.
    pub suggestion: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.msg
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n    help: {s}")?;
        }
        Ok(())
    }
}

/// Append a JSON string literal (with escaping) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize a full report to the versioned JSON schema:
///
/// ```json
/// {
///   "version": 1,
///   "files_scanned": 120,
///   "suppressed": 7,
///   "clean": false,
///   "diagnostics": [
///     {"path": "...", "line": 3, "col": 9, "rule": "wallclock",
///      "message": "...", "suggestion": "..." | null}
///   ],
///   "stale_allow_entries": [
///     {"rule": "...", "path_prefix": "...", "allow_line": 12}
///   ],
///   "config_errors": ["..."]
/// }
/// ```
pub fn report_to_json(report: &crate::Report) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"clean\": {},\n",
        report.files_scanned,
        report.suppressed,
        report.is_clean()
    ));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"path\": ");
        push_json_str(&mut out, &d.path);
        out.push_str(&format!(
            ", \"line\": {}, \"col\": {}, \"rule\": ",
            d.line, d.col
        ));
        push_json_str(&mut out, d.rule);
        out.push_str(", \"message\": ");
        push_json_str(&mut out, &d.msg);
        out.push_str(", \"suggestion\": ");
        match &d.suggestion {
            Some(s) => push_json_str(&mut out, s),
            None => out.push_str("null"),
        }
        out.push('}');
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str("  \"stale_allow_entries\": [");
    for (i, e) in report.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"rule\": ");
        push_json_str(&mut out, &e.rule);
        out.push_str(", \"path_prefix\": ");
        push_json_str(&mut out, &e.path_prefix);
        out.push_str(&format!(", \"allow_line\": {}}}", e.line));
    }
    if !report.stale.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str("  \"config_errors\": [");
    for (i, e) in report.config_errors.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_str(&mut out, e);
    }
    out.push_str("]\n}\n");
    out
}

/// A minimal JSON value model + parser, used to round-trip the report
/// schema in tests without external dependencies.
pub mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(m) => m.get(key),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// Parse a JSON document. Errors carry a byte offset.
    pub fn parse(src: &str) -> Result<Value, String> {
        let b = src.as_bytes();
        let mut i = 0usize;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at offset {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
        if *i < b.len() && b[*i] == c {
            *i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {i}", c as char))
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                let mut m = BTreeMap::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(Value::Obj(m));
                }
                loop {
                    skip_ws(b, i);
                    let k = string(b, i)?;
                    skip_ws(b, i);
                    expect(b, i, b':')?;
                    m.insert(k, value(b, i)?);
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            break;
                        }
                        _ => return Err(format!("expected `,` or `}}` at offset {i}")),
                    }
                }
                Ok(Value::Obj(m))
            }
            Some(b'[') => {
                *i += 1;
                let mut v = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(Value::Arr(v));
                }
                loop {
                    v.push(value(b, i)?);
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            break;
                        }
                        _ => return Err(format!("expected `,` or `]` at offset {i}")),
                    }
                }
                Ok(Value::Arr(v))
            }
            Some(b'"') => Ok(Value::Str(string(b, i)?)),
            Some(b't') if b[*i..].starts_with(b"true") => {
                *i += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*i..].starts_with(b"false") => {
                *i += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*i..].starts_with(b"null") => {
                *i += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *i;
                while *i < b.len()
                    && (b[*i].is_ascii_digit() || matches!(b[*i], b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    *i += 1;
                }
                std::str::from_utf8(&b[start..*i])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(Value::Num)
                    .ok_or_else(|| format!("bad number at offset {start}"))
            }
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        expect(b, i, b'"')?;
        let mut s = String::new();
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Ok(s);
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*i + 1..*i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at offset {i}"))?;
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        _ => return Err(format!("bad escape at offset {i}")),
                    }
                    *i += 1;
                }
                c => {
                    // Copy the full UTF-8 sequence through unchanged.
                    let len = match c {
                        c if c < 0x80 => 1,
                        c if c >= 0xF0 => 4,
                        c if c >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = b
                        .get(*i..*i + len)
                        .and_then(|ch| std::str::from_utf8(ch).ok())
                        .ok_or_else(|| format!("bad utf-8 at offset {i}"))?;
                    s.push_str(chunk);
                    *i += len;
                }
            }
        }
        Err("unterminated string".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_span_and_rule() {
        let d = Diagnostic {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 14,
            rule: "wallclock",
            msg: "bad".into(),
            suggestion: Some("use the VirtualClock".into()),
        };
        let s = d.to_string();
        assert!(s.starts_with("crates/x/src/lib.rs:3:14: [wallclock] bad"));
        assert!(s.contains("help: use the VirtualClock"));
    }

    #[test]
    fn json_parser_handles_the_usual_shapes() {
        let v = json::parse(r#"{"a": [1, 2.5, -3], "b": "q\"uo\nte", "c": null, "d": true}"#)
            .expect("valid json parses");
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(<[_]>::len), Some(3));
        assert_eq!(v.get("b").and_then(json::Value::as_str), Some("q\"uo\nte"));
        assert_eq!(v.get("c"), Some(&json::Value::Null));
        assert_eq!(v.get("d").and_then(json::Value::as_bool), Some(true));
    }

    #[test]
    fn json_escaping_round_trips() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\te\u{1}f");
        let v = json::parse(&s).expect("escaped string parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}f"));
    }
}
