//! A minimal Rust lexer: just enough to tell code from trivia.
//!
//! The linter's passes match identifier and punctuation *tokens*, never raw
//! text, so banned names appearing inside string literals, comments, or doc
//! examples are not flagged. The lexer handles line and (nested) block
//! comments, plain/byte/raw strings, character literals vs. lifetimes, and
//! numeric literals with radix prefixes, underscores, and type suffixes.
//!
//! Every token carries a full `line:col` span (both 1-based), computed from
//! byte offsets through a [`LineMap`], so diagnostics can point editors at
//! the exact column of the offending token.

/// Kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `Instant`, ...).
    Ident(String),
    /// Integer literal; the value when it fits in u128 and parses cleanly.
    Int(Option<u128>),
    /// Float literal.
    Float,
    /// String or byte-string literal (plain or raw).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Any other single character of punctuation.
    Punct(char),
}

/// A token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based column (byte-based) the token starts at.
    pub col: u32,
    /// Token kind.
    pub kind: TokKind,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, TokKind::Punct(p) if *p == c)
    }
}

/// Byte-offset → `(line, col)` translation table.
pub struct LineMap {
    /// Byte offset of the start of each line; `starts[0] == 0`.
    starts: Vec<usize>,
}

impl LineMap {
    pub fn new(src: &str) -> Self {
        let mut starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineMap { starts }
    }

    /// 1-based `(line, col)` of a byte offset.
    pub fn pos(&self, byte: usize) -> (u32, u32) {
        let line = match self.starts.binary_search(&byte) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        ((line + 1) as u32, (byte - self.starts[line] + 1) as u32)
    }
}

/// Output of [`lex`]: the token stream plus comment text for passes that
/// inspect comments (the SAFETY rule).
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments as `(line, text)`. Line comments carry their own line;
    /// every line of a block comment is recorded separately so proximity
    /// checks see each line of a multi-line comment.
    pub comments: Vec<(u32, String)>,
}

/// Lex `src` into tokens and comments. Never fails: unterminated constructs
/// consume to end of input.
pub fn lex(src: &str) -> Lexed {
    let map = LineMap::new(src);
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;

    let push = |start: usize, kind: TokKind, out: &mut Lexed| {
        let (line, col) = map.pos(start);
        out.toks.push(Tok { line, col, kind });
    };

    while i < b.len() {
        let c = b[i];
        let start = i;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let (line, _) = map.pos(start);
                out.comments
                    .push((line, String::from_utf8_lossy(&b[start..i]).into_owned()));
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                let (line, _) = map.pos(start);
                for (k, l) in text.lines().enumerate() {
                    out.comments.push((line + k as u32, l.to_string()));
                }
            }
            b'"' => {
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i = (i + 2).min(b.len()),
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                push(start, TokKind::Str, &mut out);
            }
            b'\'' => {
                // Distinguish 'a' (char) from 'a (lifetime).
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    // Escaped char literal: skip the backslash and the
                    // escaped character unconditionally (so `'\\'` and
                    // `'\''` terminate correctly), then scan to the
                    // closing quote (covers `'\u{..}'`).
                    i += 2;
                    if i < b.len() {
                        i += 1;
                    }
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    push(start, TokKind::Char, &mut out);
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    i += 3;
                    push(start, TokKind::Char, &mut out);
                } else {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    push(start, TokKind::Lifetime, &mut out);
                }
            }
            c if c.is_ascii_digit() => {
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        // Exponent sign: 1e-4 / 2E+9.
                        if (d == b'e' || d == b'E')
                            && i + 1 < b.len()
                            && (b[i + 1] == b'+' || b[i + 1] == b'-')
                            && i + 2 < b.len()
                            && b[i + 2].is_ascii_digit()
                        {
                            i += 2;
                        }
                        i += 1;
                    } else if d == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text: String = std::str::from_utf8(&b[start..i])
                    .unwrap_or("")
                    .chars()
                    .filter(|&ch| ch != '_')
                    .collect();
                push(start, classify_number(&text), &mut out);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let ident = std::str::from_utf8(&b[start..i]).unwrap_or("").to_string();
                // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#.
                if matches!(ident.as_str(), "r" | "b" | "br" | "rb")
                    && i < b.len()
                    && (b[i] == b'"' || b[i] == b'#')
                {
                    let mut hashes = 0usize;
                    let mut j = i;
                    while j < b.len() && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'"' {
                        // Raw string: scan for `"` followed by `hashes` #s.
                        j += 1;
                        let is_raw = ident.contains('r');
                        loop {
                            if j >= b.len() {
                                break;
                            }
                            if !is_raw && b[j] == b'\\' {
                                j = (j + 2).min(b.len());
                                continue;
                            }
                            if b[j] == b'"' {
                                let close = &b[j + 1..(j + 1 + hashes).min(b.len())];
                                if close.len() == hashes && close.iter().all(|&h| h == b'#') {
                                    j += 1 + hashes;
                                    break;
                                }
                            }
                            j += 1;
                        }
                        i = j;
                        push(start, TokKind::Str, &mut out);
                        continue;
                    }
                    // `b'x'` byte literal: fall through to normal handling —
                    // the `'` branch above will classify it next iteration.
                }
                push(start, TokKind::Ident(ident), &mut out);
            }
            other => {
                push(start, TokKind::Punct(other as char), &mut out);
                i += 1;
            }
        }
    }
    out
}

/// Classify a (underscore-stripped) numeric literal and parse its value.
fn classify_number(text: &str) -> TokKind {
    let (radix, digits) = if let Some(rest) = text.strip_prefix("0x").or(text.strip_prefix("0X")) {
        (16, rest)
    } else if let Some(rest) = text.strip_prefix("0o") {
        (8, rest)
    } else if let Some(rest) = text.strip_prefix("0b").or(text.strip_prefix("0B")) {
        (2, rest)
    } else {
        (10, text)
    };
    if radix == 10 && (digits.contains('.') || digits.contains('e') || digits.contains('E')) {
        return TokKind::Float;
    }
    // Strip a trailing type suffix (u8..=usize / i8..=isize / f32 / f64).
    let body = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    let (val, suffix) = digits.split_at(body);
    if suffix.starts_with('f') {
        return TokKind::Float;
    }
    TokKind::Int(u128::from_str_radix(val, radix).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_tokens() {
        let src = r##"
            // Instant in a comment
            /* SystemTime in /* a nested */ block */
            let s = "Instant::now()";
            let r = r#"SystemTime"#;
            let c = 'I';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert_eq!(ids, vec!["let", "s", "let", "r", "let", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let l = lex(src);
        let lifetimes = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn numbers_parse_with_radix_and_suffix() {
        let l = lex("let x = 0xFF_u64 + 1_000 + 1e-4 + 2.5f32 + 0b101;");
        let ints: Vec<Option<u128>> = l
            .toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Int(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(ints, vec![Some(255), Some(1000), Some(5)]);
        let floats = l.toks.iter().filter(|t| t.kind == TokKind::Float).count();
        assert_eq!(floats, 2);
    }

    #[test]
    fn comment_lines_recorded() {
        let src = "// SAFETY: fine\nlet x = 1;\n/* multi\nline */\n";
        let l = lex(src);
        assert!(l
            .comments
            .iter()
            .any(|(ln, t)| *ln == 1 && t.contains("SAFETY")));
        assert!(l
            .comments
            .iter()
            .any(|(ln, t)| *ln == 3 && t.contains("multi")));
        assert!(l
            .comments
            .iter()
            .any(|(ln, t)| *ln == 4 && t.contains("line")));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\nline\nline\";\nlet b = 1;";
        let l = lex(src);
        let b_tok = l
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("b".into()))
            .expect("b token");
        assert_eq!((b_tok.line, b_tok.col), (4, 5));
    }

    #[test]
    fn columns_are_byte_exact() {
        let src = "fn f() { let abc = 42; }";
        let l = lex(src);
        let abc = l
            .toks
            .iter()
            .find(|t| t.ident() == Some("abc"))
            .expect("abc token");
        assert_eq!((abc.line, abc.col), (1, 14));
        let forty_two = l
            .toks
            .iter()
            .find(|t| matches!(t.kind, TokKind::Int(Some(42))))
            .expect("42 token");
        assert_eq!((forty_two.line, forty_two.col), (1, 20));
    }

    #[test]
    fn raw_string_swallows_lines_but_following_span_is_right() {
        let src = "let r = r#\"a\nb\"#;\nlet z = 1;";
        let l = lex(src);
        let z = l
            .toks
            .iter()
            .find(|t| t.ident() == Some("z"))
            .expect("z token");
        assert_eq!((z.line, z.col), (3, 5));
    }
}
