//! A minimal Rust lexer: just enough to tell code from trivia.
//!
//! The linter's rules match identifier and punctuation *tokens*, never raw
//! text, so banned names appearing inside string literals, comments, or doc
//! examples are not flagged. The lexer handles line and (nested) block
//! comments, plain/byte/raw strings, character literals vs. lifetimes, and
//! numeric literals with radix prefixes, underscores, and type suffixes.

/// Kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `Instant`, ...).
    Ident(String),
    /// Integer literal; the value when it fits in u128 and parses cleanly.
    Int(Option<u128>),
    /// Float literal.
    Float,
    /// String or byte-string literal (plain or raw).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Any other single character of punctuation.
    Punct(char),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token kind.
    pub kind: TokKind,
}

/// Output of [`lex`]: the token stream plus comment text for rules that
/// inspect comments (the SAFETY rule).
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments as `(line, text)`. Line comments carry their own line;
    /// every line of a block comment is recorded separately so proximity
    /// checks see each line of a multi-line comment.
    pub comments: Vec<(u32, String)>,
}

/// Lex `src` into tokens and comments. Never fails: unterminated constructs
/// consume to end of input.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let count_lines = |s: &[u8]| s.iter().filter(|&&c| c == b'\n').count() as u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments
                    .push((line, String::from_utf8_lossy(&b[start..i]).into_owned()));
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                for (k, l) in text.lines().enumerate() {
                    out.comments.push((line + k as u32, l.to_string()));
                }
                line += count_lines(&b[start..i]);
            }
            b'"' => {
                let tline = line;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i = (i + 2).min(b.len()),
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                out.toks.push(Tok {
                    line: tline,
                    kind: TokKind::Str,
                });
            }
            b'\'' => {
                // Distinguish 'a' (char) from 'a (lifetime).
                let tline = line;
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    // Escaped char literal: consume to the closing quote.
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += if b[i] == b'\\' { 2 } else { 1 };
                    }
                    i = (i + 1).min(b.len());
                    out.toks.push(Tok {
                        line: tline,
                        kind: TokKind::Char,
                    });
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    i += 3;
                    out.toks.push(Tok {
                        line: tline,
                        kind: TokKind::Char,
                    });
                } else {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        line: tline,
                        kind: TokKind::Lifetime,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let tline = line;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        // Exponent sign: 1e-4 / 2E+9.
                        if (d == b'e' || d == b'E')
                            && i + 1 < b.len()
                            && (b[i + 1] == b'+' || b[i + 1] == b'-')
                            && i + 2 < b.len()
                            && b[i + 2].is_ascii_digit()
                        {
                            i += 2;
                        }
                        i += 1;
                    } else if d == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text: String = std::str::from_utf8(&b[start..i])
                    .unwrap_or("")
                    .chars()
                    .filter(|&ch| ch != '_')
                    .collect();
                out.toks.push(Tok {
                    line: tline,
                    kind: classify_number(&text),
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let tline = line;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let ident = std::str::from_utf8(&b[start..i]).unwrap_or("").to_string();
                // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#.
                if matches!(ident.as_str(), "r" | "b" | "br" | "rb")
                    && i < b.len()
                    && (b[i] == b'"' || b[i] == b'#')
                {
                    let mut hashes = 0usize;
                    let mut j = i;
                    while j < b.len() && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'"' {
                        // Raw string: scan for `"` followed by `hashes` #s.
                        j += 1;
                        let is_raw = ident.contains('r');
                        loop {
                            if j >= b.len() {
                                break;
                            }
                            if b[j] == b'\n' {
                                line += 1;
                                j += 1;
                                continue;
                            }
                            if !is_raw && b[j] == b'\\' {
                                j = (j + 2).min(b.len());
                                continue;
                            }
                            if b[j] == b'"' {
                                let close = &b[j + 1..(j + 1 + hashes).min(b.len())];
                                if close.len() == hashes && close.iter().all(|&h| h == b'#') {
                                    j += 1 + hashes;
                                    break;
                                }
                            }
                            j += 1;
                        }
                        i = j;
                        out.toks.push(Tok {
                            line: tline,
                            kind: TokKind::Str,
                        });
                        continue;
                    }
                    // `b'x'` byte literal: fall through to normal handling —
                    // the `'` branch above will classify it next iteration.
                }
                out.toks.push(Tok {
                    line: tline,
                    kind: TokKind::Ident(ident),
                });
            }
            other => {
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Punct(other as char),
                });
                i += 1;
            }
        }
    }
    out
}

/// Classify a (underscore-stripped) numeric literal and parse its value.
fn classify_number(text: &str) -> TokKind {
    let (radix, digits) = if let Some(rest) = text.strip_prefix("0x").or(text.strip_prefix("0X")) {
        (16, rest)
    } else if let Some(rest) = text.strip_prefix("0o") {
        (8, rest)
    } else if let Some(rest) = text.strip_prefix("0b").or(text.strip_prefix("0B")) {
        (2, rest)
    } else {
        (10, text)
    };
    if radix == 10 && (digits.contains('.') || digits.contains('e') || digits.contains('E')) {
        return TokKind::Float;
    }
    // Strip a trailing type suffix (u8..=usize / i8..=isize / f32 / f64).
    let body = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    let (val, suffix) = digits.split_at(body);
    if suffix.starts_with('f') {
        return TokKind::Float;
    }
    TokKind::Int(u128::from_str_radix(val, radix).ok())
}

/// Strip tokens belonging to `#[cfg(test)]` items (test modules and
/// functions): returns the token stream with those spans removed. The
/// scan recognizes the attribute token sequence and then skips either to
/// the end of a `{...}` body or to a terminating `;`.
pub fn strip_cfg_test(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_at(toks, i) {
            // Skip the attribute itself (to its closing `]`).
            i += 7;
            // Skip any further attributes.
            while matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct('#'))) {
                let mut depth = 0usize;
                i += 1;
                while let Some(t) = toks.get(i) {
                    match t.kind {
                        TokKind::Punct('[') => depth += 1,
                        TokKind::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            // Skip the item: up to a top-level `;` or a balanced `{...}`.
            let mut brace = 0usize;
            while let Some(t) = toks.get(i) {
                match t.kind {
                    TokKind::Punct('{') => brace += 1,
                    TokKind::Punct('}') => {
                        brace = brace.saturating_sub(1);
                        if brace == 0 {
                            i += 1;
                            break;
                        }
                    }
                    TokKind::Punct(';') if brace == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    out
}

fn is_cfg_test_at(toks: &[Tok], i: usize) -> bool {
    let kinds: Vec<&TokKind> = toks[i..].iter().take(7).map(|t| &t.kind).collect();
    matches!(
        kinds.as_slice(),
        [
            TokKind::Punct('#'),
            TokKind::Punct('['),
            TokKind::Ident(cfg),
            TokKind::Punct('('),
            TokKind::Ident(test),
            TokKind::Punct(')'),
            TokKind::Punct(']'),
        ] if cfg == "cfg" && test == "test"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_tokens() {
        let src = r##"
            // Instant in a comment
            /* SystemTime in /* a nested */ block */
            let s = "Instant::now()";
            let r = r#"SystemTime"#;
            let c = 'I';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert_eq!(ids, vec!["let", "s", "let", "r", "let", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let l = lex(src);
        let lifetimes = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn numbers_parse_with_radix_and_suffix() {
        let l = lex("let x = 0xFF_u64 + 1_000 + 1e-4 + 2.5f32 + 0b101;");
        let ints: Vec<Option<u128>> = l
            .toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Int(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(ints, vec![Some(255), Some(1000), Some(5)]);
        let floats = l.toks.iter().filter(|t| t.kind == TokKind::Float).count();
        assert_eq!(floats, 2);
    }

    #[test]
    fn comment_lines_recorded() {
        let src = "// SAFETY: fine\nlet x = 1;\n/* multi\nline */\n";
        let l = lex(src);
        assert!(l
            .comments
            .iter()
            .any(|(ln, t)| *ln == 1 && t.contains("SAFETY")));
        assert!(l
            .comments
            .iter()
            .any(|(ln, t)| *ln == 3 && t.contains("multi")));
        assert!(l
            .comments
            .iter()
            .any(|(ln, t)| *ln == 4 && t.contains("line")));
    }

    #[test]
    fn cfg_test_mod_is_stripped() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap() } }\nfn tail() {}";
        let l = lex(src);
        let kept = strip_cfg_test(&l.toks);
        let ids: Vec<String> = kept
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&"lib".to_string()));
        assert!(ids.contains(&"tail".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn cfg_test_fn_with_extra_attrs_is_stripped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { bad() }\nfn keep() {}";
        let l = lex(src);
        let kept = strip_cfg_test(&l.toks);
        let ids: Vec<String> = kept
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec!["fn", "keep"]);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\nline\nline\";\nlet b = 1;";
        let l = lex(src);
        let b_tok = l
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("b".into()))
            .expect("b token");
        assert_eq!(b_tok.line, 4);
    }
}
