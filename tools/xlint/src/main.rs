//! CLI entry point: `cargo run -p xlint [--] [--format text|json] [--out FILE] [ROOT]`.
//!
//! Exit codes: 0 clean, 1 diagnostics/stale allowlist entries, 2 usage or
//! I/O error. Text output is one `path:line:col: [rule] message` per
//! diagnostic (plus a `help:` line when there is a mechanical fix), so
//! editors and CI logs can jump straight to the site. `--format json`
//! emits the versioned report schema; `--out FILE` writes the report to a
//! file *in addition to* the exit code, so CI can archive the artifact
//! even when the run fails.

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut out_file: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: xlint [--format text|json] [--out FILE] [ROOT]\n\n\
                     Lints every .rs file under ROOT (default: .) against the workspace rule\n\
                     catalog; exemptions come from ROOT/xlint.allow. See tools/xlint/src/rules/.\n\n\
                     --format json   emit the versioned machine-readable report on stdout\n\
                     --out FILE      also write the report (in the chosen format) to FILE,\n\
                                     even when the run fails — for CI artifacts"
                );
                return ExitCode::SUCCESS;
            }
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    let got = other.unwrap_or("nothing");
                    eprintln!("xlint: --format expects `text` or `json`, got `{got}`");
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(f) => out_file = Some(PathBuf::from(f)),
                None => {
                    eprintln!("xlint: --out expects a file path");
                    return ExitCode::from(2);
                }
            },
            other => root = PathBuf::from(other),
        }
    }

    let report = match xlint::scan_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xlint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let rendered = match format {
        Format::Json => report.to_json(),
        Format::Text => render_text(&report),
    };
    print!("{rendered}");
    if let Some(path) = &out_file {
        // The artifact is written in the chosen format regardless of
        // pass/fail, so CI uploads capture failing runs too.
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("xlint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for err in &report.config_errors {
        eprintln!("{err}");
    }
    for entry in &report.stale {
        eprintln!(
            "xlint.allow:{}: stale entry `{} {}` suppresses nothing — remove it",
            entry.line, entry.rule, entry.path_prefix
        );
    }

    if report.is_clean() {
        if matches!(format, Format::Text) {
            println!(
                "xlint: {} files clean ({} allowlisted suppressions)",
                report.files_scanned, report.suppressed
            );
        }
        ExitCode::SUCCESS
    } else if report.config_errors.is_empty() {
        eprintln!(
            "xlint: {} diagnostic(s), {} stale allowlist entr(ies) across {} files",
            report.diagnostics.len(),
            report.stale.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    } else {
        ExitCode::from(2)
    }
}

fn render_text(report: &xlint::Report) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(s, "{d}");
    }
    s
}
