//! CLI entry point: `cargo run -p xlint [--] [ROOT]`.
//!
//! Exit codes: 0 clean, 1 violations/stale allowlist entries, 2 usage or I/O
//! error. Output is one `path:line: [rule] message` per violation, so editors
//! and CI logs can jump straight to the site.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("usage: xlint [ROOT]\n\nLints every .rs file under ROOT (default: .) against the workspace rule\ncatalog; exemptions come from ROOT/xlint.allow. See tools/xlint/src/rules.rs.");
                return ExitCode::SUCCESS;
            }
            other => root = PathBuf::from(other),
        }
    }

    let report = match xlint::scan_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xlint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for err in &report.config_errors {
        eprintln!("{err}");
    }
    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.msg);
    }
    for entry in &report.stale {
        eprintln!(
            "xlint.allow:{}: stale entry `{} {}` suppresses nothing — remove it",
            entry.line, entry.rule, entry.path_prefix
        );
    }

    if report.is_clean() {
        println!(
            "xlint: {} files clean ({} allowlisted suppressions)",
            report.files_scanned, report.suppressed
        );
        ExitCode::SUCCESS
    } else if report.config_errors.is_empty() {
        eprintln!(
            "xlint: {} violation(s), {} stale allowlist entr(ies) across {} files",
            report.violations.len(),
            report.stale.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    } else {
        ExitCode::from(2)
    }
}
