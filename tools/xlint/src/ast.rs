//! A lightweight Rust AST, parsed from the token stream.
//!
//! This is not a full Rust grammar — it is the structural skeleton the
//! semantic passes need, recovered by a recursive-descent walk over the
//! lexer's tokens:
//!
//! * **items** — `use` declarations (with every binding's canonical path,
//!   so `use std::time::Instant as T` is alias-proof), `fn` bodies,
//!   `const`/`static` initializers, `mod`/`impl`/`trait` containers, and a
//!   verbatim bucket for everything else (struct fields still get scanned);
//! * **control structure** — `if`/`while` conditions, `for`/`loop` heads,
//!   `match` scrutinees and arms, and nested blocks, each holding its body
//!   as a sub-tree so passes can reason about *lexical containment* (the
//!   rank-divergence rule is "collective call inside a rank-dependent
//!   branch", which token streams cannot express);
//! * **leaves** — flat expression token runs between structural nodes.
//!
//! Structure is only recognized at paren/bracket depth 0: inside an
//! argument list, `{}` blocks and `if` expressions stay part of the flat
//! leaf run, which keeps call-argument extraction (tag positions, index
//! expressions) intact.
//!
//! `#[cfg(test)]` subtrees are parsed but flagged, so rules that exempt
//! test code skip them while the SAFETY pass still sees every token.

use crate::lexer::{Tok, TokKind};
use std::collections::HashMap;

/// One binding introduced by a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseBinding {
    /// Canonical path segments, e.g. `["std", "time", "Instant"]`.
    pub path: Vec<String>,
    /// The name the binding is visible under (the alias after `as`, or the
    /// last path segment).
    pub name: String,
    pub line: u32,
    pub col: u32,
}

impl UseBinding {
    /// Canonical `::`-joined path, e.g. `std::time::Instant`.
    pub fn canonical(&self) -> String {
        self.path.join("::")
    }
}

/// A parsed item.
#[derive(Debug)]
pub struct Item {
    /// True when any attribute on the item is `#[cfg(test)]`.
    pub cfg_test: bool,
    pub kind: ItemKind,
}

#[derive(Debug)]
pub enum ItemKind {
    Use(Vec<UseBinding>),
    Fn {
        name: String,
        /// Signature tokens (between `fn` and the body/`;`), so type
        /// positions (`t: Instant`) are scanned like expression leaves.
        sig: Vec<Tok>,
        /// `None` for bodyless trait-method declarations.
        body: Option<Block>,
        line: u32,
        col: u32,
    },
    /// `const` or `static` with its initializer tokens.
    Const {
        name: String,
        value: Vec<Tok>,
        line: u32,
        col: u32,
    },
    /// Inline `mod name { ... }`.
    Mod {
        items: Vec<Item>,
    },
    /// `impl`/`trait`/`extern` block: header tokens plus inner items.
    Container {
        header: Vec<Tok>,
        items: Vec<Item>,
    },
    /// Anything else (struct/enum/type/macro invocations...), kept as a
    /// flat token run so identifier-level rules still see it.
    Verbatim(Vec<Tok>),
}

/// A `{ ... }` body: a sequence of structural nodes.
#[derive(Debug, Default)]
pub struct Block {
    pub nodes: Vec<Node>,
}

#[derive(Debug)]
pub enum Node {
    /// Flat run of expression tokens with no recognized structure.
    Leaf(Vec<Tok>),
    /// `if`/`while` (incl. `if let`/`while let`): condition tokens, body,
    /// and the else-chain (an `else if` nests as a Branch inside `els`).
    Branch {
        cond: Vec<Tok>,
        body: Block,
        els: Option<Block>,
    },
    /// `for pat in head { .. }` (head = `pat in expr`) or `loop { .. }`
    /// (empty head). A rank-dependent head means rank-dependent trip
    /// counts, which the divergence rule treats like a branch.
    Loop { head: Vec<Tok>, body: Block },
    /// `match scrutinee { arms }`.
    Match { scrut: Vec<Tok>, arms: Vec<Arm> },
    /// A plain `{ .. }` / `unsafe { .. }` block (or a struct literal,
    /// which is indistinguishable without type information and harmless
    /// to over-group).
    Block(Block),
    /// A nested item (local `use`, nested `fn`, local `const`).
    Item(Box<Item>),
}

/// One match arm: pattern tokens (including any `if` guard) and the body.
#[derive(Debug)]
pub struct Arm {
    pub pat: Vec<Tok>,
    pub body: Block,
}

/// A parsed file.
#[derive(Debug, Default)]
pub struct Ast {
    pub items: Vec<Item>,
}

impl Ast {
    /// Every `use` binding in non-`cfg(test)` code, as name → binding.
    /// Later bindings of the same name win, matching shadowing order.
    pub fn aliases(&self) -> HashMap<String, UseBinding> {
        let mut map = HashMap::new();
        collect_aliases(&self.items, &mut map);
        map
    }
}

fn collect_aliases(items: &[Item], map: &mut HashMap<String, UseBinding>) {
    for item in items {
        if item.cfg_test {
            continue;
        }
        match &item.kind {
            ItemKind::Use(bindings) => {
                for b in bindings {
                    map.insert(b.name.clone(), b.clone());
                }
            }
            ItemKind::Mod { items } | ItemKind::Container { items, .. } => {
                collect_aliases(items, map);
            }
            ItemKind::Fn {
                body: Some(block), ..
            } => collect_aliases_in_block(block, map),
            _ => {}
        }
    }
}

fn collect_aliases_in_block(block: &Block, map: &mut HashMap<String, UseBinding>) {
    for node in &block.nodes {
        match node {
            Node::Item(item) => {
                if let ItemKind::Use(bindings) = &item.kind {
                    for b in bindings {
                        map.insert(b.name.clone(), b.clone());
                    }
                }
            }
            Node::Branch { body, els, .. } => {
                collect_aliases_in_block(body, map);
                if let Some(e) = els {
                    collect_aliases_in_block(e, map);
                }
            }
            Node::Loop { body, .. } => collect_aliases_in_block(body, map),
            Node::Match { arms, .. } => {
                for a in arms {
                    collect_aliases_in_block(&a.body, map);
                }
            }
            Node::Block(b) => collect_aliases_in_block(b, map),
            Node::Leaf(_) => {}
        }
    }
}

/// Parse a whole file's token stream.
pub fn parse(toks: &[Tok]) -> Ast {
    let mut p = Parser { toks, i: 0 };
    Ast {
        items: p.items(None),
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
}

/// Keywords that start items we model explicitly.
const ITEM_KEYWORDS: [&str; 6] = ["use", "fn", "const", "static", "mod", "unsafe"];

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.i)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Tok> {
        self.toks.get(self.i + off)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek().is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().and_then(Tok::ident) == Some(s)
    }

    // ---- items ------------------------------------------------------------

    /// Parse items until `end_brace` (Some: stop at the matching `}` and
    /// consume it) or end of input (None).
    fn items(&mut self, end_brace: Option<()>) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if end_brace.is_some() && self.at_punct('}') {
                self.bump();
                break;
            }
            if self.peek().is_none() {
                break;
            }
            items.push(self.item());
        }
        items
    }

    fn item(&mut self) -> Item {
        let cfg_test = self.attrs();
        // Visibility: `pub` / `pub(crate)` / `pub(in path)`.
        if self.at_ident("pub") {
            self.bump();
            if self.at_punct('(') {
                self.skip_balanced('(', ')');
            }
        }
        // Leading qualifiers before `fn`: unsafe/async/extern "C"/const.
        let mut probe = 0usize;
        while let Some(t) = self.peek_at(probe) {
            match t.ident() {
                Some("unsafe" | "async" | "extern") => {
                    probe += 1;
                    // `extern "C"`.
                    if self.peek_at(probe).is_some_and(|t| t.kind == TokKind::Str) {
                        probe += 1;
                    }
                }
                Some("const") if self.peek_at(probe + 1).and_then(Tok::ident) == Some("fn") => {
                    probe += 1;
                }
                _ => break,
            }
        }
        let kw = self.peek_at(probe).and_then(Tok::ident).unwrap_or("");

        let kind = match kw {
            "use" => {
                self.i += probe;
                self.use_item()
            }
            "fn" => {
                self.i += probe;
                self.fn_item()
            }
            "const" | "static" => {
                self.i += probe;
                self.const_item()
            }
            "mod" => {
                self.i += probe;
                self.mod_item()
            }
            "impl" | "trait" => {
                self.i += probe;
                self.container_item()
            }
            "extern" if probe == 0 => {
                // `extern crate foo;` or `extern "C" { ... }`.
                self.verbatim_item()
            }
            _ => self.verbatim_item(),
        };
        Item { cfg_test, kind }
    }

    /// Consume leading attributes; report whether any is `#[cfg(test)]`.
    fn attrs(&mut self) -> bool {
        let mut cfg_test = false;
        while self.at_punct('#') {
            let start = self.i;
            self.bump();
            if self.at_punct('!') {
                self.bump();
            }
            if self.at_punct('[') {
                self.skip_balanced('[', ']');
            }
            let attr = &self.toks[start..self.i];
            if attr
                .windows(2)
                .any(|w| w[0].ident() == Some("cfg") && w[1].is_punct('('))
                && attr.iter().any(|t| t.ident() == Some("test"))
            {
                cfg_test = true;
            }
        }
        cfg_test
    }

    /// Skip a balanced `open..close` group (cursor on `open`).
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }

    /// `use` tree → flattened bindings. Cursor on `use`.
    fn use_item(&mut self) -> ItemKind {
        self.bump(); // `use`
        let mut bindings = Vec::new();
        self.use_tree(&mut Vec::new(), &mut bindings);
        if self.at_punct(';') {
            self.bump();
        }
        ItemKind::Use(bindings)
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>, out: &mut Vec<UseBinding>) {
        let depth_at_entry = prefix.len();
        loop {
            match self.peek() {
                Some(t) if t.is_punct('{') => {
                    self.bump();
                    loop {
                        if self.at_punct('}') {
                            self.bump();
                            break;
                        }
                        if self.peek().is_none() {
                            break;
                        }
                        self.use_tree(prefix, out);
                        if self.at_punct(',') {
                            self.bump();
                        }
                    }
                    break;
                }
                Some(t) if t.is_punct('*') => {
                    self.bump(); // glob: introduces no named binding
                    break;
                }
                Some(t) => {
                    let Some(seg) = t.ident() else { break };
                    let (line, col) = (t.line, t.col);
                    let seg = seg.to_string();
                    self.bump();
                    // `::` continues the path; `as` renames; else terminal.
                    if self.at_punct(':') && self.peek_at(1).is_some_and(|t| t.is_punct(':')) {
                        prefix.push(seg);
                        self.bump();
                        self.bump();
                        continue;
                    }
                    let mut path: Vec<String> = prefix.clone();
                    path.push(seg.clone());
                    let name = if self.at_ident("as") {
                        self.bump();
                        let alias = self.peek().and_then(Tok::ident).unwrap_or(&seg).to_string();
                        self.bump();
                        alias
                    } else {
                        seg
                    };
                    out.push(UseBinding {
                        path,
                        name,
                        line,
                        col,
                    });
                    break;
                }
                None => break,
            }
        }
        prefix.truncate(depth_at_entry);
    }

    /// `fn name(sig) -> ret { body }`. Cursor on `fn`.
    fn fn_item(&mut self) -> ItemKind {
        let fn_tok = self.bump().expect("cursor on `fn`");
        let (line, col) = (fn_tok.line, fn_tok.col);
        let name = self
            .peek()
            .and_then(Tok::ident)
            .unwrap_or("<anon>")
            .to_string();
        self.bump();
        // Signature: everything to the body `{` or a terminating `;`, at
        // bracket depth 0 (parens/brackets/angles in the signature nest).
        let sig_start = self.i;
        let mut depth = 0i32;
        let mut body = None;
        while let Some(t) = self.peek() {
            match &t.kind {
                TokKind::Punct('(' | '[') => depth += 1,
                TokKind::Punct(')' | ']') => depth -= 1,
                TokKind::Punct('{') if depth == 0 => break,
                TokKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            self.bump();
        }
        let sig = self.toks[sig_start..self.i].to_vec();
        if self.at_punct('{') {
            body = Some(self.block());
        } else if self.at_punct(';') {
            self.bump();
        }
        ItemKind::Fn {
            name,
            sig,
            body,
            line,
            col,
        }
    }

    /// `const NAME: Ty = value;` / `static NAME: Ty = value;`.
    fn const_item(&mut self) -> ItemKind {
        self.bump(); // const/static
        if self.at_ident("mut") {
            self.bump();
        }
        let (name, line, col) = match self.peek() {
            Some(t) => (t.ident().unwrap_or("<anon>").to_string(), t.line, t.col),
            None => ("<anon>".to_string(), 0, 0),
        };
        self.bump();
        // Skip to `=` at depth 0 (the type may contain brackets/fn ptrs).
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match &t.kind {
                TokKind::Punct('(' | '[' | '{') => depth += 1,
                TokKind::Punct(')' | ']' | '}') => depth -= 1,
                TokKind::Punct('=') if depth == 0 => break,
                TokKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            self.bump();
        }
        let mut value = Vec::new();
        if self.at_punct('=') {
            self.bump();
            let start = self.i;
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                match &t.kind {
                    TokKind::Punct('(' | '[' | '{') => depth += 1,
                    TokKind::Punct(')' | ']' | '}') => depth -= 1,
                    TokKind::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                self.bump();
            }
            value = self.toks[start..self.i].to_vec();
        }
        if self.at_punct(';') {
            self.bump();
        }
        ItemKind::Const {
            name,
            value,
            line,
            col,
        }
    }

    /// `mod name { items }` or `mod name;`.
    fn mod_item(&mut self) -> ItemKind {
        self.bump(); // mod
        self.bump(); // name
        if self.at_punct('{') {
            self.bump();
            ItemKind::Mod {
                items: self.items(Some(())),
            }
        } else {
            if self.at_punct(';') {
                self.bump();
            }
            ItemKind::Mod { items: Vec::new() }
        }
    }

    /// `impl ... { items }` / `trait ... { items }`.
    fn container_item(&mut self) -> ItemKind {
        let start = self.i;
        self.bump(); // impl/trait
                     // Header runs to the `{` at angle-free depth 0; generic parameters
                     // never contain braces in this workspace's code.
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match &t.kind {
                TokKind::Punct('(' | '[') => depth += 1,
                TokKind::Punct(')' | ']') => depth -= 1,
                TokKind::Punct('{') if depth == 0 => break,
                TokKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            self.bump();
        }
        let header = self.toks[start..self.i].to_vec();
        if self.at_punct('{') {
            self.bump();
            ItemKind::Container {
                header,
                items: self.items(Some(())),
            }
        } else {
            if self.at_punct(';') {
                self.bump();
            }
            ItemKind::Verbatim(header)
        }
    }

    /// Anything else: consume to a top-level `;` or through one balanced
    /// `{...}` group, keeping the tokens for identifier-level scans.
    fn verbatim_item(&mut self) -> ItemKind {
        let start = self.i;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match &t.kind {
                TokKind::Punct('(' | '[') => depth += 1,
                TokKind::Punct(')' | ']') => depth -= 1,
                TokKind::Punct('{') => {
                    self.skip_balanced('{', '}');
                    if depth == 0 {
                        // struct Foo { .. } ends here; `= [..] {..}` cannot
                        // occur at item level outside expressions.
                        break;
                    }
                    continue;
                }
                TokKind::Punct(';') if depth == 0 => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            self.bump();
        }
        ItemKind::Verbatim(self.toks[start..self.i].to_vec())
    }

    // ---- blocks -----------------------------------------------------------

    /// Parse a `{ ... }` body; cursor on the opening `{`.
    fn block(&mut self) -> Block {
        self.bump(); // `{`
        let mut block = Block::default();
        let mut leaf: Vec<Tok> = Vec::new();
        // Paren/bracket depth: structure is only recognized at depth 0 so
        // call arguments stay intact in one leaf.
        let mut depth = 0i32;

        macro_rules! flush {
            () => {
                if !leaf.is_empty() {
                    block.nodes.push(Node::Leaf(std::mem::take(&mut leaf)));
                }
            };
        }

        while let Some(t) = self.peek() {
            if depth > 0 {
                match &t.kind {
                    TokKind::Punct('(' | '[') => depth += 1,
                    TokKind::Punct(')' | ']') => depth -= 1,
                    // A `{...}` inside an argument list stays flat, but must
                    // be consumed balanced so its `}` is not mistaken for
                    // the end of this block.
                    TokKind::Punct('{') => {
                        let start = self.i;
                        self.skip_balanced('{', '}');
                        leaf.extend_from_slice(&self.toks[start..self.i]);
                        continue;
                    }
                    _ => {}
                }
                leaf.push(t.clone());
                self.bump();
                continue;
            }
            match &t.kind {
                TokKind::Punct('}') => {
                    self.bump();
                    break;
                }
                TokKind::Punct('(' | '[') => {
                    depth += 1;
                    leaf.push(t.clone());
                    self.bump();
                }
                TokKind::Punct('{') => {
                    flush!();
                    block.nodes.push(Node::Block(self.block()));
                }
                TokKind::Ident(kw) if kw == "if" || kw == "while" => {
                    flush!();
                    block.nodes.push(self.branch());
                }
                TokKind::Ident(kw) if kw == "for" || kw == "loop" => {
                    flush!();
                    self.bump();
                    let head = if kw == "for" {
                        self.head_until_brace()
                    } else {
                        Vec::new()
                    };
                    let body = if self.at_punct('{') {
                        self.block()
                    } else {
                        Block::default()
                    };
                    block.nodes.push(Node::Loop { head, body });
                }
                TokKind::Ident(kw) if kw == "match" => {
                    flush!();
                    self.bump();
                    let scrut = self.head_until_brace();
                    let arms = if self.at_punct('{') {
                        self.match_arms()
                    } else {
                        Vec::new()
                    };
                    block.nodes.push(Node::Match { scrut, arms });
                }
                TokKind::Ident(kw)
                    if kw == "unsafe" && self.peek_at(1).is_some_and(|t| t.is_punct('{')) =>
                {
                    flush!();
                    self.bump();
                    block.nodes.push(Node::Block(self.block()));
                }
                // Item keywords only open an item in statement position:
                // `*const u8` in a type and `fn(u8) -> u8` pointer types
                // must stay part of the surrounding leaf.
                TokKind::Ident(kw)
                    if (ITEM_KEYWORDS.contains(&kw.as_str()) || kw == "pub")
                        && leaf.last().is_none_or(|t| t.is_punct(';')) =>
                {
                    // Local item (`use`, nested `fn`, local `const`, ...).
                    // `unsafe` was handled above when followed by `{`; here
                    // it can only start `unsafe fn`.
                    flush!();
                    block.nodes.push(Node::Item(Box::new(self.item())));
                }
                _ => {
                    leaf.push(t.clone());
                    self.bump();
                }
            }
        }
        flush!();
        block
    }

    /// Parse an `if`/`while` (cursor on the keyword).
    fn branch(&mut self) -> Node {
        self.bump(); // if/while
        if self.at_ident("let") {
            self.bump();
        }
        let cond = self.head_until_brace();
        let body = if self.at_punct('{') {
            self.block()
        } else {
            Block::default()
        };
        let els = if self.at_ident("else") {
            self.bump();
            if self.at_ident("if") {
                let mut b = Block::default();
                b.nodes.push(self.branch());
                Some(b)
            } else if self.at_punct('{') {
                Some(self.block())
            } else {
                None
            }
        } else {
            None
        };
        Node::Branch { cond, body, els }
    }

    /// Tokens up to the `{` that opens the dependent block, at depth 0.
    /// (Rust forbids struct literals in condition/scrutinee position, so
    /// the first depth-0 `{` is the block.)
    fn head_until_brace(&mut self) -> Vec<Tok> {
        let start = self.i;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match &t.kind {
                TokKind::Punct('(' | '[') => depth += 1,
                TokKind::Punct(')' | ']') => depth -= 1,
                TokKind::Punct('{') if depth == 0 => break,
                // Inside parens a block expression may appear (closures,
                // `if` expressions as arguments): consume it balanced.
                TokKind::Punct('{') => {
                    self.skip_balanced('{', '}');
                    continue;
                }
                TokKind::Punct(';') if depth == 0 => break, // malformed; bail
                _ => {}
            }
            self.bump();
        }
        self.toks[start..self.i].to_vec()
    }

    /// Parse match arms; cursor on the `{` that opens the arm list.
    fn match_arms(&mut self) -> Vec<Arm> {
        self.bump(); // `{`
        let mut arms = Vec::new();
        loop {
            if self.at_punct('}') {
                self.bump();
                break;
            }
            if self.peek().is_none() {
                break;
            }
            // Pattern (+ optional guard): up to `=>` at depth 0.
            let pat_start = self.i;
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                match &t.kind {
                    TokKind::Punct('(' | '[' | '{') => depth += 1,
                    TokKind::Punct(')' | ']' | '}') => {
                        if depth == 0 {
                            break; // the match's closing `}` (trailing comma)
                        }
                        depth -= 1;
                    }
                    TokKind::Punct('=')
                        if depth == 0 && self.peek_at(1).is_some_and(|t| t.is_punct('>')) =>
                    {
                        break;
                    }
                    _ => {}
                }
                self.bump();
            }
            let pat = self.toks[pat_start..self.i].to_vec();
            if self.at_punct('=') {
                self.bump();
                self.bump(); // `>`
            }
            // Arm body: a block, or expression tokens to `,`/`}` at depth 0.
            let mut body = Block::default();
            if self.at_punct('{') {
                body = self.block();
            } else {
                let mut leaf = Vec::new();
                let mut depth = 0i32;
                while let Some(t) = self.peek() {
                    match &t.kind {
                        TokKind::Punct('(' | '[') => depth += 1,
                        TokKind::Punct(')' | ']') => depth -= 1,
                        TokKind::Punct('{') => {
                            let start = self.i;
                            self.skip_balanced('{', '}');
                            leaf.extend_from_slice(&self.toks[start..self.i]);
                            continue;
                        }
                        TokKind::Punct(',') if depth == 0 => {
                            self.bump();
                            break;
                        }
                        TokKind::Punct('}') if depth == 0 => break,
                        _ => {}
                    }
                    leaf.push(t.clone());
                    self.bump();
                }
                if !leaf.is_empty() {
                    body.nodes.push(Node::Leaf(leaf));
                }
            }
            arms.push(Arm { pat, body });
            if self.at_punct(',') {
                self.bump();
            }
        }
        arms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src).toks)
    }

    #[test]
    fn use_aliases_are_canonicalized() {
        let ast = parse_src(
            "use std::time::Instant as T;\nuse std::time::{Duration, SystemTime as S};\nuse foo::bar::*;",
        );
        let aliases = ast.aliases();
        assert_eq!(aliases["T"].canonical(), "std::time::Instant");
        assert_eq!(aliases["S"].canonical(), "std::time::SystemTime");
        assert_eq!(aliases["Duration"].canonical(), "std::time::Duration");
        assert!(!aliases.contains_key("bar"), "glob introduces no binding");
    }

    #[test]
    fn nested_use_groups_flatten() {
        let ast = parse_src("use a::{b::{c as X, d}, e};");
        let aliases = ast.aliases();
        assert_eq!(aliases["X"].canonical(), "a::b::c");
        assert_eq!(aliases["d"].canonical(), "a::b::d");
        assert_eq!(aliases["e"].canonical(), "a::e");
    }

    #[test]
    fn cfg_test_items_are_flagged_not_dropped() {
        let ast = parse_src("fn lib() {}\n#[cfg(test)]\nmod tests { fn t() {} }\nfn tail() {}");
        assert_eq!(ast.items.len(), 3);
        assert!(!ast.items[0].cfg_test);
        assert!(ast.items[1].cfg_test);
        assert!(!ast.items[2].cfg_test);
    }

    #[test]
    fn cfg_test_with_extra_attrs_still_flagged() {
        let ast = parse_src("#[cfg(test)]\n#[allow(dead_code)]\nfn helper() {}\nfn keep() {}");
        assert!(ast.items[0].cfg_test);
        assert!(!ast.items[1].cfg_test);
    }

    #[test]
    fn branch_condition_and_body_are_separated() {
        let ast = parse_src("fn f(r: usize) { if r == 0 { g(); } else { h(); } }");
        let ItemKind::Fn { body: Some(b), .. } = &ast.items[0].kind else {
            panic!("fn item");
        };
        let Node::Branch { cond, body, els } = &b.nodes[0] else {
            panic!("branch node, got {:?}", b.nodes[0]);
        };
        let cond_ids: Vec<_> = cond.iter().filter_map(Tok::ident).collect();
        assert_eq!(cond_ids, vec!["r"]);
        assert_eq!(body.nodes.len(), 1);
        assert!(els.is_some());
    }

    #[test]
    fn blocks_inside_call_args_stay_flat() {
        // The `{}` and `if` inside the argument list must not fragment the
        // call's tokens across nodes.
        let ast = parse_src("fn f() { g(if c { 1 } else { 2 }, h()); }");
        let ItemKind::Fn { body: Some(b), .. } = &ast.items[0].kind else {
            panic!("fn item");
        };
        assert_eq!(b.nodes.len(), 1, "{:?}", b.nodes);
        let Node::Leaf(toks) = &b.nodes[0] else {
            panic!("single leaf");
        };
        assert!(toks.iter().any(|t| t.ident() == Some("h")));
    }

    #[test]
    fn match_arms_split_patterns_and_bodies() {
        let ast =
            parse_src("fn f(r: usize) { match r { 0 => a(), n if n > 2 => { b() } _ => c(), } }");
        let ItemKind::Fn { body: Some(b), .. } = &ast.items[0].kind else {
            panic!("fn item");
        };
        let Node::Match { scrut, arms } = &b.nodes[0] else {
            panic!("match node, got {:?}", b.nodes[0]);
        };
        assert_eq!(scrut.iter().filter_map(Tok::ident).count(), 1);
        assert_eq!(arms.len(), 3);
        assert!(arms[1].pat.iter().any(|t| t.ident() == Some("if")));
    }

    #[test]
    fn impl_blocks_expose_methods() {
        let ast = parse_src("impl Foo { fn m(&self) { body(); } }\nstruct Bar;");
        let ItemKind::Container { items, .. } = &ast.items[0].kind else {
            panic!("container, got {:?}", ast.items[0].kind);
        };
        assert!(matches!(&items[0].kind, ItemKind::Fn { name, .. } if name == "m"));
    }

    #[test]
    fn const_values_are_captured() {
        let ast = parse_src("const TAG: u64 = 1 << 48;\nstatic N: usize = 4;");
        let ItemKind::Const { name, value, .. } = &ast.items[0].kind else {
            panic!("const");
        };
        assert_eq!(name, "TAG");
        // `1 << 48`: Int, Punct('<'), Punct('<'), Int.
        assert_eq!(value.len(), 4);
    }

    #[test]
    fn nested_fn_and_local_use_are_items() {
        let ast = parse_src("fn outer() { use std::time::Instant as C; fn inner() {} let x = 1; }");
        let ItemKind::Fn { body: Some(b), .. } = &ast.items[0].kind else {
            panic!("fn item");
        };
        let n_items = b
            .nodes
            .iter()
            .filter(|n| matches!(n, Node::Item(_)))
            .count();
        assert_eq!(n_items, 2);
        assert_eq!(ast.aliases()["C"].canonical(), "std::time::Instant");
    }

    #[test]
    fn struct_literal_braces_do_not_derail_parsing() {
        let ast = parse_src("fn f() { let p = Point { x: 1, y: 2 }; after(); }");
        let ItemKind::Fn { body: Some(b), .. } = &ast.items[0].kind else {
            panic!("fn item");
        };
        // The literal's braces become a nested Block; `after()` must
        // still be reachable in a following leaf.
        let found = b.nodes.iter().any(
            |n| matches!(n, Node::Leaf(toks) if toks.iter().any(|t| t.ident() == Some("after"))),
        );
        assert!(found, "{:?}", b.nodes);
    }

    #[test]
    fn loop_heads_are_captured() {
        let ast = parse_src("fn f(p: usize) { for k in 0..p { step(k); } loop { break; } }");
        let ItemKind::Fn { body: Some(b), .. } = &ast.items[0].kind else {
            panic!("fn item");
        };
        let Node::Loop { head, .. } = &b.nodes[0] else {
            panic!("for node");
        };
        assert!(head.iter().any(|t| t.ident() == Some("p")));
        assert!(matches!(&b.nodes[1], Node::Loop { head, .. } if head.is_empty()));
    }
}
