//! `xlint.allow` parsing: the allowlist that scopes rule exemptions.
//!
//! Format (one entry per line):
//!
//! ```text
//! # comment
//! <rule> <path-prefix> <justification...>
//! ```
//!
//! An entry suppresses violations of `<rule>` in any file whose
//! workspace-relative path starts with `<path-prefix>`. The justification is
//! mandatory — an exemption without a stated reason is a parse error — and
//! entries that suppress nothing are *stale* and fail the run, so the
//! allowlist can only shrink as violations are fixed.

use crate::rules::RULES;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path_prefix: String,
    pub reason: String,
    /// 1-based line in `xlint.allow`, for stale-entry reports.
    pub line: u32,
}

impl AllowEntry {
    pub fn matches(&self, rule: &str, path: &str) -> bool {
        self.rule == rule && path.starts_with(&self.path_prefix)
    }
}

/// Parse the allowlist text. Returns entries or a list of diagnostics.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, Vec<String>> {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let rule = parts.next().unwrap_or_default().to_string();
        let path_prefix = parts.next().unwrap_or_default().to_string();
        let reason = parts.next().unwrap_or_default().trim().to_string();
        if !RULES.contains(&rule.as_str()) {
            errors.push(format!(
                "xlint.allow:{line_no}: unknown rule `{rule}` (known: {})",
                RULES.join(", ")
            ));
            continue;
        }
        if path_prefix.is_empty() {
            errors.push(format!("xlint.allow:{line_no}: missing path prefix"));
            continue;
        }
        if reason.is_empty() {
            errors.push(format!(
                "xlint.allow:{line_no}: exemption for `{rule}` on `{path_prefix}` \
                 has no justification — state why the rule does not apply"
            ));
            continue;
        }
        entries.push(AllowEntry {
            rule,
            path_prefix,
            reason,
            line: line_no,
        });
    }
    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_skips_comments() {
        let text = "# header\n\nwallclock crates/mpisim/src/clock.rs measures host time to charge virtual compute\n";
        let entries = parse_allowlist(text).expect("valid allowlist parses");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "wallclock");
        assert!(entries[0].matches("wallclock", "crates/mpisim/src/clock.rs"));
        assert!(!entries[0].matches("wallclock", "crates/mpisim/src/comm.rs"));
        assert!(!entries[0].matches("no-unwrap", "crates/mpisim/src/clock.rs"));
    }

    #[test]
    fn rejects_unknown_rules_and_missing_reasons() {
        let errs = parse_allowlist("nosuchrule src/ because\n").expect_err("unknown rule");
        assert!(errs[0].contains("unknown rule"));
        let errs = parse_allowlist("wallclock src/lib.rs\n").expect_err("no reason");
        assert!(errs[0].contains("no justification"));
        let errs = parse_allowlist("wallclock\n").expect_err("no path");
        assert!(errs[0].contains("missing path prefix"));
    }
}
