//! The rule catalog. Every rule is named; names appear in violation output
//! and in the `xlint.allow` allowlist.
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `wallclock` | virtual-time lib code (`VIRTUAL_TIME_SRC`) | no `Instant`/`SystemTime`/`thread::sleep`: simulation code runs on virtual clocks. The real-execution backend (`crates/shmem`) and the resident service built on it (`crates/service`) are deliberately out of scope — wall clocks are their whole point |
//! | `relaxed-ordering` | all lib code | no `Ordering::Relaxed` outside allowlisted fast paths: cross-rank state uses `SeqCst` |
//! | `safety-comment` | everywhere | every `unsafe` is preceded by a `// SAFETY:` comment (or a `# Safety` doc section) |
//! | `no-unwrap` | library crates | no bare `.unwrap()`; `.expect()` must carry a string-literal invariant message |
//! | `tag-discipline` | everything outside `mpisim` | message tags are named constants, not integer literals, and stay out of the reserved collective space |
//! | `workload-determinism` | `workloads` crate | generators are seeded: no `thread_rng`/`from_entropy`/entropy sources |

use crate::lexer::{lex, strip_cfg_test, Tok, TokKind};

/// Stable names of every rule, in catalog order. `xlint.allow` entries must
/// name one of these.
pub const RULES: [&str; 6] = [
    "wallclock",
    "relaxed-ordering",
    "safety-comment",
    "no-unwrap",
    "tag-discipline",
    "workload-determinism",
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (stable, used in the allowlist).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

/// Crates whose library code runs on *virtual* time and therefore must not
/// read host clocks (`wallclock` rule). Scoped per-crate on purpose: the
/// real shared-memory backend (`crates/shmem`), the resident sort service
/// built on it (`crates/service`), and the harnesses measure wall-clock
/// time by design and are not listed here.
const VIRTUAL_TIME_SRC: [&str; 2] = ["crates/mpisim/src/", "crates/sdssort/src/"];

/// Library crates covered by the `no-unwrap` rule. `crates/sockcomm` is in
/// this scope but deliberately NOT in `VIRTUAL_TIME_SRC`: like `shmem` it
/// is a real-execution backend — wall clocks are its whole point.
const LIB_CRATE_SRC: [&str; 9] = [
    "crates/mpisim/src/",
    "crates/sdssort/src/",
    "crates/telemetry/src/",
    "crates/workloads/src/",
    "crates/baselines/src/",
    "crates/comm/src/",
    "crates/shmem/src/",
    "crates/service/src/",
    "crates/sockcomm/src/",
];

/// Comm methods whose tag argument must be a named constant, with the
/// zero-based position of the tag argument.
const TAGGED_METHODS: [(&str, usize); 10] = [
    ("send_vec", 1),
    ("send_slice", 1),
    ("send_val", 1),
    ("isend", 1),
    ("recv_vec", 1),
    ("recv_val", 1),
    ("irecv", 1),
    ("try_recv_from", 1),
    ("recv_any", 0),
    ("try_recv_any", 0),
];

/// Tags at or above this value are reserved for collectives
/// (`Comm::MAX_USER_TAG`).
const MAX_USER_TAG: u128 = 1 << 48;

/// Run every applicable rule over one file. `path` must be
/// workspace-relative with forward slashes.
pub fn check_file(path: &str, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let code = strip_cfg_test(&lexed.toks);
    let mut out = Vec::new();

    let is_test_path = path.contains("/tests/") || path.starts_with("tests/");
    let in_lib = |prefixes: &[&str]| prefixes.iter().any(|p| path.starts_with(p)) && !is_test_path;

    if in_lib(&VIRTUAL_TIME_SRC) {
        rule_wallclock(path, &code, &mut out);
    }
    if (path.starts_with("crates/") && path.contains("/src/") || path.starts_with("src/"))
        && !path.starts_with("tools/")
        && !is_test_path
    {
        rule_relaxed(path, &code, &mut out);
    }
    rule_safety_comment(path, &lexed.toks, &lexed.comments, &mut out);
    if in_lib(&LIB_CRATE_SRC) {
        rule_no_unwrap(path, &code, &mut out);
    }
    if !path.starts_with("crates/mpisim/") && !path.starts_with("tools/") {
        rule_tag_discipline(path, &code, &mut out);
    }
    if path.starts_with("crates/workloads/") {
        rule_workload_determinism(path, &lexed.toks, &mut out);
    }
    out
}

fn ident(t: &Tok) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: Option<&Tok>, c: char) -> bool {
    matches!(t.map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// `wallclock`: virtual-time code must not read host clocks or sleep.
fn rule_wallclock(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        match ident(t) {
            Some(name @ ("Instant" | "SystemTime")) => out.push(Violation {
                path: path.to_string(),
                line: t.line,
                rule: "wallclock",
                msg: format!(
                    "`{name}` in simulation code: use the rank's VirtualClock \
                     (wall time breaks virtual-time determinism)"
                ),
            }),
            Some("sleep")
                if i >= 2
                    && is_punct(toks.get(i - 1), ':')
                    && is_punct(toks.get(i - 2), ':')
                    && toks[..i - 2]
                        .iter()
                        .rev()
                        .find_map(ident)
                        .is_some_and(|p| p == "thread") =>
            {
                out.push(Violation {
                    path: path.to_string(),
                    line: t.line,
                    rule: "wallclock",
                    msg: "`thread::sleep` in simulation code: charge virtual seconds \
                          with `clock.charge(..)` instead"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
}

/// `relaxed-ordering`: `Ordering::Relaxed` only in allowlisted fast paths.
fn rule_relaxed(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for t in toks {
        if ident(t) == Some("Relaxed") {
            out.push(Violation {
                path: path.to_string(),
                line: t.line,
                rule: "relaxed-ordering",
                msg: "`Ordering::Relaxed` outside an allowlisted fast path: \
                      cross-rank shared state uses `SeqCst` (allowlist the file in \
                      xlint.allow with a justification if this is a measured hot path)"
                    .to_string(),
            });
        }
    }
}

/// `safety-comment`: `unsafe` needs a nearby `// SAFETY:` (or `# Safety`
/// doc section for `unsafe fn`/`unsafe trait` declarations).
fn rule_safety_comment(
    path: &str,
    toks: &[Tok],
    comments: &[(u32, String)],
    out: &mut Vec<Violation>,
) {
    const WINDOW: u32 = 6;
    for t in toks {
        if ident(t) != Some("unsafe") {
            continue;
        }
        let documented = comments.iter().any(|(line, text)| {
            *line <= t.line
                && t.line - *line <= WINDOW
                && (text.contains("SAFETY:") || text.contains("# Safety"))
        });
        if !documented {
            out.push(Violation {
                path: path.to_string(),
                line: t.line,
                rule: "safety-comment",
                msg: "`unsafe` without a `// SAFETY:` comment in the preceding lines: \
                      state the invariant that makes this sound"
                    .to_string(),
            });
        }
    }
}

/// `no-unwrap`: library code panics only on documented invariants.
fn rule_no_unwrap(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if !is_punct(toks.get(i.wrapping_sub(1)), '.') {
            continue;
        }
        match ident(t) {
            Some("unwrap") if is_punct(toks.get(i + 1), '(') && is_punct(toks.get(i + 2), ')') => {
                out.push(Violation {
                    path: path.to_string(),
                    line: t.line,
                    rule: "no-unwrap",
                    msg: "bare `.unwrap()` in library code: use `.expect(\"<invariant>\")`, \
                          or return an error"
                        .to_string(),
                });
            }
            Some("expect")
                if is_punct(toks.get(i + 1), '(')
                    && !matches!(toks.get(i + 2).map(|t| &t.kind), Some(TokKind::Str)) =>
            {
                out.push(Violation {
                    path: path.to_string(),
                    line: t.line,
                    rule: "no-unwrap",
                    msg: "`.expect()` without a string-literal message in library code: \
                          the message documents the invariant being relied on"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
}

/// `tag-discipline`: tags passed to comm methods must be named constants
/// (searchable, collision-auditable), and no literal may fall in the
/// reserved collective tag space at or above `Comm::MAX_USER_TAG` (2^48).
fn rule_tag_discipline(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = ident(t) else { continue };
        let Some(&(_, tag_idx)) = TAGGED_METHODS.iter().find(|(m, _)| *m == name) else {
            continue;
        };
        if !is_punct(toks.get(i.wrapping_sub(1)), '.') {
            continue;
        }
        // Skip an optional turbofish `::<...>`.
        let mut j = i + 1;
        if is_punct(toks.get(j), ':')
            && is_punct(toks.get(j + 1), ':')
            && is_punct(toks.get(j + 2), '<')
        {
            let mut depth = 0i32;
            j += 2;
            while let Some(t) = toks.get(j) {
                match t.kind {
                    TokKind::Punct('<') => depth += 1,
                    TokKind::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !is_punct(toks.get(j), '(') {
            continue;
        }
        // Split the argument list at top-level commas.
        let mut args: Vec<Vec<&Tok>> = vec![Vec::new()];
        let mut depth = 1i32;
        j += 1;
        while let Some(t) = toks.get(j) {
            match t.kind {
                TokKind::Punct('(' | '[' | '{') => depth += 1,
                TokKind::Punct(')' | ']' | '}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Punct(',') if depth == 1 => {
                    args.push(Vec::new());
                    j += 1;
                    continue;
                }
                _ => {}
            }
            args.last_mut().expect("args starts non-empty").push(t);
            j += 1;
        }
        if let Some(arg) = args.get(tag_idx) {
            if let [only] = arg.as_slice() {
                if let TokKind::Int(v) = only.kind {
                    let msg = match v {
                        Some(v) if v >= MAX_USER_TAG => format!(
                            "literal tag {v} passed to `{name}` is in the reserved collective \
                             tag space (>= Comm::MAX_USER_TAG = 2^48): user tags must stay below it"
                        ),
                        _ => format!(
                            "literal tag passed to `{name}`: define a named `const ..._TAG: u64` \
                             so tag assignments are searchable and collision-free"
                        ),
                    };
                    out.push(Violation {
                        path: path.to_string(),
                        line: t.line,
                        rule: "tag-discipline",
                        msg,
                    });
                }
            }
        }
    }
}

/// `workload-determinism`: workload generators draw only from seeded RNGs.
fn rule_workload_determinism(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = ident(t) else { continue };
        let banned = match name {
            "thread_rng" | "from_entropy" | "OsRng" | "SystemTime" | "Instant" => true,
            "random" => {
                i >= 3
                    && is_punct(toks.get(i - 1), ':')
                    && is_punct(toks.get(i - 2), ':')
                    && ident(&toks[i - 3]) == Some("rand")
            }
            _ => false,
        };
        if banned {
            out.push(Violation {
                path: path.to_string(),
                line: t.line,
                rule: "workload-determinism",
                msg: format!(
                    "`{name}` in a workload generator: datasets must be reproducible \
                     from an explicit seed (accept a `u64` seed and use `StdRng::seed_from_u64`)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        check_file(path, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn wallclock_flags_instant_in_sim_code_only() {
        let bad = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        assert_eq!(
            rules_hit("crates/mpisim/src/foo.rs", bad),
            vec!["wallclock", "wallclock"]
        );
        // Same source in a non-simulation crate: no violation.
        assert!(rules_hit("crates/telemetry/src/foo.rs", bad).is_empty());
        // Comments and strings never trigger.
        let trivia = "// Instant\nfn f() { let s = \"SystemTime\"; }";
        assert!(rules_hit("crates/mpisim/src/foo.rs", trivia).is_empty());
    }

    #[test]
    fn wallclock_scope_is_per_crate_not_blanket() {
        // The real-execution backend measures wall time by design: Instant
        // there is sanctioned without any xlint.allow entry...
        let wall = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        assert!(rules_hit("crates/shmem/src/universe.rs", wall).is_empty());
        // ...while the other library rules still apply to it in full.
        let sloppy = "fn f() { let t = Instant::now(); x.unwrap(); }";
        assert_eq!(
            rules_hit("crates/shmem/src/comm.rs", sloppy),
            vec!["no-unwrap"]
        );
        let relaxed = "fn f() { x.load(Ordering::Relaxed); }";
        assert_eq!(
            rules_hit("crates/shmem/src/mailbox.rs", relaxed),
            vec!["relaxed-ordering"]
        );
        // The transport-trait crate is time-agnostic: no wallclock scope,
        // but unwrap discipline holds.
        assert!(rules_hit("crates/comm/src/lib.rs", wall).is_empty());
        assert_eq!(
            rules_hit("crates/comm/src/lib.rs", "fn f() { x.unwrap(); }"),
            vec!["no-unwrap"]
        );
    }

    #[test]
    fn wallclock_flags_thread_sleep() {
        let bad = "fn f() { std::thread::sleep(d); }";
        assert_eq!(
            rules_hit("crates/sdssort/src/foo.rs", bad),
            vec!["wallclock"]
        );
        // A method merely named sleep on some object is fine.
        let ok = "fn f() { pool.sleep(); }";
        assert!(rules_hit("crates/sdssort/src/foo.rs", ok).is_empty());
    }

    #[test]
    fn relaxed_flagged_outside_allowlist_scope() {
        let bad = "fn f() { x.load(Ordering::Relaxed); }";
        assert_eq!(
            rules_hit("crates/telemetry/src/metrics.rs", bad),
            vec!["relaxed-ordering"]
        );
        assert_eq!(rules_hit("src/lib.rs", bad), vec!["relaxed-ordering"]);
        // Test modules are exempt.
        let in_test = "#[cfg(test)]\nmod tests { fn f() { x.load(Ordering::Relaxed); } }";
        assert!(rules_hit("crates/telemetry/src/metrics.rs", in_test).is_empty());
    }

    #[test]
    fn safety_comment_required_for_unsafe() {
        let bad = "fn f() { unsafe { do_it() } }";
        assert_eq!(
            rules_hit("crates/sdssort/src/m.rs", bad),
            vec!["safety-comment"]
        );
        let ok = "fn f() {\n    // SAFETY: buffer has capacity n.\n    unsafe { do_it() }\n}";
        assert!(rules_hit("crates/sdssort/src/m.rs", ok).is_empty());
        let doc_ok =
            "/// Does things.\n///\n/// # Safety\n/// Caller upholds X.\npub unsafe fn g() {}";
        assert!(rules_hit("crates/sdssort/src/m.rs", doc_ok).is_empty());
        // The word unsafe inside a string or comment never needs one.
        let trivia = "fn f() { let s = \"only unsafe when paired\"; } // unsafe";
        assert!(rules_hit("crates/bench/src/bin/x.rs", trivia).is_empty());
    }

    #[test]
    fn no_unwrap_in_library_code() {
        let bad = "fn f() { x.unwrap(); }";
        assert_eq!(
            rules_hit("crates/mpisim/src/comm.rs", bad),
            vec!["no-unwrap"]
        );
        // expect with a literal message is the sanctioned form.
        let ok = "fn f() { x.expect(\"queue is non-empty: pushed above\"); }";
        assert!(rules_hit("crates/mpisim/src/comm.rs", ok).is_empty());
        // expect with a computed message does not document an invariant.
        let bad2 = "fn f() { x.expect(&msg); }";
        assert_eq!(
            rules_hit("crates/mpisim/src/comm.rs", bad2),
            vec!["no-unwrap"]
        );
        // unwrap_or_default and friends are fine; binaries are out of scope.
        assert!(rules_hit(
            "crates/mpisim/src/comm.rs",
            "fn f() { x.unwrap_or_default(); }"
        )
        .is_empty());
        assert!(rules_hit("crates/bench/src/bin/cli.rs", bad).is_empty());
        // Test modules in library crates are exempt.
        let in_test = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        assert!(rules_hit("crates/mpisim/src/comm.rs", in_test).is_empty());
    }

    #[test]
    fn tag_discipline_flags_literal_tags() {
        let bad = "fn f(comm: &Comm) { comm.send_val(1, 7, x); }";
        assert_eq!(
            rules_hit("crates/sdssort/src/p.rs", bad),
            vec!["tag-discipline"]
        );
        let bad_turbofish = "fn f(comm: &Comm) { let v = comm.recv_vec::<Vec<u64>>(0, 3); }";
        assert_eq!(
            rules_hit("examples/demo.rs", bad_turbofish),
            vec!["tag-discipline"]
        );
        let ok = "const PIVOT_TAG: u64 = 7;\nfn f(comm: &Comm) { comm.send_val(1, PIVOT_TAG, x); }";
        assert!(rules_hit("crates/sdssort/src/p.rs", ok).is_empty());
        let expr_ok = "fn f(comm: &Comm, base: u64) { comm.send_val(1, base + 3, x); }";
        assert!(rules_hit("crates/sdssort/src/p.rs", expr_ok).is_empty());
        // mpisim itself owns the tag machinery and is exempt.
        assert!(rules_hit("crates/mpisim/src/collectives.rs", bad).is_empty());
        // Destination argument may be a literal; only the tag is checked.
        let dst_ok = "fn f(comm: &Comm) { comm.send_val(0, TAG, x); }";
        assert!(rules_hit("crates/sdssort/src/p.rs", dst_ok).is_empty());
    }

    #[test]
    fn tag_discipline_flags_reserved_space_literals() {
        // 2^48 passed in tag position: flagged with the reserved-space message.
        let bad = "fn f(comm: &Comm) { comm.send_val(1, 281474976710656, x); }";
        let v = check_file("crates/sdssort/src/p.rs", bad);
        assert_eq!(v.len(), 1);
        assert!(
            v[0].msg.contains("reserved collective tag space"),
            "{}",
            v[0].msg
        );
        // Large constants outside tag position (hash mixers, sign masks) are fine.
        let ok = "const M: u64 = 0x9E37_79B9_7F4A_7C15;\nconst S: u64 = 0x8000_0000_0000_0000;";
        assert!(rules_hit("crates/sdssort/src/p.rs", ok).is_empty());
    }

    #[test]
    fn workload_determinism_bans_entropy() {
        let bad = "fn gen() { let mut rng = rand::thread_rng(); }";
        assert_eq!(
            rules_hit("crates/workloads/src/zipf.rs", bad),
            vec!["workload-determinism"]
        );
        let bad2 = "fn gen() { let x: f64 = rand::random(); }";
        assert_eq!(
            rules_hit("crates/workloads/src/zipf.rs", bad2),
            vec!["workload-determinism"]
        );
        let ok = "fn gen(seed: u64) { let mut rng = StdRng::seed_from_u64(seed); }";
        assert!(rules_hit("crates/workloads/src/zipf.rs", ok).is_empty());
        // A field or method called random elsewhere is fine.
        assert!(rules_hit("crates/workloads/src/zipf.rs", "fn f() { self.random(); }").is_empty());
    }
}
