//! `rank-divergent-collective`: no `Communicator` collective call may sit
//! lexically inside a branch, loop, or match whose condition depends on
//! the caller's rank.
//!
//! This is the static shadow of mpisim's runtime deadlock detector
//! (PR 2): the SPMD protocol invariant says every rank must reach the
//! same collectives in the same order, and `if my_rank == 0 {
//! comm.barrier(); }` deadlocks the other ranks the first time that path
//! executes. The runtime detector only catches the schedule a given seed
//! produces; this pass catches the *shape* on every path.
//!
//! False-positive control:
//! * collective names are matched together with their arity, so
//!   `str::split(',')` (1 arg) is not `Communicator::split(color, key)`
//!   (2 args) and `Iterator::reduce(f)` (1 arg) is not
//!   `Communicator::reduce(root, v, op)` (3 args). `scan` is excluded
//!   outright — `Iterator::scan` is too common and the comm variant is
//!   unused in this workspace;
//! * rank mentions *inside the arguments of a `split` call* do not make
//!   a condition divergent: `split(if rank == r { Some(0) } else { None },
//!   ..)` is the sanctioned color-by-rank idiom — every rank still
//!   reaches the `split` itself;
//! * `bcast(root, if rank == root { Some(v) } else { None })` never
//!   triggers: the `if` lives inside the call's parentheses, which the
//!   AST keeps as part of the flat call leaf, not as a Branch node.

use super::{method_calls, FileCtx};
use crate::ast::{Block, Item, ItemKind, Node};
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

/// Collective `Communicator` methods with their argument counts
/// (receiver excluded). Arity disambiguates from std methods of the same
/// name.
const COLLECTIVES: [(&str, usize); 21] = [
    ("barrier", 0),
    ("bcast", 2),
    ("gatherv", 2),
    ("gather", 2),
    ("alltoall", 1),
    ("alltoallv", 2),
    ("alltoallv_async", 2),
    ("alltoallv_given_counts", 3),
    ("alltoallv_async_given_counts", 3),
    ("allgather", 1),
    ("allgatherv", 1),
    ("reduce", 3),
    ("allreduce", 2),
    ("exscan", 2),
    ("scatter", 2),
    ("scatterv", 2),
    ("reduce_scatter", 2),
    ("split", 2),
    ("split_shared_node", 0),
    ("split_node_leaders", 0),
    ("refine_comm", 0),
];

/// Identifiers that name the caller's rank in this workspace's code.
const RANK_IDENTS: [&str; 4] = ["rank", "my_rank", "world_rank", "me"];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for item in &ctx.ast.items {
        check_item(ctx, item, out);
    }
}

fn check_item(ctx: &FileCtx<'_>, item: &Item, out: &mut Vec<Diagnostic>) {
    if item.cfg_test {
        return;
    }
    match &item.kind {
        ItemKind::Fn { body: Some(b), .. } => check_block(ctx, b, false, out),
        ItemKind::Mod { items } | ItemKind::Container { items, .. } => {
            for i in items {
                check_item(ctx, i, out);
            }
        }
        _ => {}
    }
}

fn check_block(ctx: &FileCtx<'_>, block: &Block, divergent: bool, out: &mut Vec<Diagnostic>) {
    for node in &block.nodes {
        match node {
            Node::Leaf(toks) => {
                if divergent {
                    flag_collectives(ctx, toks, out);
                }
            }
            Node::Branch { cond, body, els } => {
                if divergent {
                    flag_collectives(ctx, cond, out);
                }
                let d = divergent || mentions_rank(cond);
                check_block(ctx, body, d, out);
                if let Some(e) = els {
                    check_block(ctx, e, d, out);
                }
            }
            Node::Loop { head, body } => {
                if divergent {
                    flag_collectives(ctx, head, out);
                }
                // A rank-dependent head means rank-dependent trip counts:
                // a collective in the body runs a different number of
                // times per rank, which is the same protocol divergence.
                let d = divergent || mentions_rank(head);
                check_block(ctx, body, d, out);
            }
            Node::Match { scrut, arms } => {
                if divergent {
                    flag_collectives(ctx, scrut, out);
                }
                let d = divergent || mentions_rank(scrut);
                for arm in arms {
                    check_block(ctx, &arm.body, d, out);
                }
            }
            Node::Block(b) => check_block(ctx, b, divergent, out),
            Node::Item(item) => check_item(ctx, item, out),
        }
    }
}

/// Does a condition/head/scrutinee token run depend on the caller's rank?
/// Rank mentions inside the argument parentheses of a `split*` call are
/// sanctioned (color-by-rank) and do not count.
fn mentions_rank(run: &[Tok]) -> bool {
    let mut skip_depth = 0i32;
    let mut i = 0usize;
    while i < run.len() {
        let t = &run[i];
        if skip_depth > 0 {
            match &t.kind {
                TokKind::Punct('(') => skip_depth += 1,
                TokKind::Punct(')') => skip_depth -= 1,
                _ => {}
            }
            i += 1;
            continue;
        }
        if let Some(name) = t.ident() {
            if name.starts_with("split") && run.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                skip_depth = 1;
                i += 2;
                continue;
            }
            if RANK_IDENTS.contains(&name) {
                return true;
            }
        }
        i += 1;
    }
    false
}

fn flag_collectives(ctx: &FileCtx<'_>, run: &[Tok], out: &mut Vec<Diagnostic>) {
    for call in method_calls(run) {
        let is_collective = COLLECTIVES
            .iter()
            .any(|&(name, arity)| name == call.name && arity == call.args.len());
        if is_collective {
            out.push(Diagnostic {
                path: ctx.path.to_string(),
                line: call.tok.line,
                col: call.tok.col,
                rule: "rank-divergent-collective",
                msg: format!(
                    "collective `{}` inside a rank-dependent branch: ranks taking the \
                     other path never reach it, and the collective deadlocks (SPMD \
                     protocol requires every rank to reach the same collectives in the \
                     same order)",
                    call.name
                ),
                suggestion: Some(
                    "hoist the collective out of the branch; keep only rank-dependent \
                     *data* (e.g. `bcast(root, if rank == root { Some(v) } else { None })`) \
                     inside, or switch to point-to-point messages"
                        .to_string(),
                ),
            });
        }
    }
}
