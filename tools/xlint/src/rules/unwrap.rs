//! `no-unwrap`: library code panics only on documented invariants.
//!
//! Bare `.unwrap()` is banned; `.expect(..)` must carry a string-literal
//! message (a computed message documents nothing at the call site).

use super::{walk_runs, FileCtx};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    walk_runs(ctx.ast, false, &mut |run| {
        for (i, t) in run.iter().enumerate() {
            if i == 0 || !run[i - 1].is_punct('.') {
                continue;
            }
            match t.ident() {
                Some("unwrap")
                    if run.get(i + 1).is_some_and(|t| t.is_punct('('))
                        && run.get(i + 2).is_some_and(|t| t.is_punct(')')) =>
                {
                    out.push(Diagnostic {
                        path: ctx.path.to_string(),
                        line: t.line,
                        col: t.col,
                        rule: "no-unwrap",
                        msg: "bare `.unwrap()` in library code".to_string(),
                        suggestion: Some(
                            "use `.expect(\"<invariant>\")`, or return an error".to_string(),
                        ),
                    });
                }
                Some("expect")
                    if run.get(i + 1).is_some_and(|t| t.is_punct('('))
                        && !matches!(run.get(i + 2).map(|t| &t.kind), Some(TokKind::Str)) =>
                {
                    out.push(Diagnostic {
                        path: ctx.path.to_string(),
                        line: t.line,
                        col: t.col,
                        rule: "no-unwrap",
                        msg: "`.expect()` without a string-literal message in library code"
                            .to_string(),
                        suggestion: Some(
                            "the message documents the invariant being relied on — make it \
                             a string literal"
                                .to_string(),
                        ),
                    });
                }
                _ => {}
            }
        }
    });
}
