//! `unchecked-partition-arith`: index/count arithmetic feeding slice
//! bounds must not be able to overflow or underflow silently.
//!
//! This rule descends from two real bug families in this repo: PR 2
//! widened splitter-position interpolation to `u128` after `usize`
//! products overflowed on large synthetic inputs, and PR 7 fixed both a
//! merge-cut underfill and a radix-carve overshoot where `a - b` / `a *
//! b` index math walked off the end of a partition. In release builds
//! (tier-2 runs `--release`) these wrap silently and corrupt the sort
//! instead of panicking.
//!
//! What counts as a *bound context*: the inside of an index bracket
//! `v[...]` (which also covers range bounds `&v[a..b]`) and the
//! arguments of `split_at`/`split_at_mut`. Within a context:
//!
//! * binary `*` is flagged unless one operand is a literal (scaling by a
//!   constant like `2 * j` cannot overflow before the allocation itself
//!   would have failed);
//! * binary `-` is flagged unless the right operand is a literal
//!   (`len - 1` is the guarded-by-emptiness idiom used throughout);
//! * `+` alone is never flagged — index `i + 1` cannot overflow unless
//!   the container already occupies all of memory;
//! * any mitigation marker in the context suppresses it: `checked_*`,
//!   `saturating_*`, a `u128`/`i128` widening cast, or a clamping
//!   `min`/`clamp` call.
//!
//! One diagnostic per context, anchored at the first flagged operator.

use super::{is_value_end, is_value_start, method_calls, FileCtx};
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    super::walk_runs(ctx.ast, false, &mut |run| {
        // Index-bracket contexts: `expr [ ... ]` where the `[` follows a
        // value (otherwise it is an array/attr literal).
        let mut i = 0usize;
        while i < run.len() {
            if run[i].is_punct('[') && i > 0 && is_value_end(&run[i - 1]) {
                let start = i + 1;
                let mut depth = 1i32;
                let mut j = start;
                while j < run.len() {
                    match &run[j].kind {
                        TokKind::Punct('[' | '(' | '{') => depth += 1,
                        TokKind::Punct(']' | ')' | '}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                check_context(ctx, &run[start..j.min(run.len())], out);
                i = j + 1;
                continue;
            }
            i += 1;
        }
        // `split_at` / `split_at_mut` arguments are slice bounds too.
        for call in method_calls(run) {
            if matches!(call.name, "split_at" | "split_at_mut") {
                for arg in &call.args {
                    check_context(ctx, arg, out);
                }
            }
        }
    });
}

/// Scan one bound context for unchecked arithmetic.
fn check_context(ctx: &FileCtx<'_>, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    if toks.iter().any(is_mitigated) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        let TokKind::Punct(op @ ('*' | '-')) = t.kind else {
            continue;
        };
        // Binary only: a left operand must precede and a value must follow
        // (rules out deref `*p`, unary `-1`, `->`, and range `..-`).
        let prev = match i.checked_sub(1).and_then(|k| toks.get(k)) {
            Some(p) if is_value_end(p) => p,
            _ => continue,
        };
        let Some(next) = toks.get(i + 1).filter(|n| is_value_start(n)) else {
            continue;
        };
        let lhs_lit = matches!(prev.kind, TokKind::Int(_));
        let rhs_lit = matches!(next.kind, TokKind::Int(_));
        let flagged = match op {
            '*' => !lhs_lit && !rhs_lit,
            '-' => !rhs_lit,
            _ => false,
        };
        if flagged {
            let (verb, bug) = if op == '*' {
                ("overflow", "the radix-carve overshoot class")
            } else {
                ("underflow", "the merge-cut underfill class")
            };
            out.push(Diagnostic {
                path: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                rule: "unchecked-partition-arith",
                msg: format!(
                    "unchecked `{op}` in index arithmetic feeding a slice bound: a \
                     silent {verb} here corrupts the partition in release builds ({bug})"
                ),
                suggestion: Some(
                    "widen the intermediate to `u128`, or use `checked_*`/`saturating_*` \
                     with an explicit `.expect(\"<why it fits>\")`"
                        .to_string(),
                ),
            });
            return; // one diagnostic per context
        }
    }
}

/// Mitigation markers that make a context's arithmetic sound.
fn is_mitigated(t: &Tok) -> bool {
    match t.ident() {
        Some(name) => {
            name.starts_with("checked_")
                || name.starts_with("saturating_")
                || name == "u128"
                || name == "i128"
                || name == "min"
                || name == "clamp"
        }
        None => false,
    }
}
