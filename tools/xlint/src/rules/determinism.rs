//! `workload-determinism`: workload generators draw only from seeded RNGs.
//!
//! Datasets must be reproducible from an explicit `u64` seed; any entropy
//! source (thread-local RNG, OS randomness, clock reads) makes a
//! benchmark run unrepeatable. Runs over the full token stream — test
//! code in `workloads` generates datasets too. Alias-proof via the
//! file's `use` tree (`use rand::thread_rng as rng` still flags).

use super::FileCtx;
use crate::diag::Diagnostic;

const ENTROPY_NAMES: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "SystemTime",
    "Instant",
];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        let banned = if ENTROPY_NAMES.contains(&name) {
            true
        } else if name == "random" {
            // `rand::random` only; a field or method named random is fine.
            i >= 3
                && ctx.toks[i - 1].is_punct(':')
                && ctx.toks[i - 2].is_punct(':')
                && ctx.toks[i - 3].ident() == Some("rand")
        } else if i == 0 || !(ctx.toks[i - 1].is_punct('.') || ctx.toks[i - 1].is_punct(':')) {
            // A rename of an entropy source (`use rand::thread_rng as r`).
            ctx.resolve(name).is_some_and(|canon| {
                ENTROPY_NAMES
                    .iter()
                    .any(|e| canon.rsplit("::").next() == Some(e))
                    || canon == "rand::random"
            })
        } else {
            false
        };
        if banned {
            out.push(Diagnostic {
                path: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                rule: "workload-determinism",
                msg: format!("`{name}` in a workload generator: datasets must be reproducible"),
                suggestion: Some(
                    "accept an explicit `u64` seed and use `StdRng::seed_from_u64`".to_string(),
                ),
            });
        }
    }
}
