//! `relaxed-ordering`: `Ordering::Relaxed` only in allowlisted fast paths.
//!
//! Cross-rank shared state in this workspace is `SeqCst` by policy;
//! `Relaxed` is reserved for measured hot paths that carry an
//! `xlint.allow` justification. Alias-proof: `use
//! std::sync::atomic::Ordering::Relaxed as R` flags the binding and each
//! use of `R`.

use super::{walk_runs, FileCtx};
use crate::diag::Diagnostic;

/// True when a canonical `use` path names the relaxed memory ordering.
fn is_relaxed_path(path: &[String]) -> bool {
    path.len() >= 2 && path[path.len() - 2] == "Ordering" && path[path.len() - 1] == "Relaxed"
}

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for b in ctx.aliases.values() {
        if is_relaxed_path(&b.path) && b.name != "Relaxed" {
            out.push(diag(
                ctx,
                b.line,
                b.col,
                &format!(
                    "`use {} as {}` renames the relaxed memory ordering",
                    b.canonical(),
                    b.name
                ),
            ));
        }
    }
    walk_runs(ctx.ast, false, &mut |run| {
        for t in run {
            let Some(name) = t.ident() else { continue };
            let hit = name == "Relaxed"
                || ctx
                    .aliases
                    .get(name)
                    .is_some_and(|b| is_relaxed_path(&b.path));
            if hit {
                out.push(diag(
                    ctx,
                    t.line,
                    t.col,
                    "`Ordering::Relaxed` outside an allowlisted fast path",
                ));
            }
        }
    });
}

fn diag(ctx: &FileCtx<'_>, line: u32, col: u32, msg: &str) -> Diagnostic {
    Diagnostic {
        path: ctx.path.to_string(),
        line,
        col,
        rule: "relaxed-ordering",
        msg: format!("{msg}: cross-rank shared state uses `SeqCst`"),
        suggestion: Some(
            "use `Ordering::SeqCst`, or allowlist the file in xlint.allow with a \
             justification if this is a measured hot path"
                .to_string(),
        ),
    }
}
