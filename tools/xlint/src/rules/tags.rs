//! Tag rules: `tag-discipline` (tags are named constants) and
//! `user-tag-range` (user tags stay below `comm::MAX_USER_TAG`, and the
//! reserved-tag `RawComm` surface stays inside the backend substrate).
//!
//! The collective tag space at and above 2^48 is how PR 5's layered
//! collectives keep protocol traffic from colliding with user messages;
//! a user tag wandering into it corrupts a collective on some other
//! rank. `user-tag-range` evaluates `const` chains (`BASE + k`,
//! `1 << 48`) through the file's const table, so the violation is caught
//! at the declaration and at the call site even when no literal appears.

use super::{const_eval, method_calls, walk_runs, FileCtx, MAX_USER_TAG};
use crate::ast::{Item, ItemKind};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;

/// Comm methods whose tag argument must be a named constant, with the
/// zero-based position of the tag argument. Covers both the user-facing
/// `Communicator` surface and the `RawComm` substrate methods.
const TAGGED_METHODS: [(&str, usize); 16] = [
    ("send_vec", 1),
    ("send_slice", 1),
    ("send_val", 1),
    ("isend", 1),
    ("recv_vec", 1),
    ("recv_val", 1),
    ("irecv", 1),
    ("try_recv_from", 1),
    ("recv_any", 0),
    ("try_recv_any", 0),
    ("send_raw", 1),
    ("send_slice_raw", 1),
    ("recv_vec_raw", 1),
    ("recv_val_raw", 1),
    ("recv_any_raw", 0),
    ("try_recv_any_raw", 0),
];

/// `tag-discipline`: tags passed to comm methods must be named constants,
/// so tag assignments are searchable and collision-auditable.
pub fn check_discipline(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    walk_runs(ctx.ast, false, &mut |run| {
        for call in method_calls(run) {
            let Some(&(_, tag_idx)) = TAGGED_METHODS.iter().find(|(m, _)| *m == call.name) else {
                continue;
            };
            let Some(arg) = call.args.get(tag_idx) else {
                continue;
            };
            if let [only] = arg {
                if matches!(only.kind, TokKind::Int(_)) {
                    out.push(Diagnostic {
                        path: ctx.path.to_string(),
                        line: only.line,
                        col: only.col,
                        rule: "tag-discipline",
                        msg: format!("literal tag passed to `{}`", call.name),
                        suggestion: Some(
                            "define a named `const ..._TAG: u64` so tag assignments are \
                             searchable and collision-free"
                                .to_string(),
                        ),
                    });
                }
            }
        }
    });
}

/// `user-tag-range`: no tag at or above `MAX_USER_TAG` (2^48) reaches a
/// comm call or a `const ..TAG..` declaration, and the reserved-tag
/// `*_raw` surface is not called outside the backend substrate crates.
pub fn check_user_range(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    // Const declarations whose name marks them as tags.
    check_const_items(ctx, &ctx.ast.items, out);

    walk_runs(ctx.ast, false, &mut |run| {
        for call in method_calls(run) {
            // Reserved-tag substrate surface.
            if call.name.ends_with("_raw") || call.name == "next_coll_tag" {
                out.push(Diagnostic {
                    path: ctx.path.to_string(),
                    line: call.tok.line,
                    col: call.tok.col,
                    rule: "user-tag-range",
                    msg: format!(
                        "`{}` call outside the comm backend substrate: `RawComm` bypasses \
                         the user-tag check and may collide with collective protocol traffic",
                        call.name
                    ),
                    suggestion: Some(
                        "use the `Communicator` surface; reserved-tag plumbing belongs in \
                         `crates/comm` and the backends that implement `RawComm`"
                            .to_string(),
                    ),
                });
                continue;
            }
            // Tag arguments that statically evaluate into the reserved space.
            let Some(&(_, tag_idx)) = TAGGED_METHODS.iter().find(|(m, _)| *m == call.name) else {
                continue;
            };
            let Some(arg) = call.args.get(tag_idx) else {
                continue;
            };
            if let Some(v) = const_eval(arg, &ctx.consts) {
                if v >= MAX_USER_TAG {
                    let anchor = arg.first().unwrap_or(call.tok);
                    out.push(Diagnostic {
                        path: ctx.path.to_string(),
                        line: anchor.line,
                        col: anchor.col,
                        rule: "user-tag-range",
                        msg: format!(
                            "tag {v} passed to `{}` is in the reserved collective tag space \
                             (>= MAX_USER_TAG = 2^48)",
                            call.name
                        ),
                        suggestion: Some(
                            "user tags must stay below `comm::MAX_USER_TAG`; pick a small \
                             named constant"
                                .to_string(),
                        ),
                    });
                }
            }
        }
    });
}

/// Flag `const`/`static` declarations whose name contains `TAG` and whose
/// initializer evaluates at or above the reserved boundary. The name
/// filter keeps hash mixers and sign masks (large by nature) out of scope.
fn check_const_items(ctx: &FileCtx<'_>, items: &[Item], out: &mut Vec<Diagnostic>) {
    for item in items {
        if item.cfg_test {
            continue;
        }
        match &item.kind {
            ItemKind::Const {
                name,
                value,
                line,
                col,
            } if name.contains("TAG") => {
                if let Some(v) = const_eval(value, &ctx.consts) {
                    if v >= MAX_USER_TAG {
                        out.push(Diagnostic {
                            path: ctx.path.to_string(),
                            line: *line,
                            col: *col,
                            rule: "user-tag-range",
                            msg: format!(
                                "`const {name}` = {v} is in the reserved collective tag \
                                 space (>= MAX_USER_TAG = 2^48)"
                            ),
                            suggestion: Some(
                                "user tag constants must stay below `comm::MAX_USER_TAG`"
                                    .to_string(),
                            ),
                        });
                    }
                }
            }
            ItemKind::Mod { items } | ItemKind::Container { items, .. } => {
                check_const_items(ctx, items, out);
            }
            _ => {}
        }
    }
}
