//! `safety-comment`: every `unsafe` carries a nearby `// SAFETY:` comment
//! (or a `# Safety` doc section for `unsafe fn`/`unsafe trait`
//! declarations) stating the invariant that makes it sound.
//!
//! This pass runs over the raw token stream — including `#[cfg(test)]`
//! code — because unsound test helpers are just as unsound.

use super::FileCtx;
use crate::diag::Diagnostic;

/// How many lines above the `unsafe` token the comment may appear.
const WINDOW: u32 = 6;

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for t in ctx.toks {
        if t.ident() != Some("unsafe") {
            continue;
        }
        let documented = ctx.comments.iter().any(|(line, text)| {
            *line <= t.line
                && t.line - *line <= WINDOW
                && (text.contains("SAFETY:") || text.contains("# Safety"))
        });
        if !documented {
            out.push(Diagnostic {
                path: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                rule: "safety-comment",
                msg: "`unsafe` without a `// SAFETY:` comment in the preceding lines".to_string(),
                suggestion: Some(
                    "state the invariant that makes this sound in a `// SAFETY:` comment \
                     directly above (or a `# Safety` doc section for declarations)"
                        .to_string(),
                ),
            });
        }
    }
}
