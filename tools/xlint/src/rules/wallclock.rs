//! `wallclock`: virtual-time code must not read host clocks or sleep.
//!
//! Simulation crates (`mpisim`, `sdssort`) run on the rank's
//! `VirtualClock`; any host-time read silently breaks virtual-time
//! determinism. The rule is alias-proof: `use std::time::Instant as T`
//! flags both the binding and every later use of `T`, because bindings
//! are resolved through the file's `use` tree rather than matched by
//! surface name.

use super::{walk_runs, FileCtx};
use crate::diag::Diagnostic;
use crate::lexer::Tok;

/// Canonical paths banned in virtual-time code.
const BANNED_PATHS: [&str; 3] = [
    "std::time::Instant",
    "std::time::SystemTime",
    "std::thread::sleep",
];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    // The `use` bindings themselves: this is what catches renames.
    for b in ctx.aliases.values() {
        let canon = b.canonical();
        if BANNED_PATHS.contains(&canon.as_str()) {
            out.push(diag(
                ctx,
                b.line,
                b.col,
                &format!("`use {canon}` in simulation code"),
                &canon,
            ));
        }
    }

    walk_runs(ctx.ast, false, &mut |run| {
        for (i, t) in run.iter().enumerate() {
            let Some(name) = t.ident() else { continue };
            // Direct names, however the path is spelled.
            if matches!(name, "Instant" | "SystemTime") {
                out.push(diag(
                    ctx,
                    t.line,
                    t.col,
                    &format!("`{name}` in simulation code"),
                    &format!("std::time::{name}"),
                ));
                continue;
            }
            // `thread::sleep` / `std::thread::sleep` path calls.
            if name == "sleep"
                && i >= 2
                && run[i - 1].is_punct(':')
                && run[i - 2].is_punct(':')
                && run[..i - 2]
                    .iter()
                    .rev()
                    .find_map(Tok::ident)
                    .is_some_and(|p| p == "thread")
            {
                out.push(diag(
                    ctx,
                    t.line,
                    t.col,
                    "`thread::sleep` in simulation code",
                    "std::thread::sleep",
                ));
                continue;
            }
            // Anything else that *resolves* to a banned path through a
            // `use ... as` rename. Skip method/field positions (`x.sleep()`
            // is some object's own method, not std's).
            if i > 0 && (run[i - 1].is_punct('.') || run[i - 1].is_punct(':')) {
                continue;
            }
            if let Some(canon) = ctx.resolve(name) {
                if BANNED_PATHS.contains(&canon.as_str()) {
                    out.push(diag(
                        ctx,
                        t.line,
                        t.col,
                        &format!("`{name}` (= `{canon}` via `use`) in simulation code"),
                        &canon,
                    ));
                }
            }
        }
    });
}

fn diag(ctx: &FileCtx<'_>, line: u32, col: u32, what: &str, canon: &str) -> Diagnostic {
    let suggestion = if canon.ends_with("sleep") {
        "charge virtual seconds with `clock.charge(..)` instead of sleeping"
    } else {
        "read time from the rank's VirtualClock (wall time breaks virtual-time determinism)"
    };
    Diagnostic {
        path: ctx.path.to_string(),
        line,
        col,
        rule: "wallclock",
        msg: format!("{what}: simulation code runs on virtual clocks"),
        suggestion: Some(suggestion.to_string()),
    }
}
