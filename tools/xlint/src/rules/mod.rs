//! The rule catalog: every pass is named; names appear in diagnostics and
//! in the `xlint.allow` allowlist.
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `wallclock` | virtual-time lib code (`VIRTUAL_TIME_SRC`) | no `Instant`/`SystemTime`/`thread::sleep` — alias-proof via `use`-tree resolution. The real-execution backends (`shmem`, `sockcomm`) and the resident service are out of scope: wall clocks are their whole point |
//! | `relaxed-ordering` | all lib code | no `Ordering::Relaxed` outside allowlisted fast paths: cross-rank state uses `SeqCst` |
//! | `safety-comment` | everywhere | every `unsafe` is preceded by a `// SAFETY:` comment (or a `# Safety` doc section) |
//! | `no-unwrap` | library crates (incl. `algos`) | no bare `.unwrap()`; `.expect()` must carry a string-literal invariant message |
//! | `tag-discipline` | everything outside `mpisim` | message tags are named constants, not integer literals |
//! | `workload-determinism` | `workloads` crate | generators are seeded: no `thread_rng`/`from_entropy`/entropy sources |
//! | `rank-divergent-collective` | algorithm/driver code | no `Communicator` collective call lexically inside a branch/loop/match that depends on the caller's rank — the static shadow of mpisim's runtime deadlock detector |
//! | `unchecked-partition-arith` | `sdssort::{partition,merge,radix}`, `baselines`, `algos` | no unchecked `*`/`-` (or compound `+`) on index/count expressions feeding slice bounds: widen to `u128` or use `checked_*`/`saturating_*` (the PR 7 merge-cut / radix-carve overflow class) |
//! | `user-tag-range` | outside the comm substrate crates | no literal or const tag at/above `MAX_USER_TAG`, and no `*_raw` reserved-tag call outside the backends that implement `RawComm` |
//! | `blocking-in-dispatcher` | `crates/service` | no `thread::sleep`/`park` or blocking channel `recv` in the service: the dispatcher's only sanctioned block point is the submission mailbox |

pub mod arith;
pub mod blocking;
pub mod determinism;
pub mod divergence;
pub mod ordering;
pub mod safety;
pub mod tags;
pub mod unwrap;
pub mod wallclock;

use crate::ast::{self, Arm, Ast, Block, Item, ItemKind, Node, UseBinding};
use crate::diag::Diagnostic;
use crate::lexer::{lex, Tok, TokKind};
use std::collections::HashMap;

/// Stable names of every rule, in catalog order. `xlint.allow` entries must
/// name one of these.
pub const RULES: [&str; 10] = [
    "wallclock",
    "relaxed-ordering",
    "safety-comment",
    "no-unwrap",
    "tag-discipline",
    "workload-determinism",
    "rank-divergent-collective",
    "unchecked-partition-arith",
    "user-tag-range",
    "blocking-in-dispatcher",
];

/// Crates whose library code runs on *virtual* time and therefore must not
/// read host clocks (`wallclock` rule). Scoped per-crate on purpose: the
/// real shared-memory backend (`crates/shmem`), the sockets backend
/// (`crates/sockcomm`), the resident sort service (`crates/service`), and
/// the harnesses measure wall-clock time by design and are not listed.
const VIRTUAL_TIME_SRC: [&str; 3] = [
    "crates/mpisim/src/",
    "crates/sdssort/src/",
    "crates/algos/src/",
];

/// Library crates covered by the `no-unwrap` rule.
const LIB_CRATE_SRC: [&str; 10] = [
    "crates/mpisim/src/",
    "crates/sdssort/src/",
    "crates/telemetry/src/",
    "crates/workloads/src/",
    "crates/baselines/src/",
    "crates/algos/src/",
    "crates/comm/src/",
    "crates/shmem/src/",
    "crates/service/src/",
    "crates/sockcomm/src/",
];

/// Files covered by `unchecked-partition-arith`: the partition/carve
/// arithmetic the rule descends from lives here (PR 2's u128 widening,
/// PR 7's merge-cut underfill and radix-carve overshoot fixes).
const PARTITION_ARITH_SRC: [&str; 5] = [
    "crates/sdssort/src/partition.rs",
    "crates/sdssort/src/merge.rs",
    "crates/sdssort/src/radix.rs",
    "crates/baselines/src/",
    "crates/algos/src/",
];

/// Tags at or above this value are reserved for collectives
/// (`comm::MAX_USER_TAG`).
pub const MAX_USER_TAG: u128 = 1 << 48;

/// Per-file context handed to every rule: the token stream, the parsed
/// AST, resolved `use` aliases, and evaluated integer consts.
pub struct FileCtx<'a> {
    pub path: &'a str,
    pub toks: &'a [Tok],
    pub comments: &'a [(u32, String)],
    pub ast: &'a Ast,
    /// `use` bindings by visible name (non-test code only).
    pub aliases: HashMap<String, UseBinding>,
    /// Integer consts by name, where the initializer evaluates statically.
    pub consts: HashMap<String, u128>,
}

impl FileCtx<'_> {
    /// The canonical path a bare identifier resolves to through the
    /// file's `use` declarations, if any.
    pub fn resolve(&self, name: &str) -> Option<String> {
        self.aliases.get(name).map(UseBinding::canonical)
    }
}

/// Run every applicable rule over one file. `path` must be
/// workspace-relative with forward slashes.
pub fn check_file(path: &str, src: &str) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let ast = ast::parse(&lexed.toks);
    let ctx = FileCtx {
        path,
        toks: &lexed.toks,
        comments: &lexed.comments,
        aliases: ast.aliases(),
        consts: const_table(&ast),
        ast: &ast,
    };
    let mut out = Vec::new();

    let is_test_path = path.contains("/tests/") || path.starts_with("tests/");
    let in_lib = |prefixes: &[&str]| prefixes.iter().any(|p| path.starts_with(p)) && !is_test_path;
    let in_backend_substrate = [
        "crates/comm/",
        "crates/mpisim/",
        "crates/shmem/",
        "crates/sockcomm/",
    ]
    .iter()
    .any(|p| path.starts_with(p));

    if in_lib(&VIRTUAL_TIME_SRC) {
        wallclock::check(&ctx, &mut out);
    }
    if (path.starts_with("crates/") && path.contains("/src/") || path.starts_with("src/"))
        && !path.starts_with("tools/")
        && !is_test_path
    {
        ordering::check(&ctx, &mut out);
    }
    safety::check(&ctx, &mut out);
    if in_lib(&LIB_CRATE_SRC) {
        unwrap::check(&ctx, &mut out);
    }
    if !path.starts_with("crates/mpisim/") && !path.starts_with("tools/") {
        tags::check_discipline(&ctx, &mut out);
    }
    if path.starts_with("crates/workloads/") {
        determinism::check(&ctx, &mut out);
    }
    if !in_backend_substrate && !path.starts_with("tools/") && !is_test_path {
        divergence::check(&ctx, &mut out);
    }
    if in_lib(&PARTITION_ARITH_SRC) {
        arith::check(&ctx, &mut out);
    }
    if !in_backend_substrate && !path.starts_with("tools/") {
        tags::check_user_range(&ctx, &mut out);
    }
    if path.starts_with("crates/service/src/") {
        blocking::check(&ctx, &mut out);
    }

    out.sort_by_key(|d| (d.line, d.col));
    out
}

// ---- shared walking utilities ---------------------------------------------

/// Every flat code-token run in the AST, in source order: leaves, branch
/// conditions, loop heads, match scrutinees and arm patterns, `fn`
/// signatures, const initializers, container headers, and verbatim items.
/// `include_tests: false` skips `#[cfg(test)]` subtrees.
pub fn walk_runs<'a>(ast: &'a Ast, include_tests: bool, f: &mut dyn FnMut(&'a [Tok])) {
    walk_items(&ast.items, include_tests, f);
}

fn walk_items<'a>(items: &'a [Item], include_tests: bool, f: &mut dyn FnMut(&'a [Tok])) {
    for item in items {
        if item.cfg_test && !include_tests {
            continue;
        }
        match &item.kind {
            ItemKind::Use(_) => {}
            ItemKind::Fn { sig, body, .. } => {
                f(sig);
                if let Some(b) = body {
                    walk_block(b, include_tests, f);
                }
            }
            ItemKind::Const { value, .. } => f(value),
            ItemKind::Mod { items } => walk_items(items, include_tests, f),
            ItemKind::Container { header, items } => {
                f(header);
                walk_items(items, include_tests, f);
            }
            ItemKind::Verbatim(toks) => f(toks),
        }
    }
}

fn walk_block<'a>(block: &'a Block, include_tests: bool, f: &mut dyn FnMut(&'a [Tok])) {
    for node in &block.nodes {
        match node {
            Node::Leaf(toks) => f(toks),
            Node::Branch { cond, body, els } => {
                f(cond);
                walk_block(body, include_tests, f);
                if let Some(e) = els {
                    walk_block(e, include_tests, f);
                }
            }
            Node::Loop { head, body } => {
                f(head);
                walk_block(body, include_tests, f);
            }
            Node::Match { scrut, arms } => {
                f(scrut);
                for Arm { pat, body } in arms {
                    f(pat);
                    walk_block(body, include_tests, f);
                }
            }
            Node::Block(b) => walk_block(b, include_tests, f),
            Node::Item(item) => walk_items(std::slice::from_ref(item), include_tests, f),
        }
    }
}

/// Every `fn` body in the AST (skipping `#[cfg(test)]` subtrees), for
/// rules that need block *structure* rather than flat runs.
pub fn walk_fn_bodies<'a>(ast: &'a Ast, f: &mut dyn FnMut(&'a Block)) {
    fn items<'a>(list: &'a [Item], f: &mut dyn FnMut(&'a Block)) {
        for item in list {
            if item.cfg_test {
                continue;
            }
            match &item.kind {
                ItemKind::Fn { body: Some(b), .. } => f(b),
                ItemKind::Mod { items: inner } | ItemKind::Container { items: inner, .. } => {
                    items(inner, f);
                }
                _ => {}
            }
        }
    }
    items(&ast.items, f);
}

/// A method call extracted from a flat token run: `.name::<T>(args)`.
pub struct MethodCall<'a> {
    pub name: &'a str,
    /// The name token (diagnostic anchor).
    pub tok: &'a Tok,
    /// Argument token slices, split at top-level commas.
    pub args: Vec<&'a [Tok]>,
}

/// Extract every `.method(...)` call in a run, handling turbofish and
/// nested argument groups.
pub fn method_calls<'a>(run: &'a [Tok]) -> Vec<MethodCall<'a>> {
    let mut out = Vec::new();
    for (i, t) in run.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if i == 0 || !run[i - 1].is_punct('.') {
            continue;
        }
        // Skip an optional turbofish `::<...>`.
        let mut j = i + 1;
        if j + 2 < run.len()
            && run[j].is_punct(':')
            && run[j + 1].is_punct(':')
            && run[j + 2].is_punct('<')
        {
            let mut depth = 0i32;
            j += 2;
            while let Some(t) = run.get(j) {
                match t.kind {
                    TokKind::Punct('<') => depth += 1,
                    TokKind::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !run.get(j).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        // Split the argument list at top-level commas. Commas inside a
        // closure's parameter pipes (`|acc, x| ..`) do not separate
        // arguments; a `|` opens closure params only where a bitwise-or
        // could not appear (start of an argument, or after `move`).
        let mut args: Vec<&[Tok]> = Vec::new();
        let mut depth = 1i32;
        let mut in_pipes = false;
        let mut arg_start = j + 1;
        j += 1;
        while let Some(t) = run.get(j) {
            match t.kind {
                TokKind::Punct('(' | '[' | '{') => depth += 1,
                TokKind::Punct(')' | ']' | '}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Punct('|') if depth == 1 => {
                    if in_pipes {
                        in_pipes = false;
                    } else if run.get(j - 1).is_some_and(|p| {
                        p.is_punct('(') || p.is_punct(',') || p.ident() == Some("move")
                    }) {
                        in_pipes = true;
                    }
                }
                TokKind::Punct(',') if depth == 1 && !in_pipes => {
                    args.push(&run[arg_start..j]);
                    arg_start = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        let tail = &run[arg_start..j.min(run.len())];
        // An empty tail is either a zero-arg call or a trailing comma
        // (multi-line rustfmt style); neither adds an argument.
        if !tail.is_empty() {
            args.push(tail);
        }
        out.push(MethodCall { name, tok: t, args });
    }
    out
}

// ---- const evaluation ------------------------------------------------------

/// Collect every statically-evaluable integer const in non-test code.
/// Supports literals, references to earlier consts, `MAX_USER_TAG`, unary
/// parens, `as` casts, and the operators `<< + - * |` (left-associative,
/// no precedence — tag constants are written as `BASE + k` / `1 << 48`
/// shapes where this is exact).
pub fn const_table(ast: &Ast) -> HashMap<String, u128> {
    let mut env: HashMap<String, u128> = HashMap::new();
    env.insert("MAX_USER_TAG".to_string(), MAX_USER_TAG);
    fn walk(items: &[Item], env: &mut HashMap<String, u128>) {
        for item in items {
            if item.cfg_test {
                continue;
            }
            match &item.kind {
                ItemKind::Const { name, value, .. } => {
                    if let Some(v) = const_eval(value, env) {
                        env.insert(name.clone(), v);
                    }
                }
                ItemKind::Mod { items } | ItemKind::Container { items, .. } => walk(items, env),
                _ => {}
            }
        }
    }
    walk(&ast.items, &mut env);
    env
}

/// Evaluate a const initializer; `None` when it isn't a static integer
/// expression this mini-evaluator understands.
pub fn const_eval(toks: &[Tok], env: &HashMap<String, u128>) -> Option<u128> {
    let mut i = 0usize;
    let v = eval_expr(toks, &mut i, env)?;
    if i == toks.len() {
        Some(v)
    } else {
        None
    }
}

fn eval_expr(toks: &[Tok], i: &mut usize, env: &HashMap<String, u128>) -> Option<u128> {
    let mut acc = eval_primary(toks, i, env)?;
    loop {
        // `as <ty>` casts keep the value (tags are u64-sized).
        if toks.get(*i).and_then(Tok::ident) == Some("as") {
            *i += 1;
            *i += 1; // type name
            continue;
        }
        let op = match toks.get(*i).map(|t| &t.kind) {
            Some(TokKind::Punct(c @ ('+' | '-' | '*' | '|'))) => {
                *i += 1;
                *c
            }
            Some(TokKind::Punct('<')) if toks.get(*i + 1).is_some_and(|t| t.is_punct('<')) => {
                *i += 2;
                '«'
            }
            _ => break,
        };
        let rhs = eval_primary(toks, i, env)?;
        acc = match op {
            '+' => acc.checked_add(rhs)?,
            '-' => acc.checked_sub(rhs)?,
            '*' => acc.checked_mul(rhs)?,
            '|' => acc | rhs,
            '«' => acc.checked_shl(u32::try_from(rhs).ok()?)?,
            _ => return None,
        };
    }
    Some(acc)
}

fn eval_primary(toks: &[Tok], i: &mut usize, env: &HashMap<String, u128>) -> Option<u128> {
    match toks.get(*i).map(|t| &t.kind) {
        Some(TokKind::Int(Some(v))) => {
            *i += 1;
            Some(*v)
        }
        Some(TokKind::Punct('(')) => {
            *i += 1;
            let v = eval_expr(toks, i, env)?;
            if toks.get(*i).is_some_and(|t| t.is_punct(')')) {
                *i += 1;
                Some(v)
            } else {
                None
            }
        }
        Some(TokKind::Ident(name)) => {
            // Possibly a path: take the last segment (`Comm::MAX_USER_TAG`).
            let mut last = name.clone();
            *i += 1;
            while toks.get(*i).is_some_and(|t| t.is_punct(':'))
                && toks.get(*i + 1).is_some_and(|t| t.is_punct(':'))
            {
                *i += 2;
                last = toks.get(*i).and_then(Tok::ident)?.to_string();
                *i += 1;
            }
            env.get(&last).copied()
        }
        _ => None,
    }
}

/// Identifiers that cannot be expression operands (keywords that precede
/// a `[` or an operator without being a value).
pub fn is_value_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "as"
            | "let"
            | "mut"
            | "move"
            | "ref"
            | "where"
            | "impl"
            | "dyn"
            | "fn"
            | "use"
            | "pub"
            | "const"
            | "static"
            | "unsafe"
    )
}

/// True when `t` can be the last token of a value expression (so a
/// following `[` is an index and a following binary op has a left operand).
pub fn is_value_end(t: &Tok) -> bool {
    match &t.kind {
        TokKind::Ident(s) => !is_value_keyword(s),
        TokKind::Int(_) | TokKind::Float | TokKind::Str | TokKind::Char => true,
        TokKind::Punct(')' | ']' | '?') => true,
        _ => false,
    }
}

/// True when `t` can start a value expression (right operand of a binary
/// operator).
pub fn is_value_start(t: &Tok) -> bool {
    match &t.kind {
        TokKind::Ident(s) => !is_value_keyword(s),
        TokKind::Int(_) | TokKind::Float => true,
        TokKind::Punct('(') => true,
        _ => false,
    }
}
