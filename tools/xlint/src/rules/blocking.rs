//! `blocking-in-dispatcher`: the resident service must not block.
//!
//! The `SortService` dispatcher (PR 6) is a single loop that owns the
//! bounded submission mailbox; its overload-graceful degradation only
//! works if no code path parks the thread elsewhere. A `thread::sleep`
//! or a blocking channel `recv` anywhere in `crates/service` holds a
//! pool rank (or the dispatcher itself) hostage: queued jobs age past
//! their deadline and the backpressure signal never fires. The single
//! sanctioned block point — the client-side wait on a job ticket —
//! carries an `xlint.allow` justification.

use super::{walk_runs, FileCtx};
use crate::diag::Diagnostic;
use crate::lexer::Tok;

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    walk_runs(ctx.ast, false, &mut |run| {
        for (i, t) in run.iter().enumerate() {
            let Some(name) = t.ident() else { continue };
            // `thread::sleep` / `thread::park` path calls, plus `use`
            // renames of them.
            let is_parkish = matches!(name, "sleep" | "park" | "park_timeout");
            if is_parkish
                && i >= 2
                && run[i - 1].is_punct(':')
                && run[i - 2].is_punct(':')
                && run[..i - 2]
                    .iter()
                    .rev()
                    .find_map(Tok::ident)
                    .is_some_and(|p| p == "thread")
            {
                out.push(diag(
                    ctx,
                    t,
                    &format!("`thread::{name}` in the service"),
                    "sleeping holds a pool rank hostage; wait on the mailbox condvar \
                     with a deadline instead",
                ));
                continue;
            }
            // Blocking channel receives: `.recv()`, `.recv_timeout(..)`,
            // `.recv_deadline(..)`.
            if i > 0
                && run[i - 1].is_punct('.')
                && matches!(name, "recv" | "recv_timeout" | "recv_deadline")
                && run.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                out.push(diag(
                    ctx,
                    t,
                    &format!("blocking `.{name}()` in the service"),
                    "the dispatcher's only sanctioned block point is the submission \
                     mailbox; use `try_recv` plus the mailbox wakeup, or move the \
                     wait to the client side under an xlint.allow justification",
                ));
            }
        }
    });
}

fn diag(ctx: &FileCtx<'_>, t: &Tok, msg: &str, help: &str) -> Diagnostic {
    Diagnostic {
        path: ctx.path.to_string(),
        line: t.line,
        col: t.col,
        rule: "blocking-in-dispatcher",
        msg: msg.to_string(),
        suggestion: Some(help.to_string()),
    }
}
