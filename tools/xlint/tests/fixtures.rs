//! Proves the linter fails on seeded violations (one paired fail/pass
//! fixture per semantic rule), accepts the sanctioned spellings, pins
//! exact `path:line:col [rule]` spans, round-trips the JSON report
//! schema, detects stale allowlist entries, and — the real gate — that
//! the workspace tree itself scans clean.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    fs::read_to_string(&path).expect("fixture file is committed next to this test")
}

/// Scan a fixture under a fake scoped path and return `(line, col)` spans
/// of the diagnostics for one rule.
fn spans_of(fixture_name: &str, scoped_path: &str, rule: &str) -> Vec<(u32, u32)> {
    xlint::scan_source(scoped_path, &fixture(fixture_name))
        .into_iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.line, d.col))
        .collect()
}

fn rules_hit(fixture_name: &str, scoped_path: &str) -> BTreeSet<&'static str> {
    xlint::scan_source(scoped_path, &fixture(fixture_name))
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

// ---- every rule is exercised by some fixture ------------------------------

#[test]
fn every_rule_fires_on_some_fixture() {
    let sweep = [
        ("banned_patterns.rs", "crates/mpisim/src/fixture.rs"),
        ("banned_patterns.rs", "crates/workloads/src/fixture.rs"),
        ("wallclock_alias.rs", "crates/sdssort/src/fixture.rs"),
        ("divergent_collective.rs", "crates/sdssort/src/fixture.rs"),
        ("unchecked_arith.rs", "crates/baselines/src/fixture.rs"),
        ("tag_range.rs", "crates/sdssort/src/fixture.rs"),
        ("blocking_service.rs", "crates/service/src/fixture.rs"),
    ];
    let mut hit = BTreeSet::new();
    for (fixture_name, path) in sweep {
        hit.extend(rules_hit(fixture_name, path));
    }
    for rule in xlint::rules::RULES {
        assert!(
            hit.contains(rule),
            "rule `{rule}` did not fire on any seeded fixture"
        );
    }
}

#[test]
fn clean_fixture_passes_every_scope() {
    for path in [
        "crates/mpisim/src/fixture.rs",
        "crates/workloads/src/fixture.rs",
    ] {
        let diags = xlint::scan_source(path, &fixture("clean.rs"));
        assert!(
            diags.is_empty(),
            "clean fixture flagged under {path}: {diags:?}"
        );
    }
}

// ---- wallclock: the alias false-negative regression anchor ----------------

#[test]
fn wallclock_rule_is_alias_proof() {
    // The pre-AST token rule matched surface names, so `use
    // std::time::Instant as Stopwatch` produced ZERO findings on this
    // fixture. The AST pass resolves through the `use` tree: the two
    // bindings and both renamed uses must all be flagged, at exact spans.
    let spans = spans_of(
        "wallclock_alias.rs",
        "crates/sdssort/src/fixture.rs",
        "wallclock",
    );
    assert_eq!(
        spans,
        vec![(9, 16), (10, 18), (13, 14), (14, 5)],
        "binding for Instant-as-Stopwatch, binding for sleep-as-nap, \
         Stopwatch::now() use, nap() use"
    );
    // Nothing else fires: the fixture is clean apart from the aliases.
    let other: Vec<_> = xlint::scan_source(
        "crates/sdssort/src/fixture.rs",
        &fixture("wallclock_alias.rs"),
    )
    .into_iter()
    .filter(|d| d.rule != "wallclock")
    .collect();
    assert!(other.is_empty(), "unexpected extra diagnostics: {other:?}");
}

// ---- rank-divergent-collective --------------------------------------------

#[test]
fn divergent_collectives_are_reported_at_exact_spans() {
    // The fixture mirrors the PR 2 deadlock test: `if rank == 0 {
    // comm.barrier(); }` is the exact shape mpisim's runtime detector
    // catches dynamically. The static rule must report each divergent
    // call site: barrier in an if, bcast in a branch arm, allreduce under
    // a rank-bounded loop, split_shared_node in a match arm, and alltoall
    // nested two branches deep.
    let spans = spans_of(
        "divergent_collective.rs",
        "crates/sdssort/src/fixture.rs",
        "rank-divergent-collective",
    );
    assert_eq!(
        spans,
        vec![(10, 14), (16, 23), (25, 22), (32, 29), (41, 18)],
        "one finding per divergent collective call site"
    );
    // The message names the collective, so the fix is obvious from logs.
    let diags = xlint::scan_source(
        "crates/sdssort/src/fixture.rs",
        &fixture("divergent_collective.rs"),
    );
    assert!(diags
        .iter()
        .any(|d| d.rule == "rank-divergent-collective" && d.msg.contains("`barrier`")));
}

#[test]
fn converged_collectives_pass() {
    // Sanctioned SPMD shapes: rank-dependent *data* inside the call's
    // parens, the color-by-rank split idiom, p2p inside rank branches,
    // and same-name std methods disambiguated by arity.
    let diags = xlint::scan_source(
        "crates/sdssort/src/fixture.rs",
        &fixture("converged_collective.rs"),
    );
    let divergent: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "rank-divergent-collective")
        .collect();
    assert!(
        divergent.is_empty(),
        "false positives on sanctioned SPMD shapes: {divergent:?}"
    );
}

#[test]
fn divergence_rule_skips_the_comm_substrate() {
    // Backend substrate crates implement the collectives themselves —
    // `if rank == root` around protocol sends is their job.
    let diags = xlint::scan_source(
        "crates/comm/src/fixture.rs",
        &fixture("divergent_collective.rs"),
    );
    assert!(
        !diags.iter().any(|d| d.rule == "rank-divergent-collective"),
        "substrate crates must be out of divergence scope: {diags:?}"
    );
}

// ---- unchecked-partition-arith --------------------------------------------

#[test]
fn unchecked_arith_is_reported_at_exact_spans() {
    let spans = spans_of(
        "unchecked_arith.rs",
        "crates/baselines/src/fixture.rs",
        "unchecked-partition-arith",
    );
    assert_eq!(
        spans,
        vec![(7, 14), (11, 26), (15, 23)],
        "b*g index scale, len-keep underflow, num*len split_at product"
    );
}

#[test]
fn checked_arith_passes() {
    // checked_*/expect chains, u128 widening, literal-scaled and
    // literal-offset index math, and min-clamped indices are all exempt.
    let diags = xlint::scan_source(
        "crates/baselines/src/fixture.rs",
        &fixture("checked_arith.rs"),
    );
    let arith: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "unchecked-partition-arith")
        .collect();
    assert!(
        arith.is_empty(),
        "false positives on mitigated arithmetic: {arith:?}"
    );
}

#[test]
fn arith_scope_is_partition_files_only() {
    // The same source under a non-partition path produces nothing: the
    // rule is scoped to where slice-bound arithmetic decides rank loads.
    let diags = xlint::scan_source(
        "crates/telemetry/src/fixture.rs",
        &fixture("unchecked_arith.rs"),
    );
    assert!(
        !diags.iter().any(|d| d.rule == "unchecked-partition-arith"),
        "arith rule leaked outside its scope: {diags:?}"
    );
}

// ---- user-tag-range --------------------------------------------------------

#[test]
fn reserved_tags_are_reported_at_exact_spans() {
    let spans = spans_of(
        "tag_range.rs",
        "crates/sdssort/src/fixture.rs",
        "user-tag-range",
    );
    assert_eq!(
        spans,
        vec![(7, 7), (8, 7), (11, 22), (15, 22), (19, 19), (20, 10)],
        "PROBE_TAG decl, STEAL_TAG decl, reserved literal, const-chain \
         call site, next_coll_tag, send_raw"
    );
    // The reserved literal is also an unnamed tag: both rules fire there.
    let spans = spans_of(
        "tag_range.rs",
        "crates/sdssort/src/fixture.rs",
        "tag-discipline",
    );
    assert_eq!(spans, vec![(11, 22)]);
}

#[test]
fn user_space_tags_pass() {
    let diags = xlint::scan_source("crates/sdssort/src/fixture.rs", &fixture("tag_range_ok.rs"));
    assert!(
        diags.is_empty(),
        "sanctioned tag constants were flagged: {diags:?}"
    );
}

#[test]
fn raw_calls_are_sanctioned_inside_the_substrate() {
    // The same `_raw` calls inside a backend that implements RawComm are
    // that backend's job.
    let diags = xlint::scan_source("crates/sockcomm/src/fixture.rs", &fixture("tag_range.rs"));
    assert!(
        !diags.iter().any(|d| d.rule == "user-tag-range"),
        "user-tag-range leaked into the substrate: {diags:?}"
    );
}

// ---- blocking-in-dispatcher ------------------------------------------------

#[test]
fn blocking_calls_in_service_are_reported_at_exact_spans() {
    let spans = spans_of(
        "blocking_service.rs",
        "crates/service/src/fixture.rs",
        "blocking-in-dispatcher",
    );
    assert_eq!(
        spans,
        vec![(8, 22), (13, 8), (17, 16), (18, 18)],
        "thread::sleep, .recv(), .recv_timeout(), thread::park"
    );
}

#[test]
fn nonblocking_service_passes() {
    let diags = xlint::scan_source(
        "crates/service/src/fixture.rs",
        &fixture("nonblocking_service.rs"),
    );
    let blocking: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "blocking-in-dispatcher")
        .collect();
    assert!(
        blocking.is_empty(),
        "false positives on non-blocking spellings: {blocking:?}"
    );
}

#[test]
fn blocking_rule_is_scoped_to_the_service() {
    let diags = xlint::scan_source(
        "crates/sdssort/src/fixture.rs",
        &fixture("blocking_service.rs"),
    );
    assert!(
        !diags.iter().any(|d| d.rule == "blocking-in-dispatcher"),
        "blocking rule leaked outside crates/service: {diags:?}"
    );
}

// ---- rule scopes ported from the token-era suite --------------------------

#[test]
fn wallclock_scope_excludes_the_real_time_backends() {
    // The real-execution backends and the resident service measure wall
    // time by design, without needing an xlint.allow entry — while the
    // library-hygiene rules still cover them in full.
    let src = fixture("banned_patterns.rs");
    for path in [
        "crates/shmem/src/fixture.rs",
        "crates/service/src/fixture.rs",
        "crates/sockcomm/src/fixture.rs",
    ] {
        let rules: BTreeSet<_> = xlint::scan_source(path, &src)
            .into_iter()
            .map(|d| d.rule)
            .collect();
        assert!(
            !rules.contains("wallclock"),
            "wallclock fired outside the virtual-time crates under {path}: {rules:?}"
        );
        for expected in ["relaxed-ordering", "safety-comment", "no-unwrap"] {
            assert!(
                rules.contains(expected),
                "rule `{expected}` should still cover {path}: {rules:?}"
            );
        }
    }
    // The service additionally bans the blocking sleep the fixture seeds.
    let service_rules: BTreeSet<_> = xlint::scan_source("crates/service/src/fixture.rs", &src)
        .into_iter()
        .map(|d| d.rule)
        .collect();
    assert!(service_rules.contains("blocking-in-dispatcher"));
}

// ---- allowlist semantics ---------------------------------------------------

#[test]
fn stale_allowlist_entries_are_reported() {
    let dir = scratch_dir("xlint-stale-test");
    fs::create_dir_all(dir.join("src")).expect("create scratch src dir");
    // A file with one real violation, plus an allowlist with one live and one
    // stale entry.
    fs::write(
        dir.join("src/lib.rs"),
        "fn f(x: &std::sync::atomic::AtomicU64) { x.load(std::sync::atomic::Ordering::Relaxed); }\n",
    )
    .expect("write scratch source");
    fs::write(
        dir.join("xlint.allow"),
        "relaxed-ordering src/lib.rs scratch test exemption\n\
         wallclock src/lib.rs stale: nothing here uses Instant\n",
    )
    .expect("write scratch allowlist");

    let report = xlint::scan_root(&dir).expect("scan scratch dir");
    assert!(
        report.diagnostics.is_empty(),
        "live entry should suppress: {report:?}"
    );
    assert_eq!(report.suppressed, 1);
    assert_eq!(
        report.stale.len(),
        1,
        "stale wallclock entry must be reported"
    );
    assert_eq!(report.stale[0].rule, "wallclock");
    assert!(!report.is_clean(), "stale entries fail the run");

    fs::remove_dir_all(&dir).ok();
}

// ---- JSON report schema ----------------------------------------------------

#[test]
fn json_report_round_trips_the_schema() {
    let dir = scratch_dir("xlint-json-test");
    fs::create_dir_all(dir.join("src")).expect("create scratch src dir");
    fs::write(
        dir.join("src/lib.rs"),
        "fn f(x: &std::sync::atomic::AtomicU64) { x.load(std::sync::atomic::Ordering::Relaxed); }\n",
    )
    .expect("write scratch source");
    fs::write(
        dir.join("xlint.allow"),
        "wallclock src/lib.rs stale: nothing here uses Instant\n",
    )
    .expect("write scratch allowlist");

    let report = xlint::scan_root(&dir).expect("scan scratch dir");
    let doc = xlint::diag::json::parse(&report.to_json()).expect("report emits valid JSON");

    assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        doc.get("files_scanned").and_then(|v| v.as_u64()),
        Some(report.files_scanned as u64)
    );
    assert_eq!(doc.get("clean").and_then(|v| v.as_bool()), Some(false));

    let diags = doc
        .get("diagnostics")
        .and_then(|v| v.as_arr())
        .expect("diagnostics array");
    assert_eq!(diags.len(), report.diagnostics.len());
    let (d_json, d) = (&diags[0], &report.diagnostics[0]);
    assert_eq!(
        d_json.get("path").and_then(|v| v.as_str()),
        Some(d.path.as_str())
    );
    assert_eq!(
        d_json.get("line").and_then(|v| v.as_u64()),
        Some(u64::from(d.line))
    );
    assert_eq!(
        d_json.get("col").and_then(|v| v.as_u64()),
        Some(u64::from(d.col))
    );
    assert_eq!(d_json.get("rule").and_then(|v| v.as_str()), Some(d.rule));
    assert_eq!(
        d_json.get("message").and_then(|v| v.as_str()),
        Some(d.msg.as_str())
    );
    match &d.suggestion {
        Some(s) => assert_eq!(
            d_json.get("suggestion").and_then(|v| v.as_str()),
            Some(s.as_str())
        ),
        None => assert_eq!(
            d_json.get("suggestion"),
            Some(&xlint::diag::json::Value::Null)
        ),
    }

    let stale = doc
        .get("stale_allow_entries")
        .and_then(|v| v.as_arr())
        .expect("stale array");
    assert_eq!(stale.len(), 1);
    assert_eq!(
        stale[0].get("rule").and_then(|v| v.as_str()),
        Some("wallclock")
    );

    fs::remove_dir_all(&dir).ok();
}

// ---- the real gate ---------------------------------------------------------

#[test]
fn workspace_tree_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    if !root.join("Cargo.toml").exists() {
        return; // not running inside the workspace checkout
    }
    let report = xlint::scan_root(&root).expect("scan workspace");
    assert!(
        report.is_clean(),
        "workspace has lint diagnostics:\n{}",
        report
            .diagnostics
            .iter()
            .map(std::string::ToString::to_string)
            .chain(report.stale.iter().map(|e| format!(
                "xlint.allow:{}: stale entry `{} {}`",
                e.line, e.rule, e.path_prefix
            )))
            .chain(report.config_errors.iter().cloned())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "walker found too few files");
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}
