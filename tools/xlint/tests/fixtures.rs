//! Proves the linter fails on seeded violations (fixtures/banned_patterns.rs),
//! accepts the sanctioned spellings (fixtures/clean.rs), detects stale
//! allowlist entries, and — the real gate — that the workspace tree itself
//! scans clean.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    fs::read_to_string(&path).expect("fixture file is committed next to this test")
}

/// Fake scoped paths that together activate every rule for the fixtures.
const SCOPED_PATHS: [&str; 2] = [
    "crates/mpisim/src/fixture.rs", // wallclock, relaxed-ordering, safety-comment, no-unwrap
    "crates/workloads/src/fixture.rs", // workload-determinism, tag-discipline (+ the above three)
];

#[test]
fn banned_fixture_trips_every_rule() {
    let src = fixture("banned_patterns.rs");
    let mut hit = BTreeSet::new();
    for path in SCOPED_PATHS {
        for v in xlint::scan_source(path, &src) {
            hit.insert(v.rule);
        }
    }
    for rule in xlint::rules::RULES {
        assert!(
            hit.contains(rule),
            "rule `{rule}` did not fire on the seeded fixture"
        );
    }
}

#[test]
fn clean_fixture_passes_every_scope() {
    let src = fixture("clean.rs");
    for path in SCOPED_PATHS {
        let violations = xlint::scan_source(path, &src);
        assert!(
            violations.is_empty(),
            "clean fixture flagged under {path}: {violations:?}"
        );
    }
}

#[test]
fn wallclock_scope_excludes_the_real_time_backend() {
    // The same banned fixture, scanned as if it lived in the real
    // shared-memory backend: every rule that applies there still fires,
    // but `wallclock` must not — crates/shmem measures wall time by
    // design, without needing an xlint.allow entry.
    let src = fixture("banned_patterns.rs");
    let rules: BTreeSet<_> = xlint::scan_source("crates/shmem/src/fixture.rs", &src)
        .into_iter()
        .map(|v| v.rule)
        .collect();
    assert!(
        !rules.contains("wallclock"),
        "wallclock fired outside the virtual-time crates: {rules:?}"
    );
    for expected in [
        "relaxed-ordering",
        "safety-comment",
        "no-unwrap",
        "tag-discipline",
    ] {
        assert!(
            rules.contains(expected),
            "rule `{expected}` should still cover crates/shmem: {rules:?}"
        );
    }
}

#[test]
fn wallclock_scope_excludes_the_resident_service() {
    // The resident sort service lives on the real backend's clock: queue
    // waits and latency percentiles are wall-clock measurements, so
    // `wallclock` must not fire there — while the library-hygiene rules
    // cover it like any other crate.
    let src = fixture("banned_patterns.rs");
    let rules: BTreeSet<_> = xlint::scan_source("crates/service/src/fixture.rs", &src)
        .into_iter()
        .map(|v| v.rule)
        .collect();
    assert!(
        !rules.contains("wallclock"),
        "wallclock fired outside the virtual-time crates: {rules:?}"
    );
    for expected in [
        "relaxed-ordering",
        "safety-comment",
        "no-unwrap",
        "tag-discipline",
    ] {
        assert!(
            rules.contains(expected),
            "rule `{expected}` should still cover crates/service: {rules:?}"
        );
    }
}

#[test]
fn wallclock_scope_excludes_the_sockets_backend() {
    // The distributed process-per-rank backend is the third real-time
    // substrate: rendezvous deadlines, peer-death timeouts, and reported
    // wall seconds are all genuine clock reads, so `wallclock` must not
    // fire there — while `no-unwrap` and the other library-hygiene rules
    // cover it like shmem and service.
    let src = fixture("banned_patterns.rs");
    let rules: BTreeSet<_> = xlint::scan_source("crates/sockcomm/src/fixture.rs", &src)
        .into_iter()
        .map(|v| v.rule)
        .collect();
    assert!(
        !rules.contains("wallclock"),
        "wallclock fired outside the virtual-time crates: {rules:?}"
    );
    for expected in [
        "relaxed-ordering",
        "safety-comment",
        "no-unwrap",
        "tag-discipline",
    ] {
        assert!(
            rules.contains(expected),
            "rule `{expected}` should still cover crates/sockcomm: {rules:?}"
        );
    }
}

#[test]
fn stale_allowlist_entries_are_reported() {
    let dir = scratch_dir("xlint-stale-test");
    fs::create_dir_all(dir.join("src")).expect("create scratch src dir");
    // A file with one real violation, plus an allowlist with one live and one
    // stale entry.
    fs::write(
        dir.join("src/lib.rs"),
        "fn f(x: &std::sync::atomic::AtomicU64) { x.load(std::sync::atomic::Ordering::Relaxed); }\n",
    )
    .expect("write scratch source");
    fs::write(
        dir.join("xlint.allow"),
        "relaxed-ordering src/lib.rs scratch test exemption\n\
         wallclock src/lib.rs stale: nothing here uses Instant\n",
    )
    .expect("write scratch allowlist");

    let report = xlint::scan_root(&dir).expect("scan scratch dir");
    assert!(
        report.violations.is_empty(),
        "live entry should suppress: {report:?}"
    );
    assert_eq!(report.suppressed, 1);
    assert_eq!(
        report.stale.len(),
        1,
        "stale wallclock entry must be reported"
    );
    assert_eq!(report.stale[0].rule, "wallclock");
    assert!(!report.is_clean(), "stale entries fail the run");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn workspace_tree_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    if !root.join("Cargo.toml").exists() {
        return; // not running inside the workspace checkout
    }
    let report = xlint::scan_root(&root).expect("scan workspace");
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.msg))
            .chain(report.stale.iter().map(|e| format!(
                "xlint.allow:{}: stale entry `{} {}`",
                e.line, e.rule, e.path_prefix
            )))
            .chain(report.config_errors.iter().cloned())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "walker found too few files");
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}
