//! Umbrella crate for the SDS-Sort reproduction workspace.
//!
//! The real functionality lives in the member crates:
//!
//! - [`mpisim`] — thread-based message-passing runtime (the MPI substitute),
//! - [`sdssort`] — the SDS-Sort algorithm itself,
//! - [`baselines`] — HykSort, classical sample sort, and bitonic sort,
//! - [`workloads`] — synthetic and science-inspired data generators.
//!
//! This crate only re-exports them so that the workspace-level integration
//! tests in `tests/` and the runnable examples in `examples/` have a single
//! dependency root.

pub use baselines;
pub use mpisim;
pub use sdssort;
pub use workloads;
