//! Stability of SDS-Sort/stable: equal keys must appear in their *global
//! input order* — by source rank, then by local input position. This is
//! the paper's headline capability (the first sampling-based stable
//! parallel sort) and must hold without any secondary key participating
//! in comparisons.

mod common;

use common::assert_global_sort;
use mpisim::{NetModel, World};
use rand::prelude::*;
use sdssort::{sds_sort, Record, SdsConfig, Tagged};

/// Generate records whose tag encodes (rank, position): the global input
/// order of equal keys is exactly ascending tag order.
fn tagged_input(n: usize, key_space: u32, seed: u64, rank: usize) -> Vec<Tagged<u32>> {
    let mut rng = StdRng::seed_from_u64(seed ^ (rank as u64) << 16);
    (0..n)
        .map(|i| {
            Record::new(
                rng.gen_range(0..key_space),
                ((rank as u64) << 32) | i as u64,
            )
        })
        .collect()
}

type RankData = Vec<Vec<Tagged<u32>>>;

fn run_stable(
    p: usize,
    cores: usize,
    cfg: SdsConfig,
    key_space: u32,
    n: usize,
    seed: u64,
) -> (RankData, RankData) {
    let world = World::new(p).cores_per_node(cores).net(NetModel::zero());
    let report = world.run(|comm| {
        let data = tagged_input(n, key_space, seed, comm.rank());
        let out = sds_sort(comm, data.clone(), &cfg).expect("no memory budget");
        (data, out.data)
    });
    report.results.into_iter().unzip()
}

/// Equal keys must carry ascending tags in the concatenated output.
fn assert_stable(outputs: &[Vec<Tagged<u32>>]) {
    let flat: Vec<&Tagged<u32>> = outputs.iter().flatten().collect();
    for w in flat.windows(2) {
        if w[0].key == w[1].key {
            assert!(
                w[0].payload < w[1].payload,
                "equal keys out of input order: key {} tags {:x} !< {:x}",
                w[0].key,
                w[0].payload,
                w[1].payload
            );
        }
    }
}

#[test]
fn stable_on_narrow_key_space() {
    // key_space = 8 with 2000 records/rank: massive duplication everywhere.
    let (inputs, outputs) = run_stable(8, 4, SdsConfig::stable(), 8, 2000, 1);
    assert_global_sort(&inputs, &outputs, |r| (r.key, r.payload));
    assert_stable(&outputs);
}

#[test]
fn stable_on_moderate_duplication() {
    let (inputs, outputs) = run_stable(6, 3, SdsConfig::stable(), 500, 3000, 2);
    assert_global_sort(&inputs, &outputs, |r| (r.key, r.payload));
    assert_stable(&outputs);
}

#[test]
fn stable_single_value() {
    let p = 8;
    let world = World::new(p).cores_per_node(4).net(NetModel::zero());
    let mut cfg = SdsConfig::stable();
    cfg.tau_m_bytes = 0; // exercise the full-width stable partition
    let report = world.run(|comm| {
        let data: Vec<Tagged<u32>> = (0..500u64)
            .map(|i| Record::new(7u32, ((comm.rank() as u64) << 32) | i))
            .collect();
        let out = sds_sort(comm, data.clone(), &cfg).expect("no memory budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    assert_global_sort(&inputs, &outputs, |r| (r.key, r.payload));
    assert_stable(&outputs);
    // stable grouping must still balance the single value
    let max_load = outputs.iter().map(Vec::len).max().unwrap();
    assert!(max_load <= 4 * 500, "stable grouping imbalance: {max_load}");
}

#[test]
fn stable_with_node_merging() {
    let mut cfg = SdsConfig::stable();
    cfg.tau_m_bytes = usize::MAX; // force node merge path
    let (inputs, outputs) = run_stable(8, 4, cfg, 16, 1000, 3);
    assert_global_sort(&inputs, &outputs, |r| (r.key, r.payload));
    assert_stable(&outputs);
}

#[test]
fn stable_various_world_sizes() {
    for p in [2usize, 3, 5, 8] {
        let (inputs, outputs) = run_stable(p, 4, SdsConfig::stable(), 10, 800, p as u64);
        assert_global_sort(&inputs, &outputs, |r| (r.key, r.payload));
        assert_stable(&outputs);
    }
}

#[test]
fn fast_version_not_required_to_be_stable_but_correct() {
    // The fast version gives no stability guarantee; this documents that
    // its output is nevertheless a correct sort on the same input.
    let (inputs, outputs) = run_stable(8, 4, SdsConfig::default(), 8, 1500, 4);
    assert_global_sort(&inputs, &outputs, |r| (r.key, r.payload));
}

#[test]
fn stable_local_ordering_resort_path() {
    // Force the τs re-sort path (local ordering via stable sort instead of
    // k-way merge) and confirm stability still holds.
    let mut cfg = SdsConfig::stable();
    cfg.tau_s = 0;
    cfg.tau_m_bytes = 0;
    let (inputs, outputs) = run_stable(6, 3, cfg, 12, 1200, 5);
    assert_global_sort(&inputs, &outputs, |r| (r.key, r.payload));
    assert_stable(&outputs);
}
