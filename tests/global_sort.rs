//! End-to-end correctness of SDS-Sort across world sizes, workloads, and
//! configuration paths (node merging, overlap, merge-vs-sort ordering,
//! stable vs fast).

mod common;

use common::assert_global_sort;
use mpisim::{NetModel, World};
use sdssort::{sds_sort, Record, SdsConfig, SortOutput};
use workloads::{cosmology_particles, ptf_scores, uniform_u64, zipf_keys};

fn run_sort<T, G>(p: usize, cores: usize, cfg: SdsConfig, gen: G) -> (Vec<Vec<T>>, Vec<Vec<T>>)
where
    T: sdssort::Sortable,
    G: Fn(usize) -> Vec<T> + Send + Sync,
{
    let world = World::new(p).cores_per_node(cores).net(NetModel::zero());
    let report = world.run(|comm| {
        let data = gen(comm.rank());
        let out: SortOutput<T> = sds_sort(comm, data.clone(), &cfg).expect("no memory budget");
        (data, out.data)
    });
    report.results.into_iter().unzip()
}

#[test]
fn uniform_various_world_sizes() {
    for p in [1usize, 2, 3, 4, 7, 8, 16] {
        let (inputs, outputs) = run_sort(p, 4, SdsConfig::default(), |r| uniform_u64(2000, 42, r));
        assert_global_sort(&inputs, &outputs, |&k| k);
    }
}

#[test]
fn zipf_heavy_skew() {
    for alpha in [0.7f64, 1.4, 2.1] {
        let (inputs, outputs) = run_sort(8, 4, SdsConfig::default(), move |r| {
            zipf_keys(3000, alpha, 7, r)
        });
        assert_global_sort(&inputs, &outputs, |&k| k);
    }
}

#[test]
fn all_identical_keys() {
    // Disable node merging so the exchange runs over all 8 ranks (with
    // merging the bound would be relative to the leaders-only world).
    let mut cfg = SdsConfig::default();
    cfg.tau_m_bytes = 0;
    let (inputs, outputs) = run_sort(8, 4, cfg, |_r| vec![99u64; 1000]);
    assert_global_sort(&inputs, &outputs, |&k| k);
    // Skew-aware partition must spread the single value across ranks
    // rather than dumping all 8000 records on one rank.
    let max_load = outputs.iter().map(Vec::len).max().unwrap();
    assert!(
        max_load <= 8000 / 8 * 4,
        "load {max_load} exceeds 4N/p bound"
    );
}

#[test]
fn stable_config_sorts_correctly() {
    let (inputs, outputs) = run_sort(8, 4, SdsConfig::stable(), |r| zipf_keys(2000, 0.9, 3, r));
    assert_global_sort(&inputs, &outputs, |&k| k);
}

#[test]
fn node_merging_path() {
    // Force node merging with a huge τm; outputs concentrate on leaders.
    let mut cfg = SdsConfig::default();
    cfg.tau_m_bytes = usize::MAX;
    let (inputs, outputs) = run_sort(8, 4, cfg, |r| uniform_u64(1500, 11, r));
    assert_global_sort(&inputs, &outputs, |&k| k);
    // With 4 cores/node and 8 ranks, only the 2 node leaders hold data.
    assert!(!outputs[0].is_empty());
    for r in [1, 2, 3, 5, 6, 7] {
        assert!(
            outputs[r].is_empty(),
            "non-leader rank {r} should hold nothing"
        );
    }
}

#[test]
fn no_node_merging_path() {
    let mut cfg = SdsConfig::default();
    cfg.tau_m_bytes = 0; // never merge
    let (inputs, outputs) = run_sort(8, 4, cfg, |r| uniform_u64(1500, 11, r));
    assert_global_sort(&inputs, &outputs, |&k| k);
    // every rank holds roughly its share
    assert!(outputs.iter().all(|o| !o.is_empty()));
}

#[test]
fn overlap_and_sync_paths_agree() {
    let mk = |tau_o: usize| {
        let mut cfg = SdsConfig::default();
        cfg.tau_o = tau_o;
        cfg.tau_m_bytes = 0;
        cfg
    };
    let (inputs, overlapped) = run_sort(6, 3, mk(usize::MAX), |r| zipf_keys(2500, 0.8, 5, r));
    assert_global_sort(&inputs, &overlapped, |&k| k);
    let (inputs2, synced) = run_sort(6, 3, mk(0), |r| zipf_keys(2500, 0.8, 5, r));
    assert_global_sort(&inputs2, &synced, |&k| k);
    // Same multiset regardless of path.
    let mut a: Vec<u64> = overlapped.into_iter().flatten().collect();
    let mut b: Vec<u64> = synced.into_iter().flatten().collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn sort_vs_merge_local_ordering_agree() {
    let mk = |tau_s: usize| {
        let mut cfg = SdsConfig::default();
        cfg.tau_s = tau_s;
        cfg.tau_o = 0; // force the synchronous path so τs matters
        cfg.tau_m_bytes = 0;
        cfg
    };
    let (inputs, merged) = run_sort(8, 4, mk(usize::MAX), |r| uniform_u64(2000, 9, r));
    assert_global_sort(&inputs, &merged, |&k| k);
    let (inputs2, sorted) = run_sort(8, 4, mk(0), |r| uniform_u64(2000, 9, r));
    assert_global_sort(&inputs2, &sorted, |&k| k);
}

#[test]
fn records_with_payload_travel_intact() {
    let (inputs, outputs) = run_sort(4, 2, SdsConfig::default(), |r| {
        (0..1000u64)
            .map(|i| Record::new((i * 7919 + r as u64) % 100, (r as u64) << 32 | i))
            .collect::<Vec<_>>()
    });
    // project onto (key, payload) so payload corruption would be caught
    assert_global_sort(&inputs, &outputs, |rec| (rec.key, rec.payload));
}

#[test]
fn ptf_and_cosmology_workloads() {
    let (inputs, outputs) = run_sort(6, 3, SdsConfig::default(), |r| ptf_scores(2000, 1, r));
    assert_global_sort(&inputs, &outputs, |rec| (rec.key, rec.payload));

    let (inputs, outputs) = run_sort(6, 3, SdsConfig::default(), |r| {
        cosmology_particles(2000, 1, r)
    });
    assert_global_sort(&inputs, &outputs, |rec| {
        (rec.key, rec.payload.pos[0].to_bits())
    });
}

#[test]
fn empty_and_tiny_inputs() {
    // Everyone empty.
    let (inputs, outputs) = run_sort(4, 2, SdsConfig::default(), |_r| Vec::<u64>::new());
    assert_global_sort(&inputs, &outputs, |&k| k);
    // One record total.
    let (inputs, outputs) = run_sort(4, 2, SdsConfig::default(), |r| {
        if r == 2 {
            vec![5u64]
        } else {
            vec![]
        }
    });
    assert_global_sort(&inputs, &outputs, |&k| k);
    // Fewer records than ranks.
    let (inputs, outputs) = run_sort(8, 4, SdsConfig::default(), |r| {
        if r % 2 == 0 {
            vec![r as u64]
        } else {
            vec![]
        }
    });
    assert_global_sort(&inputs, &outputs, |&k| k);
}

#[test]
fn unequal_rank_loads() {
    let (inputs, outputs) = run_sort(5, 5, SdsConfig::default(), |r| {
        uniform_u64(500 * (r + 1), 13, r)
    });
    assert_global_sort(&inputs, &outputs, |&k| k);
}

#[test]
fn presorted_input() {
    let (inputs, outputs) = run_sort(4, 2, SdsConfig::default(), |r| {
        ((r as u64 * 1000)..(r as u64 * 1000 + 1000)).collect::<Vec<u64>>()
    });
    assert_global_sort(&inputs, &outputs, |&k| k);
}

#[test]
fn reverse_sorted_input() {
    let (inputs, outputs) = run_sort(4, 2, SdsConfig::default(), |r| {
        (0..1000u64)
            .map(|i| (4 - r as u64) * 1000 - i)
            .collect::<Vec<u64>>()
    });
    assert_global_sort(&inputs, &outputs, |&k| k);
}

#[test]
fn staggered_placements_sort_correctly() {
    // best case (exchange ≈ no-op), worst case (everything moves), and a
    // rotated placement: correctness must be placement-independent.
    let p = 8;
    let mut cfg = SdsConfig::default();
    cfg.tau_m_bytes = 0;
    for placement in 0..3 {
        let (inputs, outputs) = run_sort(p, 4, cfg, move |r| match placement {
            0 => workloads::presplit(1200, p, r),
            1 => workloads::reversed(1200, p, r),
            _ => workloads::staggered(1200, p, 3, r),
        });
        assert_global_sort(&inputs, &outputs, |&k| k);
    }
}

#[test]
fn presplit_exchange_volume_is_minimal() {
    // With data already in place, the exchange should keep ~everything
    // local: each rank's receive count ≈ its send count and RDFA ≈ 1.
    let p = 8;
    let mut cfg = SdsConfig::default();
    cfg.tau_m_bytes = 0;
    let (_, outputs) = run_sort(p, 4, cfg, move |r| workloads::presplit(1500, p, r));
    let loads: Vec<usize> = outputs.iter().map(Vec::len).collect();
    let r = sdssort::rdfa(&loads);
    assert!(
        r < 1.2,
        "presplit data should balance near-perfectly: {r} ({loads:?})"
    );
}
