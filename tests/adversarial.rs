//! Adversarial-workload tests: the structurally worst duplication patterns
//! against SDS-Sort's workload bound, stability, and the ablation switch.

mod common;

use common::assert_global_sort;
use mpisim::{NetModel, World};
use sdssort::{rdfa, sds_sort, PartitionStrategy, SdsConfig};
use workloads::{heavy_hitters, one_rank_duplicates, pivot_aligned};

fn bound(n_total: usize, p: usize) -> usize {
    4 * n_total / p + 2 * n_total / (p * p) + p
}

fn run_loads<G>(p: usize, cfg: SdsConfig, gen: G) -> (usize, Vec<usize>)
where
    G: Fn(usize) -> Vec<u64> + Send + Sync,
{
    let world = World::new(p).cores_per_node(4).net(NetModel::zero());
    let report = world.run(|comm| {
        let data = gen(comm.rank());
        let n = data.len();
        let out = sds_sort(comm, data, &cfg).expect("no budget");
        (n, out.data.len())
    });
    let total = report.results.iter().map(|r| r.0).sum();
    (total, report.results.into_iter().map(|r| r.1).collect())
}

fn no_merge_cfg() -> SdsConfig {
    let mut cfg = SdsConfig::default();
    cfg.tau_m_bytes = 0;
    cfg
}

#[test]
fn pivot_aligned_duplicates_stay_bounded() {
    // Duplicates planted exactly where pivots land: the maximal
    // replicated-run scenario.
    for p in [4usize, 8, 16] {
        let (total, loads) = run_loads(p, no_merge_cfg(), move |r| {
            pivot_aligned(2000, p, 60.0, 1, r)
        });
        assert!(
            *loads.iter().max().unwrap() <= bound(total, p),
            "p={p}: loads {loads:?} exceed bound"
        );
    }
}

#[test]
fn heavy_hitters_stay_bounded() {
    let p = 8;
    for hitters in [1usize, 2, 5] {
        let (total, loads) = run_loads(p, no_merge_cfg(), move |r| {
            heavy_hitters(2500, hitters, 80.0, 2, r)
        });
        assert!(
            *loads.iter().max().unwrap() <= bound(total, p),
            "hitters={hitters}: loads {loads:?}"
        );
    }
}

#[test]
fn one_rank_duplicates_bounded_and_correct() {
    let p = 8;
    let world = World::new(p).cores_per_node(4).net(NetModel::zero());
    let cfg = no_merge_cfg();
    let report = world.run(|comm| {
        let data = one_rank_duplicates(2000, 3, comm.rank());
        let out = sds_sort(comm, data.clone(), &cfg).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    assert_global_sort(&inputs, &outputs, |&k| k);
    let total: usize = inputs.iter().map(Vec::len).sum();
    let loads: Vec<usize> = outputs.iter().map(Vec::len).collect();
    assert!(
        *loads.iter().max().unwrap() <= bound(total, p),
        "loads {loads:?}"
    );
}

#[test]
fn stable_variant_survives_adversaries() {
    let p = 6;
    let mut cfg = SdsConfig::stable();
    cfg.tau_m_bytes = 0;
    for gen_id in 0..3 {
        let world = World::new(p).cores_per_node(3).net(NetModel::zero());
        let report = world.run(|comm| {
            let data: Vec<u64> = match gen_id {
                0 => pivot_aligned(1500, p, 70.0, 4, comm.rank()),
                1 => heavy_hitters(1500, 3, 90.0, 5, comm.rank()),
                _ => one_rank_duplicates(1500, 6, comm.rank()),
            };
            let out = sds_sort(comm, data.clone(), &cfg).expect("no budget");
            (data, out.data)
        });
        let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
        assert_global_sort(&inputs, &outputs, |&k| k);
    }
}

#[test]
fn classic_partition_ablation_shows_imbalance() {
    // Same pipeline, classic partition: adversarial duplicates concentrate
    // (RDFA → p-ish) where skew-aware stays near Theorem 1's regime.
    let p = 8;
    let gen = move |r: usize| {
        workloads::all_equal(1000, 42)
            .into_iter()
            .chain(workloads::uniform_u64(1000, 7, r))
            .collect::<Vec<u64>>()
    };

    let mut skew_cfg = no_merge_cfg();
    skew_cfg.partition = PartitionStrategy::SkewAware;
    let (_, skew_loads) = run_loads(p, skew_cfg, gen);

    let mut classic_cfg = no_merge_cfg();
    classic_cfg.partition = PartitionStrategy::Classic;
    let (_, classic_loads) = run_loads(p, classic_cfg, gen);

    let r_skew = rdfa(&skew_loads);
    let r_classic = rdfa(&classic_loads);
    assert!(
        r_classic > r_skew * 1.5,
        "classic ({r_classic:.2}) should be far worse than skew-aware ({r_skew:.2})"
    );
    assert!(r_skew < 4.2, "skew-aware RDFA {r_skew}");
}

#[test]
fn oversampling_tightens_balance() {
    // Larger oversampling factors should not hurt correctness and should
    // (weakly) improve the balance on uniform data.
    let p = 8;
    let mut rdfa_by_s = Vec::new();
    for s in [1usize, 4, 16] {
        let mut cfg = no_merge_cfg();
        cfg.oversample = s;
        let (total, loads) = run_loads(p, cfg, move |r| {
            workloads::uniform_u64(3000, 9 + s as u64, r)
        });
        assert_eq!(loads.iter().sum::<usize>(), total);
        assert!(*loads.iter().max().unwrap() <= bound(total, p));
        rdfa_by_s.push(rdfa(&loads));
    }
    // s = 16 should be no worse than s = 1 (different seeds add noise;
    // allow 10% slack).
    assert!(
        rdfa_by_s[2] <= rdfa_by_s[0] * 1.1,
        "oversampling should improve balance: {rdfa_by_s:?}"
    );
}

#[test]
fn oversampling_with_stable_and_skew() {
    let p = 6;
    let mut cfg = SdsConfig::stable();
    cfg.tau_m_bytes = 0;
    cfg.oversample = 8;
    let world = World::new(p).cores_per_node(3).net(NetModel::zero());
    let report = world.run(|comm| {
        let data = workloads::zipf_keys(2000, 0.9, 11, comm.rank());
        let out = sds_sort(comm, data.clone(), &cfg).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    assert_global_sort(&inputs, &outputs, |&k| k);
}

#[test]
fn histogram_pivot_source_sorts_correctly() {
    // SDS with HykSort's selector but the skew-aware partition: correct
    // and bounded even on heavy duplicates (the §2.4 decomposition).
    let p = 8;
    let mut cfg = no_merge_cfg();
    cfg.pivot_source = sdssort::PivotSource::Histogram;
    let world = World::new(p).cores_per_node(4).net(NetModel::zero());
    let report = world.run(|comm| {
        let data = workloads::zipf_keys(2000, 1.4, 21, comm.rank());
        let out = sds_sort(comm, data.clone(), &cfg).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    assert_global_sort(&inputs, &outputs, |&k| k);
    let total: usize = inputs.iter().map(Vec::len).sum();
    let loads: Vec<usize> = outputs.iter().map(Vec::len).collect();
    assert!(
        *loads.iter().max().unwrap() <= bound(total, p),
        "loads {loads:?}"
    );
}

#[test]
fn histogram_pivot_source_with_stable() {
    let p = 6;
    let mut cfg = SdsConfig::stable();
    cfg.tau_m_bytes = 0;
    cfg.pivot_source = sdssort::PivotSource::Histogram;
    let world = World::new(p).cores_per_node(3).net(NetModel::zero());
    let report = world.run(|comm| {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(comm.rank() as u64 + 31);
        let data: Vec<sdssort::Tagged<u32>> = (0..1500u64)
            .map(|i| {
                sdssort::Record::new(rng.gen_range(0..12u32), ((comm.rank() as u64) << 32) | i)
            })
            .collect();
        let out = sds_sort(comm, data.clone(), &cfg).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    assert_global_sort(&inputs, &outputs, |r| (r.key, r.payload));
    let flat: Vec<sdssort::Tagged<u32>> = outputs.into_iter().flatten().collect();
    for w in flat.windows(2) {
        if w[0].key == w[1].key {
            assert!(
                w[0].payload < w[1].payload,
                "stability violated with histogram pivots"
            );
        }
    }
}
