//! Type-diversity matrix: the sorters are generic over record types; this
//! exercises the combinations real users hit — float keys, wide payloads,
//! shared-memory threading inside ranks — across the full pipeline.

mod common;

use common::assert_global_sort;
use mpisim::{NetModel, World};
use rand::prelude::*;
use sdssort::record::Pad;
use sdssort::{sds_sort, OrderedF32, OrderedF64, Record, SdsConfig};

fn world(p: usize) -> World {
    World::new(p).cores_per_node(4).net(NetModel::zero())
}

#[test]
fn f64_keys_with_negatives_and_infinities() {
    let report = world(6).run(|comm| {
        let mut rng = StdRng::seed_from_u64(comm.rank() as u64 + 1);
        let mut data: Vec<OrderedF64> = (0..2000)
            .map(|_| OrderedF64::new((rng.gen::<f64>() - 0.5) * 1e12))
            .collect();
        data.push(OrderedF64::new(f64::NEG_INFINITY));
        data.push(OrderedF64::new(f64::INFINITY));
        data.push(OrderedF64::new(-0.0));
        data.push(OrderedF64::new(0.0));
        let out = sds_sort(comm, data.clone(), &SdsConfig::default()).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    assert_global_sort(&inputs, &outputs, |k| *k);
    // -inf first, +inf last in the concatenation
    let flat: Vec<OrderedF64> = outputs.into_iter().flatten().collect();
    assert_eq!(flat.first().map(|k| k.value()), Some(f64::NEG_INFINITY));
    assert_eq!(flat.last().map(|k| k.value()), Some(f64::INFINITY));
}

#[test]
fn wide_payload_records_survive_exchange() {
    // 24-byte opaque payloads (the cosmology shape) with narrow keys.
    type Rec = Record<u32, Pad<24>>;
    let report = world(4).run(|comm| {
        let mut rng = StdRng::seed_from_u64(comm.rank() as u64 + 7);
        let data: Vec<Rec> = (0..1500)
            .map(|i| {
                let mut pad = [0u8; 24];
                pad[..8].copy_from_slice(&(i as u64).to_le_bytes());
                pad[8] = comm.rank() as u8;
                Record::new(rng.gen_range(0..50u32), Pad(pad))
            })
            .collect();
        let out = sds_sort(comm, data.clone(), &SdsConfig::default()).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    // project key + full payload bytes: any corruption in transit fails
    assert_global_sort(&inputs, &outputs, |r| (r.key, r.payload.0));
}

#[test]
fn f32_key_with_payload_stable() {
    type Rec = Record<OrderedF32, u64>;
    let mut cfg = SdsConfig::stable();
    cfg.tau_m_bytes = 0;
    let report = world(6).run(|comm| {
        let mut rng = StdRng::seed_from_u64(comm.rank() as u64 + 3);
        let data: Vec<Rec> = (0..2000u64)
            .map(|i| {
                // quantized scores → heavy duplication
                let score = (rng.gen_range(0..20) as f32) / 20.0;
                Record::new(OrderedF32::new(score), ((comm.rank() as u64) << 32) | i)
            })
            .collect();
        let out = sds_sort(comm, data.clone(), &cfg).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    assert_global_sort(&inputs, &outputs, |r| (r.key, r.payload));
    // stability on equal float keys
    let flat: Vec<Rec> = outputs.into_iter().flatten().collect();
    for w in flat.windows(2) {
        if w[0].key == w[1].key {
            assert!(w[0].payload < w[1].payload, "stable order violated");
        }
    }
}

#[test]
fn signed_integer_keys() {
    let report = world(5).run(|comm| {
        let mut rng = StdRng::seed_from_u64(comm.rank() as u64 + 11);
        let data: Vec<i64> = (0..1800).map(|_| rng.gen_range(-1000..1000)).collect();
        let out = sds_sort(comm, data.clone(), &SdsConfig::default()).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    assert_global_sort(&inputs, &outputs, |&k| k);
    let flat: Vec<i64> = outputs.into_iter().flatten().collect();
    assert!(
        flat.first().copied().unwrap_or(0) < 0,
        "negatives must sort first"
    );
}

#[test]
fn local_threads_inside_ranks() {
    // SdssLocalSort with c = 2 threads per simulated rank (nested
    // parallelism: the shared-memory path inside the distributed path).
    let mut cfg = SdsConfig::default();
    cfg.local_threads = 2;
    cfg.tau_m_bytes = 0;
    let report = world(4).run(|comm| {
        let mut rng = StdRng::seed_from_u64(comm.rank() as u64 + 13);
        let data: Vec<u64> = (0..5000).map(|_| rng.gen_range(0..400)).collect();
        let out = sds_sort(comm, data.clone(), &cfg).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    assert_global_sort(&inputs, &outputs, |&k| k);
}

#[test]
fn u128_keys() {
    let report = world(4).run(|comm| {
        let mut rng = StdRng::seed_from_u64(comm.rank() as u64 + 17);
        let data: Vec<u128> = (0..1200)
            .map(|_| (rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128)
            .collect();
        let out = sds_sort(comm, data.clone(), &SdsConfig::default()).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    assert_global_sort(&inputs, &outputs, |&k| k);
}
