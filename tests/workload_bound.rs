//! Theorem 1 (paper §2.8): with SDS-Sort's regular sampling and skew-aware
//! partitioning, the post-exchange load of every rank is bounded by
//! `4N/p` (plus lower-order terms) for *any* duplication pattern — while
//! the classic partition's load grows with skew without bound.

mod common;

use mpisim::{NetModel, World};
use rand::prelude::*;
use sdssort::{sds_sort, SdsConfig};
use workloads::zipf_keys;

/// Theorem 1's bound with the lower-order slack made explicit:
/// `U ≤ 4N/p + 2·(N/p²) + p` covers rounding from ⌊n/p⌋ striding on
/// finite inputs (the paper's analysis drops these terms inside big-O).
fn bound(n_total: usize, p: usize) -> usize {
    4 * n_total / p + 2 * n_total / (p * p) + p
}

fn max_load<G>(p: usize, gen: G) -> (usize, usize)
where
    G: Fn(usize) -> Vec<u64> + Send + Sync,
{
    let mut cfg = SdsConfig::default();
    cfg.tau_m_bytes = 0; // keep the exchange at full width p
    let world = World::new(p).cores_per_node(4).net(NetModel::zero());
    let report = world.run(|comm| {
        let data = gen(comm.rank());
        let n = data.len();
        let out = sds_sort(comm, data, &cfg).expect("no budget");
        (n, out.data.len())
    });
    let n_total: usize = report.results.iter().map(|r| r.0).sum();
    let max = report.results.iter().map(|r| r.1).max().unwrap();
    (n_total, max)
}

#[test]
fn bound_holds_on_uniform() {
    for p in [4usize, 8, 16] {
        let (n, max) = max_load(p, |r| workloads::uniform_u64(2000, 1, r));
        assert!(
            max <= bound(n, p),
            "p={p}: max {max} > bound {}",
            bound(n, p)
        );
    }
}

#[test]
fn bound_holds_on_zipf_all_alphas() {
    for &(alpha, _) in &workloads::PAPER_ALPHA_DELTA_TABLE2 {
        let (n, max) = max_load(8, move |r| zipf_keys(3000, alpha, 2, r));
        assert!(
            max <= bound(n, 8),
            "α={alpha}: max {max} > bound {}",
            bound(n, 8)
        );
    }
}

#[test]
fn bound_holds_on_extreme_skew() {
    // 99% one value.
    let (n, max) = max_load(8, |r| {
        let mut rng = StdRng::seed_from_u64(r as u64);
        (0..2500u64)
            .map(|_| {
                if rng.gen_bool(0.99) {
                    42
                } else {
                    rng.gen_range(0..100)
                }
            })
            .collect()
    });
    assert!(max <= bound(n, 8), "max {max} > bound {}", bound(n, 8));
}

#[test]
fn bound_holds_on_all_identical() {
    let (n, max) = max_load(16, |_r| vec![7u64; 1000]);
    assert!(max <= bound(n, 16), "max {max} > bound {}", bound(n, 16));
    // and the balance is actually good, not merely within 4N/p:
    assert!(
        max <= 2 * n / 16 + 16,
        "identical keys should spread near-evenly: {max}"
    );
}

#[test]
fn bound_holds_on_few_heavy_values() {
    // Two heavy hitters at opposite ends of the key space.
    let (n, max) = max_load(8, |r| {
        let mut rng = StdRng::seed_from_u64(100 + r as u64);
        (0..2000u64)
            .map(|_| match rng.gen_range(0..10) {
                0..=3 => 1u64,
                4..=7 => u64::MAX - 1,
                _ => rng.gen(),
            })
            .collect()
    });
    assert!(max <= bound(n, 8), "max {max} > bound {}", bound(n, 8));
}

#[test]
fn bound_holds_for_stable_variant() {
    let mut cfg = SdsConfig::stable();
    cfg.tau_m_bytes = 0;
    let p = 8;
    let world = World::new(p).cores_per_node(4).net(NetModel::zero());
    let report = world.run(|comm| {
        let data = zipf_keys(3000, 0.9, 5, comm.rank());
        let n = data.len();
        let out = sds_sort(comm, data, &cfg).expect("no budget");
        (n, out.data.len())
    });
    let n_total: usize = report.results.iter().map(|r| r.0).sum();
    let max = report.results.iter().map(|r| r.1).max().unwrap();
    assert!(
        max <= bound(n_total, p),
        "stable: max {max} > bound {}",
        bound(n_total, p)
    );
}

#[test]
fn classic_partition_violates_bound_where_sds_does_not() {
    // Direct comparison at the partition level: on a single-value dataset
    // classic cuts give one rank everything; skew-aware cuts split it.
    use sdssort::partition::{classic_cuts, cuts_to_counts, fast_cuts};
    let p = 8;
    let data = vec![5u64; 8000];
    let pivots = vec![5u64; p - 1];
    let classic = cuts_to_counts(&classic_cuts(&data, &pivots));
    let skew = cuts_to_counts(&fast_cuts(&data, &pivots, None));
    assert_eq!(*classic.iter().max().unwrap(), 8000);
    assert!(*skew.iter().max().unwrap() <= 8000 / (p - 1) + 1);
}

#[test]
fn rdfa_reflects_balance() {
    let p = 8;
    let mut cfg = SdsConfig::default();
    cfg.tau_m_bytes = 0;
    let world = World::new(p).cores_per_node(4).net(NetModel::zero());
    let report = world.run(|comm| {
        let data = zipf_keys(4000, 0.8, 9, comm.rank());
        sds_sort(comm, data, &cfg).expect("no budget").data.len()
    });
    let loads: Vec<usize> = report.results;
    let r = sdssort::rdfa(&loads);
    // Theorem 1 ⇒ RDFA ≤ 4 (plus slack); paper's Table 3 observes ≤ ~2.7.
    assert!(r <= 4.2, "RDFA {r} too large: {loads:?}");
    assert!(r >= 1.0);
}
