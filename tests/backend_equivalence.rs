//! Backend equivalence: the same sort on the same seed must produce the
//! same answer whether it runs on the deterministic virtual-time simulator
//! (`mpisim`), on real OS threads (`shmem`), or on real OS *processes*
//! over sockets (`sockcomm`).
//!
//! All backends share the collective algorithms and rank-order reduction
//! folds in `comm::raw`, so this holds *bit-for-bit per rank*, not just as
//! a global multiset:
//!
//! - `u64` keys (any variant): identical per-rank output vectors.
//! - Stable variant over tagged records: identical per-rank `(key, tag)`
//!   sequences — stability pins the tie order to global input order,
//!   leaving nothing arrival-dependent.
//! - Fast variant over tagged records: identical per-rank *key* sequences
//!   and a global permutation of the input; equal-key tag order is the
//!   one place real-thread arrival order is allowed to show through.
//!
//! Also runs the Theorem 1 `O(4N/p)` skew-bound assertions on the threads
//! and sockets backends: the bound is a property of the partition, not the
//! simulator.
//!
//! Sockets worlds re-exec this test binary for their rank processes,
//! targeting the [`sockcomm_child_entry`] test by exact name; in a normal
//! parent test run that test is a no-op.

use mpisim::{NetModel, World};
use sdssort::{sds_sort, Record, SdsConfig, Tagged};
use shmem::ThreadWorld;
use workloads::{heavy_hitters, staircase, uniform_u64, zipf_keys};

/// Workload matrix: name → per-rank generator (seeded, rank-dependent).
fn gen_keys(workload: &str, n: usize, seed: u64, rank: usize) -> Vec<u64> {
    match workload {
        "uniform" => uniform_u64(n, seed, rank),
        "zipf" => zipf_keys(n, 1.2, seed, rank),
        "staircase" => staircase(n, 4, seed, rank),
        "adversarial" => heavy_hitters(n, 2, 90.0, seed, rank),
        "identical" => vec![seed % 101; n],
        other => panic!("unknown workload {other}"),
    }
}

/// Dispatch one of the `crates/algos` peers (backend-generic, like
/// `sds_sort`): both are deterministic end to end, so they join the
/// bit-identical matrix below as first-class columns.
fn run_algo<C: comm::Communicator>(algo: &str, comm: &C, data: Vec<u64>) -> Vec<u64> {
    match algo {
        "ams" => {
            algos::ams_sort(comm, data, &algos::AmsConfig::default())
                .expect("no memory budget")
                .data
        }
        "hss" => {
            algos::hss_sort(comm, data, &algos::HssConfig::default())
                .expect("no memory budget")
                .data
        }
        other => panic!("unknown algo {other}"),
    }
}

fn run_sim_algo(algo: &str, p: usize, workload: &str, n: usize, seed: u64) -> Vec<Vec<u64>> {
    let world = World::new(p).cores_per_node(4).net(NetModel::zero());
    let report = world.run(|comm| {
        let data = gen_keys(workload, n, seed, comm.rank());
        run_algo(algo, comm, data)
    });
    report.results
}

fn run_threads_algo(algo: &str, p: usize, workload: &str, n: usize, seed: u64) -> Vec<Vec<u64>> {
    use comm::Communicator;
    let report = ThreadWorld::new(p).cores_per_node(4).run(|comm| {
        let data = gen_keys(workload, n, seed, comm.rank());
        run_algo(algo, comm, data)
    });
    report.results
}

fn cfg_for(stable: bool) -> SdsConfig {
    let mut cfg = if stable {
        SdsConfig::stable()
    } else {
        SdsConfig::default()
    };
    cfg.tau_m_bytes = 0; // full-width exchange on both backends
    cfg
}

fn run_sim_u64(p: usize, cfg: &SdsConfig, workload: &str, n: usize, seed: u64) -> Vec<Vec<u64>> {
    let world = World::new(p).cores_per_node(4).net(NetModel::zero());
    let report = world.run(|comm| {
        let data = gen_keys(workload, n, seed, comm.rank());
        sds_sort(comm, data, cfg).expect("no memory budget").data
    });
    report.results
}

fn run_threads_u64(
    p: usize,
    cfg: &SdsConfig,
    workload: &str,
    n: usize,
    seed: u64,
) -> Vec<Vec<u64>> {
    use comm::Communicator;
    let report = ThreadWorld::new(p).cores_per_node(4).run(|comm| {
        let data = gen_keys(workload, n, seed, comm.rank());
        sds_sort(comm, data, cfg).expect("no memory budget").data
    });
    report.results
}

// ---- sockets backend: entry plumbing -------------------------------------

const ENTRY_SORT_U64: &str = "equiv-sort-u64";
const ENTRY_SORT_TAGGED: &str = "equiv-sort-tagged";
const ENTRY_SORT_ALGO: &str = "equiv-sort-algo";

/// (workload, records per rank, seed, stable, force node merge).
type U64Params = (String, u64, u64, bool, bool);

fn sockets_u64_entry(comm: &sockcomm::SockComm, params: U64Params) -> Vec<u64> {
    use comm::Communicator;
    let (workload, n, seed, stable, force_merge) = params;
    let mut cfg = cfg_for(stable);
    if force_merge {
        cfg.tau_m_bytes = usize::MAX;
    }
    let data = gen_keys(&workload, n as usize, seed, comm.rank());
    sds_sort(comm, data, &cfg).expect("no memory budget").data
}

/// (algo, workload, records per rank, seed).
type AlgoParams = (String, String, u64, u64);

fn sockets_algo_entry(comm: &sockcomm::SockComm, params: AlgoParams) -> Vec<u64> {
    use comm::Communicator;
    let (algo, workload, n, seed) = params;
    let data = gen_keys(&workload, n as usize, seed, comm.rank());
    run_algo(&algo, comm, data)
}

/// (records per rank, seed, stable).
type TaggedParams = (u64, u64, bool);

fn sockets_tagged_entry(
    comm: &sockcomm::SockComm,
    params: TaggedParams,
) -> (Vec<Tagged<u32>>, Vec<Tagged<u32>>) {
    use comm::Communicator;
    let (n, seed, stable) = params;
    let cfg = cfg_for(stable);
    let data = tagged_input(n as usize, 64, seed, comm.rank());
    let out = sds_sort(comm, data.clone(), &cfg).expect("no memory budget");
    (data, out.data)
}

/// Rank processes of the sockets worlds below re-enter this binary with
/// `sockcomm_child_entry --exact` and divert inside one of these
/// `child_rank` calls (which never return). In a parent test run no
/// `SOCKCOMM_*` environment is set, every call is a no-op, and the test
/// trivially passes.
#[test]
fn sockcomm_child_entry() {
    sockcomm::child_rank(ENTRY_SORT_U64, sockets_u64_entry);
    sockcomm::child_rank(ENTRY_SORT_TAGGED, sockets_tagged_entry);
    sockcomm::child_rank(ENTRY_SORT_ALGO, sockets_algo_entry);
}

fn sockets_world(p: usize) -> sockcomm::SocketWorld {
    sockcomm::SocketWorld::new(p)
        .cores_per_node(4)
        .child_args(["sockcomm_child_entry", "--exact"])
}

fn run_sockets_u64(
    p: usize,
    workload: &str,
    n: usize,
    seed: u64,
    stable: bool,
    force_merge: bool,
) -> Vec<Vec<u64>> {
    sockets_world(p)
        .run::<U64Params, Vec<u64>>(
            ENTRY_SORT_U64,
            &(workload.to_string(), n as u64, seed, stable, force_merge),
        )
        .expect("sockets world")
        .results
}

fn run_sockets_tagged(p: usize, n: usize, seed: u64, stable: bool) -> (RankRecords, RankRecords) {
    sockets_world(p)
        .run::<TaggedParams, (Vec<Tagged<u32>>, Vec<Tagged<u32>>)>(
            ENTRY_SORT_TAGGED,
            &(n as u64, seed, stable),
        )
        .expect("sockets world")
        .results
        .into_iter()
        .unzip()
}

#[test]
fn ams_and_hss_output_is_bit_identical_across_backends() {
    // The crates/algos peers join the same guarantee as sds_sort: seeded
    // sampling, synchronous rank-order exchanges, and tie-to-lower-run
    // merging leave nothing arrival-dependent, so per-rank outputs match
    // bit for bit between the simulator and real OS threads.
    for algo in ["ams", "hss"] {
        for p in [2usize, 4, 8] {
            for workload in ["uniform", "zipf", "staircase", "adversarial", "identical"] {
                let seed = 0xA15 + p as u64;
                let sim = run_sim_algo(algo, p, workload, 1200, seed);
                let thr = run_threads_algo(algo, p, workload, 1200, seed);
                assert_eq!(
                    sim, thr,
                    "per-rank divergence: algo={algo} p={p} workload={workload}"
                );
            }
        }
    }
}

#[test]
fn sockets_ams_and_hss_output_is_bit_identical_to_sim_and_threads() {
    for algo in ["ams", "hss"] {
        for p in [2usize, 4] {
            for workload in ["uniform", "zipf", "staircase", "adversarial", "identical"] {
                let seed = 0xA15 + p as u64;
                let sim = run_sim_algo(algo, p, workload, 800, seed);
                let thr = run_threads_algo(algo, p, workload, 800, seed);
                let sock = sockets_world(p)
                    .run::<AlgoParams, Vec<u64>>(
                        ENTRY_SORT_ALGO,
                        &(algo.to_string(), workload.to_string(), 800, seed),
                    )
                    .expect("sockets world")
                    .results;
                assert_eq!(
                    sim, sock,
                    "sim vs sockets divergence: algo={algo} p={p} workload={workload}"
                );
                assert_eq!(
                    thr, sock,
                    "threads vs sockets divergence: algo={algo} p={p} workload={workload}"
                );
            }
        }
    }
}

#[test]
fn u64_output_is_bit_identical_across_backends() {
    for p in [2usize, 4, 8] {
        for workload in ["uniform", "zipf", "staircase", "adversarial", "identical"] {
            for stable in [false, true] {
                let cfg = cfg_for(stable);
                let seed = 0xE9 + p as u64;
                let sim = run_sim_u64(p, &cfg, workload, 1500, seed);
                let thr = run_threads_u64(p, &cfg, workload, 1500, seed);
                assert_eq!(
                    sim, thr,
                    "per-rank divergence: p={p} workload={workload} stable={stable}"
                );
            }
        }
    }
}

#[test]
fn u64_output_matches_with_node_merge_enabled() {
    // τm on, multi-rank nodes: the node-merge path (split + leader
    // gather) must agree across backends too.
    for stable in [false, true] {
        let mut cfg = cfg_for(stable);
        cfg.tau_m_bytes = usize::MAX; // force node merging
        let p = 8;
        let sim = run_sim_u64(p, &cfg, "zipf", 1200, 0x5EED);
        let thr = run_threads_u64(p, &cfg, "zipf", 1200, 0x5EED);
        assert_eq!(sim, thr, "node-merge divergence (stable={stable})");
    }
}

/// Records whose tag encodes (rank, position): ties are observable.
fn tagged_input(n: usize, key_space: u32, seed: u64, rank: usize) -> Vec<Tagged<u32>> {
    let keys = zipf_keys(n, 1.1, seed, rank);
    keys.iter()
        .enumerate()
        .map(|(i, &k)| {
            Record::new(
                (k % u64::from(key_space)) as u32,
                ((rank as u64) << 32) | i as u64,
            )
        })
        .collect()
}

type RankRecords = Vec<Vec<Tagged<u32>>>;

fn run_sim_tagged(p: usize, cfg: &SdsConfig, n: usize, seed: u64) -> (RankRecords, RankRecords) {
    let world = World::new(p).cores_per_node(4).net(NetModel::zero());
    let report = world.run(|comm| {
        let data = tagged_input(n, 64, seed, comm.rank());
        let out = sds_sort(comm, data.clone(), cfg).expect("no memory budget");
        (data, out.data)
    });
    report.results.into_iter().unzip()
}

fn run_threads_tagged(
    p: usize,
    cfg: &SdsConfig,
    n: usize,
    seed: u64,
) -> (RankRecords, RankRecords) {
    use comm::Communicator;
    let report = ThreadWorld::new(p).cores_per_node(4).run(|comm| {
        let data = tagged_input(n, 64, seed, comm.rank());
        let out = sds_sort(comm, data.clone(), cfg).expect("no memory budget");
        (data, out.data)
    });
    report.results.into_iter().unzip()
}

#[test]
fn stable_variant_ties_are_bit_identical_across_backends() {
    for p in [2usize, 4, 8] {
        let cfg = cfg_for(true);
        let (_, sim) = run_sim_tagged(p, &cfg, 1000, 0xAB + p as u64);
        let (_, thr) = run_threads_tagged(p, &cfg, 1000, 0xAB + p as u64);
        // Stability pins equal-key order to global input order, so even
        // the payloads match record-for-record.
        assert_eq!(sim, thr, "stable tagged divergence at p={p}");
    }
}

#[test]
fn fast_variant_keys_match_and_tags_are_a_permutation() {
    let p = 8;
    let cfg = cfg_for(false);
    let (input, sim) = run_sim_tagged(p, &cfg, 1000, 0xFA57);
    let (_, thr) = run_threads_tagged(p, &cfg, 1000, 0xFA57);
    for r in 0..p {
        let sim_keys: Vec<u32> = sim[r].iter().map(|t| t.key).collect();
        let thr_keys: Vec<u32> = thr[r].iter().map(|t| t.key).collect();
        assert_eq!(sim_keys, thr_keys, "key sequence divergence at rank {r}");
    }
    // The fast variant may reorder equal keys differently under real
    // concurrency, but each output is still a permutation of the input.
    let mut want: Vec<u64> = input.iter().flatten().map(|t| t.payload).collect();
    want.sort_unstable();
    for out in [&sim, &thr] {
        let mut got: Vec<u64> = out.iter().flatten().map(|t| t.payload).collect();
        got.sort_unstable();
        assert_eq!(got, want, "output is not a permutation of the input");
    }
}

#[test]
fn sockets_u64_output_is_bit_identical_to_sim_and_threads() {
    for p in [2usize, 4] {
        for workload in ["uniform", "zipf", "staircase", "adversarial", "identical"] {
            for stable in [false, true] {
                let cfg = cfg_for(stable);
                let seed = 0xE9 + p as u64;
                let sim = run_sim_u64(p, &cfg, workload, 800, seed);
                let thr = run_threads_u64(p, &cfg, workload, 800, seed);
                let sock = run_sockets_u64(p, workload, 800, seed, stable, false);
                assert_eq!(
                    sim, sock,
                    "sim vs sockets divergence: p={p} workload={workload} stable={stable}"
                );
                assert_eq!(
                    thr, sock,
                    "threads vs sockets divergence: p={p} workload={workload} stable={stable}"
                );
            }
        }
    }
}

#[test]
fn sockets_u64_output_matches_with_node_merge_enabled() {
    // τm forced on, multi-rank nodes: the node-merge path (communicator
    // split + leader gather) over real processes must agree too.
    for stable in [false, true] {
        let mut cfg = cfg_for(stable);
        cfg.tau_m_bytes = usize::MAX;
        let p = 4;
        let sim = run_sim_u64(p, &cfg, "zipf", 800, 0x5EED);
        let sock = run_sockets_u64(p, "zipf", 800, 0x5EED, stable, true);
        assert_eq!(
            sim, sock,
            "node-merge divergence on sockets (stable={stable})"
        );
    }
}

#[test]
fn sockets_stable_ties_are_bit_identical_to_sim() {
    let p = 4;
    let cfg = cfg_for(true);
    let seed = 0xAB + p as u64;
    let (_, sim) = run_sim_tagged(p, &cfg, 800, seed);
    let (input, sock) = run_sockets_tagged(p, 800, seed, true);
    // Stability pins equal-key order to global input order: even across
    // address spaces, payloads match record-for-record.
    assert_eq!(sim, sock, "stable tagged divergence on sockets at p={p}");
    let mut want: Vec<u64> = input.iter().flatten().map(|t| t.payload).collect();
    want.sort_unstable();
    let mut got: Vec<u64> = sock.iter().flatten().map(|t| t.payload).collect();
    got.sort_unstable();
    assert_eq!(
        got, want,
        "sockets output is not a permutation of the input"
    );
}

#[test]
fn skew_bound_holds_on_sockets_backend() {
    // Theorem 1 over real processes: every generator emits exactly n
    // records per rank, so N = p·n.
    for (p, workload) in [
        (4usize, "uniform"),
        (4, "zipf"),
        (4, "adversarial"),
        (4, "identical"),
    ] {
        let out = run_sockets_u64(p, workload, 2000, 3, false, false);
        let n_total = p * 2000;
        let max = out.iter().map(|r| r.len()).max().expect("p >= 1");
        assert!(
            max <= bound(n_total, p),
            "sockets backend: {workload} p={p}: max {max} > bound {}",
            bound(n_total, p)
        );
    }
}

/// Theorem 1's bound with explicit lower-order slack (see
/// `tests/workload_bound.rs`): `U ≤ 4N/p + 2N/p² + p`.
fn bound(n_total: usize, p: usize) -> usize {
    4 * n_total / p + 2 * n_total / (p * p) + p
}

#[test]
fn skew_bound_holds_on_threads_backend() {
    use comm::Communicator;
    let mut cfg = SdsConfig::default();
    cfg.tau_m_bytes = 0;
    for (p, workload) in [
        (4usize, "uniform"),
        (8, "zipf"),
        (8, "adversarial"),
        (8, "identical"),
    ] {
        let report = ThreadWorld::new(p).cores_per_node(4).run(|comm| {
            let data = gen_keys(workload, 2000, 3, comm.rank());
            let n = data.len();
            let out = sds_sort(comm, data, &cfg).expect("no memory budget");
            (n, out.data.len())
        });
        let n_total: usize = report.results.iter().map(|r| r.0).sum();
        let max = report.results.iter().map(|r| r.1).max().expect("p >= 1");
        assert!(
            max <= bound(n_total, p),
            "threads backend: {workload} p={p}: max {max} > bound {}",
            bound(n_total, p)
        );
    }
}

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        /// Any (seed, p, workload, variant) cell: per-rank u64 outputs are
        /// bit-identical across backends.
        #[test]
        fn backends_agree_on_any_seed(
            seed in 0u64..1_000_000,
            p_idx in 0usize..3,
            workload_idx in 0usize..4,
            stable in any::<bool>(),
        ) {
            let p = [2usize, 4, 8][p_idx];
            let workload = ["uniform", "zipf", "adversarial", "identical"][workload_idx];
            let cfg = cfg_for(stable);
            let sim = run_sim_u64(p, &cfg, workload, 600, seed);
            let thr = run_threads_u64(p, &cfg, workload, 600, seed);
            prop_assert_eq!(sim, thr);
        }
    }
}
