//! The headline qualitative reproduction: under a per-rank memory budget,
//! HykSort (and classical sample sort) fail with OOM on highly skewed
//! data because their duplicate-blind partitions concentrate load, while
//! SDS-Sort completes — plus baseline correctness on benign inputs.

mod common;

use baselines::{bitonic_sort, hyksort, sample_sort, HykSortConfig, SampleSortConfig};
use common::assert_global_sort;
use mpisim::{NetModel, World};
use sdssort::{sds_sort, SdsConfig, SortError};
use workloads::{uniform_u64, zipf_keys};

#[test]
fn hyksort_sorts_uniform_data() {
    for p in [2usize, 4, 8, 12] {
        let world = World::new(p).cores_per_node(4).net(NetModel::zero());
        let report = world.run(|comm| {
            let data = uniform_u64(2000, 3, comm.rank());
            let out = hyksort(comm, data.clone(), &HykSortConfig::default()).expect("no budget");
            (data, out.data)
        });
        let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
        assert_global_sort(&inputs, &outputs, |&k| k);
    }
}

#[test]
fn hyksort_multistage_with_small_k() {
    // k=2 over p=8 forces three stages of recursion.
    let mut cfg = HykSortConfig::default();
    cfg.k = 2;
    let world = World::new(8).cores_per_node(4).net(NetModel::zero());
    let report = world.run(|comm| {
        let data = uniform_u64(1500, 5, comm.rank());
        let out = hyksort(comm, data.clone(), &cfg).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    assert_global_sort(&inputs, &outputs, |&k| k);
}

#[test]
fn sample_sort_sorts_uniform_data() {
    for p in [2usize, 5, 8] {
        let world = World::new(p).cores_per_node(4).net(NetModel::zero());
        let report = world.run(|comm| {
            let data = uniform_u64(1800, 7, comm.rank());
            let out =
                sample_sort(comm, data.clone(), &SampleSortConfig::default()).expect("no budget");
            (data, out.data)
        });
        let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
        assert_global_sort(&inputs, &outputs, |&k| k);
    }
}

#[test]
fn bitonic_sorts_power_of_two_and_odd_worlds() {
    for p in [2usize, 4, 8, 3, 6] {
        let world = World::new(p).cores_per_node(4).net(NetModel::zero());
        let report = world.run(|comm| {
            let data = uniform_u64(512, 11, comm.rank());
            let out = bitonic_sort(comm, data.clone());
            (data, out)
        });
        let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
        assert_global_sort(&inputs, &outputs, |&k| k);
    }
}

#[test]
fn bitonic_sorts_skewed_data_too() {
    // Bitonic is skew-immune (fixed communication pattern) — it is slow,
    // not imbalanced.
    let world = World::new(8).cores_per_node(4).net(NetModel::zero());
    let report = world.run(|comm| {
        let data = zipf_keys(512, 0.9, 13, comm.rank());
        let out = bitonic_sort(comm, data.clone());
        (data, out)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    assert_global_sort(&inputs, &outputs, |&k| k);
    // every rank keeps exactly its block size
    assert!(outputs.iter().all(|o| o.len() == 512));
}

/// The core Fig. 8 / Table 3 reproduction: a budget that comfortably fits
/// balanced loads (≥ 4N/p per rank) but not a concentrated one.
#[test]
fn hyksort_ooms_on_skew_sds_survives() {
    let p = 8;
    let n = 4000usize; // per rank
                       // Budget: 6×(N/p)×8B — fits SDS-Sort's 4N/p bound, not an all-on-one
                       // concentration of a 99%-duplicate dataset.
    let budget = 6 * n * 8;
    let gen = |rank: usize| -> Vec<u64> {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(rank as u64 ^ 0xBEEF);
        (0..n as u64)
            .map(|_| {
                if rng.gen_bool(0.99) {
                    123
                } else {
                    rng.gen_range(0..1000)
                }
            })
            .collect()
    };

    let world = World::new(p)
        .cores_per_node(4)
        .net(NetModel::zero())
        .memory_budget(budget);
    let hyk = world.run(|comm| {
        let data = gen(comm.rank());
        hyksort(comm, data, &HykSortConfig::default()).map(|o| o.data.len())
    });
    assert!(
        hyk.results
            .iter()
            .any(|r| matches!(r, Err(SortError::Oom(_)))),
        "HykSort must OOM on 99% duplicates under budget"
    );
    assert!(
        hyk.results.iter().all(|r| r.is_err()),
        "OOM must abort the collective everywhere"
    );

    let world = World::new(p)
        .cores_per_node(4)
        .net(NetModel::zero())
        .memory_budget(budget);
    let mut cfg = SdsConfig::default();
    cfg.tau_m_bytes = 0;
    let sds = world.run(|comm| {
        let data = gen(comm.rank());
        sds_sort(comm, data, &cfg).map(|o| o.data.len())
    });
    assert!(
        sds.results.iter().all(Result::is_ok),
        "SDS-Sort must fit the same budget"
    );
    let total: usize = sds.results.iter().map(|r| *r.as_ref().unwrap()).sum();
    assert_eq!(total, p * n);
}

#[test]
fn sample_sort_also_ooms_on_skew() {
    let p = 8;
    let n = 4000usize;
    let budget = 6 * n * 8;
    let world = World::new(p)
        .cores_per_node(4)
        .net(NetModel::zero())
        .memory_budget(budget);
    let res = world.run(|comm| {
        let data = vec![77u64; n];
        sample_sort(comm, data, &SampleSortConfig::default()).map(|o| o.data.len())
    });
    assert!(
        res.results.iter().all(Result::is_err),
        "classic PSRS must OOM on identical keys"
    );
}

#[test]
fn sds_stable_survives_same_budget() {
    let p = 8;
    let n = 4000usize;
    let budget = 6 * n * 8;
    let world = World::new(p)
        .cores_per_node(4)
        .net(NetModel::zero())
        .memory_budget(budget);
    let mut cfg = SdsConfig::stable();
    cfg.tau_m_bytes = 0;
    let res = world.run(|comm| {
        let data = vec![77u64; n];
        sds_sort(comm, data, &cfg).map(|o| o.data.len())
    });
    assert!(res.results.iter().all(Result::is_ok));
}

#[test]
fn generous_budget_lets_hyksort_finish_skew() {
    // Mirrors the PTF experiment (Fig. 9): the whole dataset fits on one
    // node, so HykSort finishes despite terrible RDFA.
    let p = 4;
    let n = 2000usize;
    let world = World::new(p)
        .cores_per_node(4)
        .net(NetModel::zero())
        .memory_budget(p * n * 8 * 2);
    let report = world.run(|comm| {
        let data = vec![5u64; n];
        let out = hyksort(comm, data, &HykSortConfig::default()).expect("generous budget");
        out.data.len()
    });
    let loads: Vec<usize> = report.results;
    assert_eq!(loads.iter().sum::<usize>(), p * n);
    // all duplicates on one rank: RDFA = p
    let r = sdssort::rdfa(&loads);
    assert!(
        r > (p as f64) * 0.9,
        "HykSort RDFA should approach p, got {r} ({loads:?})"
    );
}
