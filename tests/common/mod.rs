//! Shared verification helpers for the integration tests.

use sdssort::Sortable;

/// Assert the per-rank outputs form a globally sorted permutation of the
/// per-rank inputs:
///
/// 1. each rank's output is locally sorted by key;
/// 2. rank boundaries are ordered (rank i's max key ≤ rank i+1's min key);
/// 3. the concatenated output is a permutation of the concatenated input
///    (checked on the full records via a sort-and-compare on key plus a
///    caller-provided total projection).
#[allow(dead_code)] // not every test binary that includes `common` uses it
pub fn assert_global_sort<T, F, P>(inputs: &[Vec<T>], outputs: &[Vec<T>], project: F)
where
    T: Sortable,
    F: Fn(&T) -> P,
    P: Ord + std::fmt::Debug,
{
    assert_eq!(inputs.len(), outputs.len(), "one output per rank");
    for (r, out) in outputs.iter().enumerate() {
        assert!(
            out.windows(2).all(|w| w[0].key() <= w[1].key()),
            "rank {r} output not locally sorted"
        );
    }
    for w in outputs.windows(2) {
        if let (Some(hi), Some(lo)) = (w[0].last(), w[1].first()) {
            assert!(hi.key() <= lo.key(), "rank boundary out of order");
        }
    }
    // Rank boundaries with empty ranks in between: compare across gaps too.
    let mut last_max: Option<T::Key> = None;
    for out in outputs {
        if let Some(first) = out.first() {
            if let Some(lm) = last_max {
                assert!(lm <= first.key(), "cross-gap rank boundary out of order");
            }
        }
        if let Some(last) = out.last() {
            last_max = Some(last.key());
        }
    }
    let mut in_all: Vec<P> = inputs.iter().flatten().map(&project).collect();
    let mut out_all: Vec<P> = outputs.iter().flatten().map(&project).collect();
    in_all.sort_unstable();
    out_all.sort_unstable();
    assert_eq!(in_all, out_all, "output must be a permutation of input");
}
