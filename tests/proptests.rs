//! Property-based tests (proptest) for the core invariants in DESIGN.md §6.

mod common;

use common::assert_global_sort;
use mpisim::{NetModel, World};
use proptest::collection::vec;
use proptest::prelude::*;
use sdssort::merge::{is_sorted_by_key, kway_merge};
use sdssort::partition::{
    cuts_to_counts, fast_cuts, replicated_runs, shares_for_source, stable_cuts, PivotRun,
};
use sdssort::search::{lower_bound, upper_bound, LocalPivotIndex};
use sdssort::{local_sort_with, sds_sort, LocalKernel, Record, SdsConfig};

/// Reference implementation of the paper's per-pivot `SdssReplicated` scan.
fn replicated_reference<K: Ord + Copy>(pivots: &[K]) -> Vec<PivotRun<K>> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < pivots.len() {
        // emulate the paper's per-index scan: for pivot i, look left and
        // right for equal neighbours
        let v = pivots[i];
        let start = pivots[..i]
            .iter()
            .rposition(|&x| x != v)
            .map_or(0, |j| j + 1);
        let end = pivots[i..]
            .iter()
            .position(|&x| x != v)
            .map_or(pivots.len(), |j| i + j);
        if end - start >= 2 {
            runs.push(PivotRun {
                start,
                len: end - start,
                value: v,
            });
            i = end;
        } else {
            i += 1;
        }
    }
    runs
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn replicated_runs_match_reference(pivots in vec(0u32..8, 0..24)) {
        let mut sorted = pivots;
        sorted.sort_unstable();
        prop_assert_eq!(replicated_runs(&sorted), replicated_reference(&sorted));
    }

    #[test]
    fn fast_cuts_partition_everything_once(
        data in vec(0u32..16, 0..300),
        pivots in vec(0u32..16, 1..12),
    ) {
        let mut data = data;
        data.sort_unstable();
        let mut pivots = pivots;
        pivots.sort_unstable();
        let cuts = fast_cuts(&data, &pivots, None);
        prop_assert_eq!(cuts.len(), pivots.len() + 2);
        prop_assert_eq!(cuts[0], 0);
        prop_assert_eq!(*cuts.last().unwrap(), data.len());
        prop_assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
        // destination ranges respect pivot order: everything in range i is
        // <= everything in range i+1 (keys can only repeat across adjacent
        // ranges when the pivot run machinery split them)
        let counts = cuts_to_counts(&cuts);
        prop_assert_eq!(counts.iter().sum::<usize>(), data.len());
    }

    #[test]
    fn two_level_search_equals_direct(
        data in vec(0u64..64, 0..400),
        samples in 0usize..12,
        key in 0u64..66,
    ) {
        let mut data = data;
        data.sort_unstable();
        let idx = LocalPivotIndex::build(&data, samples);
        prop_assert_eq!(idx.upper_bound(&data, key), upper_bound(&data, key));
        prop_assert_eq!(idx.lower_bound(&data, key), lower_bound(&data, key));
    }

    #[test]
    fn kway_merge_equals_sorted_concat(runs in vec(vec(0u32..50, 0..80), 0..9)) {
        let runs: Vec<Vec<u32>> = runs.into_iter().map(|mut r| { r.sort_unstable(); r }).collect();
        let refs: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
        let merged = kway_merge(&refs);
        let mut expect: Vec<u32> = runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(merged, expect);
    }

    #[test]
    fn stable_cuts_group_sizes_bounded(
        per_source in vec(0usize..60, 2..6),
        rs in 2usize..5,
    ) {
        // One duplicated-pivot run of length rs; per_source[i] duplicates
        // on source i. Group sizes must not exceed ceil(total/rs).
        let total: usize = per_source.iter().sum();
        let sa = total.div_ceil(rs).max(1);
        let pivots: Vec<u32> = vec![7; rs];
        let runs = replicated_runs(&pivots);
        prop_assert_eq!(runs.len(), 1);
        let counts_by_source: Vec<Vec<usize>> =
            per_source.iter().map(|&c| vec![c]).collect();
        let mut group_sizes = vec![0usize; rs + 1];
        for (src, &cnt) in per_source.iter().enumerate() {
            let data = vec![7u32; cnt];
            let shares = shares_for_source(&counts_by_source, src);
            let cuts = stable_cuts(&data, &pivots, None, &shares);
            for (g, c) in cuts_to_counts(&cuts).into_iter().enumerate() {
                group_sizes[g] += c;
            }
        }
        prop_assert_eq!(group_sizes.iter().sum::<usize>(), total);
        for (g, &size) in group_sizes.iter().enumerate().take(rs) {
            prop_assert!(size <= sa, "group {g} holds {size} > sa {sa}");
        }
        prop_assert_eq!(group_sizes[rs], 0, "nothing past the run owners");
    }
}

// Local-sort matrix: threads × {stable, unstable} × workload shape ×
// kernel, with sizes straddling the radix/comparison boundary
// (RADIX_MIN_N = 2048). Stable runs must equal std's stable sort exactly;
// unstable runs must be a key-sorted permutation.
proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn local_sort_matrix_matches_std(
        threads in 1usize..6,
        stable in any::<bool>(),
        shape in 0usize..4,
        n in 1200usize..6000,
        kernel_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        use rand::prelude::*;
        let kernel = [LocalKernel::Auto, LocalKernel::Radix, LocalKernel::Comparison][kernel_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let keys: Vec<u32> = match shape {
            // uniform
            0 => (0..n).map(|_| rng.gen_range(0..100_000)).collect(),
            // 90% one duplicated key
            1 => (0..n)
                .map(|_| if rng.gen_bool(0.9) { 7 } else { rng.gen_range(0..1000) })
                .collect(),
            // presorted
            2 => (0..n as u32).collect(),
            // reverse-sorted
            _ => (0..n as u32).rev().collect(),
        };
        let recs: Vec<Record<u32, u64>> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Record::new(k, i as u64))
            .collect();
        let mut got = recs.clone();
        local_sort_with(&mut got, threads, stable, kernel);
        if stable {
            let mut expect = recs.clone();
            expect.sort_by_key(|r| r.key);
            prop_assert_eq!(got, expect);
        } else {
            prop_assert!(is_sorted_by_key(&got));
            let mut p_in: Vec<(u32, u64)> = recs.iter().map(|r| (r.key, r.payload)).collect();
            let mut p_out: Vec<(u32, u64)> = got.iter().map(|r| (r.key, r.payload)).collect();
            p_in.sort_unstable();
            p_out.sort_unstable();
            prop_assert_eq!(p_in, p_out);
        }
    }
}

// Distributed worlds are expensive per case; run fewer cases.
proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn sds_sort_is_sorting_permutation(
        p in 2usize..7,
        key_space in 1u32..40,
        sizes in vec(0usize..300, 6),
        stable in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let cfg = if stable { SdsConfig::stable() } else { SdsConfig::default() };
        let world = World::new(p).cores_per_node(3).net(NetModel::zero());
        let report = world.run(|comm| {
            use rand::prelude::*;
            let n = sizes[comm.rank() % sizes.len()];
            let mut rng = StdRng::seed_from_u64(seed ^ comm.rank() as u64);
            let data: Vec<Record<u32, u64>> = (0..n)
                .map(|i| Record::new(
                    rng.gen_range(0..key_space),
                    ((comm.rank() as u64) << 32) | i as u64,
                ))
                .collect();
            let out = sds_sort(comm, data.clone(), &cfg).expect("no budget");
            (data, out.data)
        });
        let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
        assert_global_sort(&inputs, &outputs, |r| (r.key, r.payload));
        if stable {
            let flat: Vec<Record<u32, u64>> = outputs.into_iter().flatten().collect();
            prop_assert!(is_sorted_by_key(&flat));
            for w in flat.windows(2) {
                if w[0].key == w[1].key {
                    prop_assert!(w[0].payload < w[1].payload, "stability violated");
                }
            }
        }
    }

    #[test]
    fn workload_bound_holds_for_random_duplication(
        p in 4usize..9,
        heavy_pct in 0u32..100,
        seed in any::<u64>(),
    ) {
        let n_rank = 600usize;
        let mut cfg = SdsConfig::default();
        cfg.tau_m_bytes = 0;
        let world = World::new(p).cores_per_node(4).net(NetModel::zero());
        let report = world.run(|comm| {
            use rand::prelude::*;
            let mut rng = StdRng::seed_from_u64(seed ^ (comm.rank() as u64) << 8);
            let data: Vec<u64> = (0..n_rank)
                .map(|_| if rng.gen_range(0..100) < heavy_pct { 42 } else { rng.gen_range(0..500) })
                .collect();
            sds_sort(comm, data, &cfg).expect("no budget").data.len()
        });
        let n_total = p * n_rank;
        let bound = 4 * n_total / p + 2 * n_total / (p * p) + p;
        let max = report.results.into_iter().max().unwrap();
        prop_assert!(max <= bound, "max load {max} exceeds 4N/p bound {bound}");
    }
}

// Full-exchange simulations of the stable partition: multiple sources,
// arbitrary data and pivots, verified against the global stable order.
proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn stable_partition_simulated_exchange_preserves_order(
        sources in vec(vec(0u32..6, 0..50), 2..6),
        raw_pivots in vec(0u32..6, 1..8),
    ) {
        use sdssort::partition::{local_dup_counts, shares_for_source};
        // Sorted per-source data (tagged with global input position) and
        // sorted pivots.
        let mut pivots = raw_pivots;
        pivots.sort_unstable();
        let p = pivots.len() + 1;
        let mut tag = 0u64;
        let tagged: Vec<Vec<Record<u32, u64>>> = sources
            .iter()
            .map(|src| {
                let mut recs: Vec<Record<u32, u64>> = src
                    .iter()
                    .map(|&k| {
                        tag += 1;
                        Record::new(k, tag)
                    })
                    .collect();
                // stable local sort keeps tags ascending within equal keys
                recs.sort_by_key(|r| r.key);
                recs
            })
            .collect();

        // Stable cuts per source with consistent shares.
        let runs = replicated_runs(&pivots);
        let counts: Vec<Vec<usize>> =
            tagged.iter().map(|d| local_dup_counts(d, &runs)).collect();
        let all_cuts: Vec<Vec<usize>> = tagged
            .iter()
            .enumerate()
            .map(|(i, d)| stable_cuts(d, &pivots, None, &shares_for_source(&counts, i)))
            .collect();

        // Simulate the exchange: destination d receives, in source order,
        // each source's [cuts[d], cuts[d+1]) slice.
        let mut received: Vec<Vec<Record<u32, u64>>> = vec![Vec::new(); p];
        for (src, d) in tagged.iter().enumerate() {
            for dest in 0..p {
                let (a, b) = (all_cuts[src][dest], all_cuts[src][dest + 1]);
                received[dest].extend_from_slice(&d[a..b]);
            }
        }
        // Each destination merges its source-ordered chunks stably; since
        // each source slice is sorted and sources are concatenated in rank
        // order, a stable sort by key models SdssMergeAll.
        let mut global: Vec<Record<u32, u64>> = Vec::new();
        for dest in received.iter_mut() {
            dest.sort_by_key(|r| r.key);
            global.extend_from_slice(dest);
        }
        // The concatenation must be globally key-sorted and, within equal
        // keys, ascending by input tag (global stability).
        for w in global.windows(2) {
            prop_assert!(w[0].key <= w[1].key, "global key order violated");
            if w[0].key == w[1].key {
                prop_assert!(w[0].payload < w[1].payload, "stability violated");
            }
        }
        // And nothing lost.
        let total_in: usize = sources.iter().map(Vec::len).sum();
        prop_assert_eq!(global.len(), total_in);
    }
}
