//! Uniformly distributed keys — the baseline workload of every parallel
//! sorting evaluation, and the paper's non-skewed reference (δ → 0 for
//! wide key domains).

use rand::prelude::*;

fn rng_for(seed: u64, rank: usize) -> StdRng {
    // Mix rank into the seed so ranks draw disjoint, reproducible streams.
    StdRng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// `n` uniform `u64` keys for `rank`.
pub fn uniform_u64(n: usize, seed: u64, rank: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    uniform_u64_into(&mut out, n, seed, rank);
    out
}

/// Append `n` uniform `u64` keys for `rank` to `buf` — the same stream as
/// [`uniform_u64`], but into a caller-owned (typically arena-recycled)
/// buffer so steady-state generation causes no fresh allocation.
pub fn uniform_u64_into(buf: &mut Vec<u64>, n: usize, seed: u64, rank: usize) {
    let mut rng = rng_for(seed, rank);
    buf.extend((0..n).map(|_| rng.gen::<u64>()));
}

/// `n` uniform `u32` keys in `[0, max)` for `rank`.
pub fn uniform_u32(n: usize, max: u32, seed: u64, rank: usize) -> Vec<u32> {
    let mut rng = rng_for(seed, rank);
    (0..n).map(|_| rng.gen_range(0..max)).collect()
}

/// `n` uniform `f32` values in `[0, 1)` for `rank` (Table 1's uniform
/// float workload).
pub fn uniform_f32(n: usize, seed: u64, rank: usize) -> Vec<f32> {
    let mut rng = rng_for(seed, rank);
    (0..n).map(|_| rng.gen::<f32>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication_ratio_pct;

    #[test]
    fn deterministic_per_rank() {
        assert_eq!(uniform_u64(100, 7, 3), uniform_u64(100, 7, 3));
        assert_ne!(uniform_u64(100, 7, 3), uniform_u64(100, 7, 4));
        assert_ne!(uniform_u64(100, 7, 3), uniform_u64(100, 8, 3));
    }

    #[test]
    fn u64_replication_negligible() {
        let keys = uniform_u64(100_000, 1, 0);
        assert!(replication_ratio_pct(keys) < 0.01);
    }

    #[test]
    fn u32_respects_bound() {
        let keys = uniform_u32(10_000, 50, 2, 1);
        assert!(keys.iter().all(|&k| k < 50));
        // with a small domain, duplicates are expected
        assert!(replication_ratio_pct(keys) > 1.0);
    }

    #[test]
    fn f32_in_unit_interval() {
        let v = uniform_f32(10_000, 3, 0);
        assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        // roughly centered
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
