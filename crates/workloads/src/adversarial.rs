//! Adversarial duplication patterns.
//!
//! The Zipf generator produces *statistically* skewed data; these
//! generators produce the structurally worst cases for sample-sort
//! partitioning — the inputs a reviewer would try first when attacking
//! Theorem 1's `O(4N/p)` claim:
//!
//! * every record identical ([`all_equal`]),
//! * a handful of heavy values at chosen quantiles ([`heavy_hitters`]),
//! * duplicates placed exactly at the expected pivot positions
//!   ([`pivot_aligned`]),
//! * one rank owning all duplicates while others are uniform
//!   ([`one_rank_duplicates`]).

use rand::prelude::*;

fn rng_for(seed: u64, rank: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Every record on every rank carries the same key.
pub fn all_equal(n: usize, key: u64) -> Vec<u64> {
    vec![key; n]
}

/// `hitters` heavy values, evenly spaced across the key domain, together
/// covering `heavy_pct` percent of records; the rest uniform.
pub fn heavy_hitters(n: usize, hitters: usize, heavy_pct: f64, seed: u64, rank: usize) -> Vec<u64> {
    assert!(hitters >= 1);
    let mut rng = rng_for(seed, rank);
    let domain = u64::MAX;
    let values: Vec<u64> = (0..hitters)
        .map(|i| (i as u64 + 1) * (domain / (hitters as u64 + 1)))
        .collect();
    (0..n)
        .map(|_| {
            if rng.gen_bool((heavy_pct / 100.0).clamp(0.0, 1.0)) {
                values[rng.gen_range(0..hitters)]
            } else {
                rng.gen()
            }
        })
        .collect()
}

/// Duplicates concentrated exactly at the `p-1` regular-sample quantiles —
/// the positions global pivots are expected to land on, maximizing
/// replicated-pivot runs.
pub fn pivot_aligned(n: usize, p: usize, dup_pct: f64, seed: u64, rank: usize) -> Vec<u64> {
    assert!(p >= 2);
    let mut rng = rng_for(seed, rank);
    let pivot_values: Vec<u64> = (1..p as u64).map(|i| i * (u64::MAX / p as u64)).collect();
    (0..n)
        .map(|_| {
            if rng.gen_bool((dup_pct / 100.0).clamp(0.0, 1.0)) {
                pivot_values[rng.gen_range(0..pivot_values.len())]
            } else {
                rng.gen()
            }
        })
        .collect()
}

/// Rank 0 holds only duplicates of one value; every other rank holds
/// uniform data — stresses the stable partition's cross-rank grouping.
pub fn one_rank_duplicates(n: usize, seed: u64, rank: usize) -> Vec<u64> {
    if rank == 0 {
        vec![u64::MAX / 2; n]
    } else {
        let mut rng = rng_for(seed, rank);
        (0..n).map(|_| rng.gen()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication_ratio_pct;

    #[test]
    fn all_equal_is_total_duplication() {
        let d = all_equal(100, 7);
        assert_eq!(replication_ratio_pct(d), 100.0);
    }

    #[test]
    fn heavy_hitters_hits_target_mass() {
        let d = heavy_hitters(100_000, 4, 40.0, 1, 0);
        let top = replication_ratio_pct(d);
        // 40% over 4 hitters → ~10% each
        assert!((top - 10.0).abs() < 1.5, "top hitter {top}%");
    }

    #[test]
    fn pivot_aligned_duplicates_sit_on_quantiles() {
        let p = 8;
        let d = pivot_aligned(50_000, p, 50.0, 2, 1);
        let quantiles: Vec<u64> = (1..p as u64).map(|i| i * (u64::MAX / p as u64)).collect();
        let on_quantile = d.iter().filter(|k| quantiles.contains(k)).count();
        let frac = on_quantile as f64 / d.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "quantile mass {frac}");
    }

    #[test]
    fn one_rank_duplicates_shape() {
        let r0 = one_rank_duplicates(1000, 3, 0);
        assert!(r0.iter().all(|&k| k == u64::MAX / 2));
        let r1 = one_rank_duplicates(1000, 3, 1);
        assert!(replication_ratio_pct(r1) < 1.0);
    }
}
