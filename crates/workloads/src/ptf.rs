//! Synthetic Palomar Transient Factory (PTF) objects.
//!
//! The paper's PTF test sorts 1 billion detected objects by their
//! *real-bogus score* — an `f32` produced by the RB classifier — and
//! reports the dataset as highly skewed with δ = 28.02 % (Fig. 9,
//! Table 4). The real catalog is not redistributable, so this generator is
//! the documented substitution: ~28 % of objects carry the classifier's
//! saturated "certain bogus" score of 0.0 (a classifier emitting a hard
//! zero for obvious artifacts is exactly how such a spike arises), and the
//! remainder follow a bimodal real/bogus mixture quantized to the
//! classifier's score grid. The sorters only observe the key distribution,
//! so matching δ and the clustered shape preserves the evaluated
//! behaviour.

use rand::prelude::*;
use sdssort::{OrderedF32, Record};

/// A detected PTF object: real-bogus score key plus an object-id payload.
pub type PtfObject = Record<OrderedF32, u64>;

/// Fraction of records carrying the most duplicated score (paper: 28.02 %).
pub const PTF_DELTA_PCT: f64 = 28.02;

/// Generate `n` synthetic PTF objects for `rank`. Object ids are globally
/// unique (`rank·n + i`-style), so stability checks can use them.
pub fn ptf_scores(n: usize, seed: u64, rank: usize) -> Vec<PtfObject> {
    let mut rng = StdRng::seed_from_u64(seed ^ ((rank as u64) << 24) ^ 0x9d_f7);
    (0..n)
        .map(|i| {
            let u: f64 = rng.gen();
            let score: f32 = if u < PTF_DELTA_PCT / 100.0 {
                // saturated "certain bogus" output
                0.0
            } else if rng.gen_bool(0.55) {
                // bogus mode near 0.1, quantized to the score grid
                quantize(sample_mode(&mut rng, 0.12, 0.08))
            } else {
                // real mode near 0.85
                quantize(sample_mode(&mut rng, 0.85, 0.10))
            };
            Record::new(OrderedF32::new(score), (rank as u64) << 40 | i as u64)
        })
        .collect()
}

fn sample_mode<R: Rng>(rng: &mut R, center: f32, spread: f32) -> f32 {
    // triangular-ish mode without pulling in a distributions crate
    let a: f32 = rng.gen::<f32>() - 0.5;
    let b: f32 = rng.gen::<f32>() - 0.5;
    (center + (a + b) * spread).clamp(0.0, 1.0)
}

/// Classifier scores are reported on a fixed grid (creating secondary
/// duplicate mass beyond the δ spike).
fn quantize(v: f32) -> f32 {
    (v * 4096.0).round() / 4096.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication_ratio_pct;
    use sdssort::Sortable;

    #[test]
    fn delta_matches_published_value() {
        let objs = ptf_scores(200_000, 7, 0);
        let delta = replication_ratio_pct(objs.iter().map(|o| o.key()));
        assert!(
            (delta - PTF_DELTA_PCT).abs() < 1.0,
            "δ {delta:.2}% should be ≈ {PTF_DELTA_PCT}%"
        );
    }

    #[test]
    fn scores_in_unit_interval() {
        let objs = ptf_scores(10_000, 1, 2);
        for o in &objs {
            let v = o.key.value();
            assert!((0.0..=1.0).contains(&v), "score {v}");
        }
    }

    #[test]
    fn object_ids_unique_across_ranks() {
        let a = ptf_scores(1000, 5, 0);
        let b = ptf_scores(1000, 5, 1);
        let mut ids: Vec<u64> = a.iter().chain(b.iter()).map(|o| o.payload).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2000);
    }

    #[test]
    fn bimodal_shape() {
        let objs = ptf_scores(100_000, 11, 0);
        let high = objs.iter().filter(|o| o.key.value() > 0.6).count();
        let low = objs.iter().filter(|o| o.key.value() < 0.4).count();
        assert!(high > 20_000, "real mode populated: {high}");
        assert!(low > 40_000, "bogus mode + spike populated: {low}");
    }
}
