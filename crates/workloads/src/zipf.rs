//! Zipf-distributed keys: `p(i) = C / i^α` for `i = 1..=M`.
//!
//! The paper parameterizes skew by the **maximum replication ratio**
//! `δ = d/N` where `d` is the population of the most duplicated key — and
//! for a Zipf distribution `δ = p(1) = C = 1/H_{M,α}` in expectation.
//! Table 2 pins δ for α ∈ {0.4..0.9} (and Table 1 also uses α ∈
//! {0.7, 1.4, 2.1}); to match those δ values the generalized harmonic
//! number `H_{M,α}` must hit `1/δ`, which fixes the key-universe size `M`
//! per α. [`ZipfGen::with_delta_target`] solves for `M` numerically, so
//! our empirical δ reproduces the paper's table.

use rand::prelude::*;

/// α→δ pairs published in Table 2 of the paper (δ in percent).
pub const PAPER_ALPHA_DELTA_TABLE2: [(f64, f64); 6] = [
    (0.4, 0.2),
    (0.5, 0.5),
    (0.6, 1.0),
    (0.7, 2.0),
    (0.8, 3.7),
    (0.9, 6.4),
];

/// Generalized harmonic number `H_{M,α} = Σ_{i=1..M} i^{-α}`.
fn harmonic(m: usize, alpha: f64) -> f64 {
    // Exact sum for small M, integral-corrected tail beyond a threshold.
    const EXACT: usize = 200_000;
    let exact_upto = m.min(EXACT);
    let mut h: f64 = (1..=exact_upto).map(|i| (i as f64).powf(-alpha)).sum();
    if m > EXACT {
        // ∫_{EXACT+0.5}^{M+0.5} x^{-α} dx (midpoint-corrected tail)
        let a = EXACT as f64 + 0.5;
        let b = m as f64 + 0.5;
        if (alpha - 1.0).abs() < 1e-12 {
            h += (b / a).ln();
        } else {
            h += (b.powf(1.0 - alpha) - a.powf(1.0 - alpha)) / (1.0 - alpha);
        }
    }
    h
}

/// A seedable Zipf sampler over keys `1..=M` via inverse-CDF lookup.
#[derive(Debug, Clone)]
pub struct ZipfGen {
    alpha: f64,
    universe: usize,
    /// cdf[i] = P(key <= i+1); length `universe`.
    cdf: Vec<f64>,
}

impl ZipfGen {
    /// Sampler over an explicit key universe `1..=universe`.
    pub fn new(alpha: f64, universe: usize) -> Self {
        assert!(universe >= 1);
        assert!(alpha >= 0.0);
        let mut cdf = Vec::with_capacity(universe);
        let mut acc = 0.0f64;
        for i in 1..=universe {
            acc += (i as f64).powf(-alpha);
            cdf.push(acc);
        }
        let h = acc;
        for v in &mut cdf {
            *v /= h;
        }
        Self {
            alpha,
            universe,
            cdf,
        }
    }

    /// Sampler whose expected maximum replication ratio is
    /// `delta_pct` percent: solves `1/H_{M,α} = δ` for the universe size
    /// `M` by bisection, then builds the exact CDF (capped at 2²² distinct
    /// keys; beyond that the tail mass is folded into the last key, which
    /// changes δ negligibly).
    pub fn with_delta_target(alpha: f64, delta_pct: f64) -> Self {
        assert!(delta_pct > 0.0 && delta_pct < 100.0);
        let target_h = 100.0 / delta_pct;
        // find smallest M with H_{M,α} >= target_h
        let mut lo = 1usize;
        let mut hi = 1usize;
        while harmonic(hi, alpha) < target_h {
            if hi >= 1 << 40 {
                break; // α > 1: H converges; δ below its floor is impossible
            }
            hi *= 2;
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if harmonic(mid, alpha) < target_h {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let m = lo.clamp(1, 1 << 22);
        Self::new(alpha, m)
    }

    /// Zipf exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of distinct keys.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Expected maximum replication ratio in percent (`p(1)·100`).
    pub fn expected_delta_pct(&self) -> f64 {
        self.cdf[0] * 100.0
    }

    /// Draw one key in `1..=universe` (key 1 is the most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.universe - 1) + 1) as u64
    }

    /// Draw `n` keys for `rank` deterministically.
    pub fn keys(&self, n: usize, seed: u64, rank: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        self.keys_into(&mut out, n, seed, rank);
        out
    }

    /// Append `n` keys for `rank` to `buf` — the same stream as
    /// [`Self::keys`], but into a caller-owned (typically arena-recycled)
    /// buffer so steady-state generation causes no fresh allocation.
    pub fn keys_into(&self, buf: &mut Vec<u64>, n: usize, seed: u64, rank: usize) {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0xD134_2543_DE82_EF95));
        buf.extend((0..n).map(|_| self.sample(&mut rng)));
    }
}

/// Buffer-filling variant of [`zipf_keys`]: appends to `buf` instead of
/// allocating (identical key stream).
pub fn zipf_keys_into(buf: &mut Vec<u64>, n: usize, alpha: f64, seed: u64, rank: usize) {
    zipf_gen_for(alpha).keys_into(buf, n, seed, rank);
}

fn zipf_gen_for(alpha: f64) -> ZipfGen {
    PAPER_ALPHA_DELTA_TABLE2
        .iter()
        .find(|(a, _)| (*a - alpha).abs() < 1e-9)
        .map_or_else(
            || ZipfGen::new(alpha, 1 << 20),
            |&(a, d)| ZipfGen::with_delta_target(a, d),
        )
}

/// Convenience: `n` Zipf keys with exponent `alpha` calibrated to the
/// paper's Table 2 δ where α matches a table entry, else over a default
/// 2²⁰-key universe.
pub fn zipf_keys(n: usize, alpha: f64, seed: u64, rank: usize) -> Vec<u64> {
    zipf_gen_for(alpha).keys(n, seed, rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication_ratio_pct;

    #[test]
    fn harmonic_matches_known_values() {
        assert!((harmonic(1, 0.7) - 1.0).abs() < 1e-12);
        let h3 = 1.0 + 2f64.powf(-0.5) + 3f64.powf(-0.5);
        assert!((harmonic(3, 0.5) - h3).abs() < 1e-12);
        // tail approximation continuous across the exact/integral boundary
        let a = harmonic(200_000, 0.7);
        let b = harmonic(200_001, 0.7);
        assert!(b > a && b - a < 1e-3);
    }

    #[test]
    fn sampler_prefers_small_keys() {
        let gen = ZipfGen::new(1.0, 1000);
        let keys = gen.keys(50_000, 1, 0);
        let ones = keys.iter().filter(|&&k| k == 1).count();
        let fives = keys.iter().filter(|&&k| k == 5).count();
        assert!(
            ones > fives * 3,
            "zipf must be head-heavy: {ones} vs {fives}"
        );
        assert!(keys.iter().all(|&k| (1..=1000).contains(&k)));
    }

    #[test]
    fn delta_targets_match_table2() {
        // Empirical δ within a relative tolerance of each Table 2 entry.
        for &(alpha, delta) in &PAPER_ALPHA_DELTA_TABLE2 {
            let gen = ZipfGen::with_delta_target(alpha, delta);
            let expect = gen.expected_delta_pct();
            assert!(
                (expect - delta).abs() / delta < 0.05,
                "α={alpha}: expected δ {expect:.3}% vs table {delta}%"
            );
            let keys = gen.keys(200_000, 42, 0);
            let emp = replication_ratio_pct(keys);
            assert!(
                (emp - delta).abs() / delta < 0.25,
                "α={alpha}: empirical δ {emp:.3}% vs table {delta}%"
            );
        }
    }

    #[test]
    fn table1_high_alpha_deltas() {
        // Table 1 cites α=1.4 → δ≈32%, α=2.1 → δ≈63%.
        for (alpha, delta) in [(1.4, 32.0), (2.1, 63.0)] {
            let gen = ZipfGen::with_delta_target(alpha, delta);
            let emp = replication_ratio_pct(gen.keys(100_000, 3, 0));
            assert!(
                (emp - delta).abs() / delta < 0.15,
                "α={alpha}: empirical δ {emp:.1}% vs {delta}%"
            );
        }
    }

    #[test]
    fn keys_deterministic_per_rank() {
        let gen = ZipfGen::new(0.8, 5000);
        assert_eq!(gen.keys(100, 9, 2), gen.keys(100, 9, 2));
        assert_ne!(gen.keys(100, 9, 2), gen.keys(100, 9, 3));
    }
}
