//! # workloads — data generators for the SDS-Sort evaluation
//!
//! The paper evaluates on four datasets; each has a generator here:
//!
//! * **Uniform** ([`uniform`]) — standard uniform keys, the classic
//!   sample-sort benchmark (Figs. 5, 7; Tables 1, 3).
//! * **Zipf** ([`zipf`]) — skewed keys `p(i) = C/i^α`, with the α→δ
//!   (maximum replication ratio) calibration of Table 2 (Figs. 6c, 8;
//!   Tables 1–3).
//! * **PTF** ([`ptf`]) — synthetic Palomar Transient Factory real-bogus
//!   scores: `f32` keys with δ ≈ 28.02 % (Fig. 9, Table 4). *Substitution:*
//!   the real survey catalog is not redistributable; the generator matches
//!   the published duplication ratio and a bimodal score distribution,
//!   which is all the sorters observe.
//! * **Cosmology** ([`cosmology`]) — synthetic particle records keyed by
//!   cluster ID (power-law cluster sizes, δ ≈ 0.73 %) with a 6-float
//!   kinematic payload (Fig. 10, Table 4). *Substitution:* stands in for
//!   the 2.1 TB GADGET-2 snapshot.
//!
//! Plus [`partial`] — partially ordered data (the paper's §2.7 motivation
//! for adaptive local ordering).
//!
//! All generators are deterministic in `(seed, rank)` so simulated ranks
//! can generate their shares independently and reproducibly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod cosmology;
pub mod partial;
pub mod ptf;
pub mod staggered;
pub mod staircase;
pub mod uniform;
pub mod zipf;

pub use adversarial::{all_equal, heavy_hitters, one_rank_duplicates, pivot_aligned};
pub use cosmology::{cosmology_particles, Particle};
pub use partial::{interleaved_runs, nearly_sorted};
pub use ptf::{ptf_scores, PtfObject};
pub use staggered::{presplit, reversed, staggered};
pub use staircase::{staircase, staircase_into, MAX_STAIRCASE_STEPS};
pub use uniform::{uniform_f32, uniform_u32, uniform_u64, uniform_u64_into};
pub use zipf::{zipf_keys, zipf_keys_into, ZipfGen, PAPER_ALPHA_DELTA_TABLE2};

use std::collections::HashMap;
use std::hash::Hash;

/// Generate `n` `u64` keys for `rank` from a workload named on a command
/// line or in a job spec: `uniform`, `zipf:<alpha>`, `staircase` /
/// `staircase:<steps>` (descending staircase of duplication levels,
/// default 8 steps), `ptf-like` (PTF scores mapped to their
/// order-preserving bits), or `adversarial` (heavy-hitter duplicates).
/// Shared by `sortcli` and the sort service so a job submitted by name
/// reproduces exactly the keys a CLI run draws.
pub fn keys_by_name(name: &str, n: usize, seed: u64, rank: usize) -> Result<Vec<u64>, String> {
    let mut buf = Vec::with_capacity(n);
    fill_keys_by_name(name, &mut buf, n, seed, rank)?;
    Ok(buf)
}

/// Buffer-filling variant of [`keys_by_name`]: appends the identical key
/// stream to `buf`, so a resident service can recycle buffers between
/// jobs. The hot workloads (`uniform`, `zipf:*`) fill in place; the record
/// workloads fall back to a temporary.
pub fn fill_keys_by_name(
    name: &str,
    buf: &mut Vec<u64>,
    n: usize,
    seed: u64,
    rank: usize,
) -> Result<(), String> {
    if name == "uniform" {
        uniform_u64_into(buf, n, seed, rank);
        return Ok(());
    }
    if let Some(alpha) = name.strip_prefix("zipf:") {
        let alpha: f64 = alpha.parse().map_err(|e| format!("zipf alpha: {e}"))?;
        zipf_keys_into(buf, n, alpha, seed, rank);
        return Ok(());
    }
    if let Some(rest) = name.strip_prefix("staircase") {
        let steps: u32 = match rest.strip_prefix(':') {
            None if rest.is_empty() => 8,
            Some(s) => s.parse().map_err(|e| format!("staircase steps: {e}"))?,
            None => return Err(format!("unknown workload {name}")),
        };
        if steps == 0 || steps > MAX_STAIRCASE_STEPS {
            return Err(format!(
                "staircase steps must be in 1..={MAX_STAIRCASE_STEPS}, got {steps}"
            ));
        }
        staircase_into(buf, n, steps, seed, rank);
        return Ok(());
    }
    if name == "ptf-like" {
        buf.extend(
            ptf_scores(n, seed, rank)
                .into_iter()
                .map(|o| o.key.ordered_bits() as u64),
        );
        return Ok(());
    }
    if name == "adversarial" {
        buf.extend(heavy_hitters(n, 2, 90.0, seed, rank));
        return Ok(());
    }
    Err(format!("unknown workload {name}"))
}

/// Empirical maximum replication ratio δ = (count of the most frequent
/// key) / N, as a percentage — the paper's skewness measure.
pub fn replication_ratio_pct<K: Eq + Hash>(keys: impl IntoIterator<Item = K>) -> f64 {
    let mut counts: HashMap<K, usize> = HashMap::new();
    let mut n = 0usize;
    for k in keys {
        *counts.entry(k).or_insert(0) += 1;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    let d = counts.values().copied().max().unwrap_or(0);
    d as f64 / n as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_by_name_matches_direct_call() {
        assert_eq!(
            keys_by_name("staircase", 300, 5, 2).expect("valid name"),
            staircase(300, 8, 5, 2)
        );
        assert_eq!(
            keys_by_name("staircase:4", 300, 5, 2).expect("valid name"),
            staircase(300, 4, 5, 2)
        );
        assert!(keys_by_name("staircase:0", 10, 0, 0).is_err());
        assert!(keys_by_name("staircase:64", 10, 0, 0).is_err());
        assert!(keys_by_name("staircases", 10, 0, 0).is_err());
    }

    #[test]
    fn replication_ratio_basics() {
        assert_eq!(replication_ratio_pct(Vec::<u32>::new()), 0.0);
        assert_eq!(replication_ratio_pct(vec![1u32, 1, 1, 1]), 100.0);
        let r = replication_ratio_pct(vec![1u32, 1, 2, 3]);
        assert!((r - 50.0).abs() < 1e-9);
    }
}
