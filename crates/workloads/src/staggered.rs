//! Staggered distributions — classic parallel-sorting benchmark inputs
//! where the *placement* of ranges across ranks, not the value
//! distribution, is the variable.
//!
//! `staggered(…, 0)` puts rank r's data entirely inside the r-th slice of
//! the key space (the exchange is a no-op: best case); `reversed` puts it
//! in the (p-1-r)-th slice (every record crosses the machine: worst-case
//! volume); `shifted` rotates ownership by an arbitrary offset. These
//! stress the exchange independent of skew.

/// `n` keys for `rank` drawn from slice `(rank + shift) mod p` of the key
/// space, shuffled within the slice deterministically.
pub fn staggered(n: usize, p: usize, shift: usize, rank: usize) -> Vec<u64> {
    assert!(p > 0 && rank < p);
    let slice = ((rank + shift) % p) as u64;
    let width = u64::MAX / p as u64;
    let base = slice * width;
    let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ ((rank as u64) << 32) ^ shift as u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            base + x % width
        })
        .collect()
}

/// Every rank's data already in its own output slice (exchange ≈ no-op).
pub fn presplit(n: usize, p: usize, rank: usize) -> Vec<u64> {
    staggered(n, p, 0, rank)
}

/// Rank r's data belongs on rank p-1-r: maximal exchange volume.
pub fn reversed(n: usize, p: usize, rank: usize) -> Vec<u64> {
    assert!(rank < p);
    let slice = (p - 1 - rank) as u64;
    let width = u64::MAX / p as u64;
    let base = slice * width;
    let mut x = 0xD134_2543_DE82_EF95u64 ^ ((rank as u64) << 24);
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            base + x % width
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presplit_keys_live_in_own_slice() {
        let p = 8;
        let width = u64::MAX / p as u64;
        for rank in 0..p {
            let data = presplit(500, p, rank);
            let base = rank as u64 * width;
            assert!(
                data.iter().all(|&k| k >= base && k < base + width),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn reversed_keys_live_in_opposite_slice() {
        let p = 6;
        let width = u64::MAX / p as u64;
        for rank in 0..p {
            let data = reversed(300, p, rank);
            let base = (p - 1 - rank) as u64 * width;
            assert!(
                data.iter().all(|&k| k >= base && k < base + width),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn shift_rotates_ownership() {
        let p = 4;
        let width = u64::MAX / p as u64;
        let data = staggered(200, p, 3, 2); // slice (2+3)%4 = 1
        assert!(data.iter().all(|&k| k >= width && k < 2 * width));
    }

    #[test]
    fn deterministic() {
        assert_eq!(staggered(50, 4, 1, 2), staggered(50, 4, 1, 2));
        assert_ne!(staggered(50, 4, 1, 2), staggered(50, 4, 1, 3));
    }
}
