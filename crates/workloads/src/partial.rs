//! Partially ordered data.
//!
//! Paper §2.7: input or post-exchange data often consists of sorted runs
//! (the exchange concatenates `p` sorted chunks), and adaptive sorting of
//! such data approaches `O(n)`. These generators produce the two partially
//! ordered shapes the paper discusses: a concatenation of sorted runs, and
//! a sorted array with a fraction of random perturbations.

use rand::prelude::*;

/// Concatenation of `runs` sorted runs covering `n` total keys — the shape
/// of a rank's buffer after the all-to-all exchange.
pub fn interleaved_runs(n: usize, runs: usize, seed: u64, rank: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ ((rank as u64) << 32) ^ 0xABCD);
    let runs = runs.max(1);
    let mut out = Vec::with_capacity(n);
    let run_len = n.div_ceil(runs);
    for _ in 0..runs {
        let take = run_len.min(n - out.len());
        let mut run: Vec<u64> = (0..take).map(|_| rng.gen_range(0..1_000_000)).collect();
        run.sort_unstable();
        out.extend(run);
        if out.len() == n {
            break;
        }
    }
    out
}

/// A sorted array of `n` keys with `disorder_pct` percent of positions
/// swapped with random partners (0 → fully sorted, 100 → random-ish).
pub fn nearly_sorted(n: usize, disorder_pct: f64, seed: u64, rank: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ ((rank as u64) << 32) ^ 0x1234);
    let mut out: Vec<u64> = (0..n as u64).collect();
    let swaps = ((n as f64) * disorder_pct / 100.0 / 2.0) as usize;
    for _ in 0..swaps {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        out.swap(i, j);
    }
    out
}

/// Count maximal non-decreasing runs in `data` — a simple disorder metric
/// (1 = fully sorted).
pub fn count_runs<T: Ord>(data: &[T]) -> usize {
    if data.is_empty() {
        return 0;
    }
    1 + data.windows(2).filter(|w| w[0] > w[1]).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_runs_have_requested_run_count() {
        let data = interleaved_runs(1000, 4, 1, 0);
        assert_eq!(data.len(), 1000);
        assert!(count_runs(&data) <= 4);
        assert!(count_runs(&data) >= 2, "should not be accidentally sorted");
    }

    #[test]
    fn zero_disorder_is_sorted() {
        let data = nearly_sorted(500, 0.0, 1, 0);
        assert_eq!(count_runs(&data), 1);
    }

    #[test]
    fn disorder_increases_runs() {
        let lo = count_runs(&nearly_sorted(10_000, 1.0, 2, 0));
        let hi = count_runs(&nearly_sorted(10_000, 50.0, 2, 0));
        assert!(lo > 1);
        assert!(
            hi > lo * 2,
            "more disorder must create more runs ({lo} vs {hi})"
        );
    }

    #[test]
    fn count_runs_edges() {
        assert_eq!(count_runs::<u32>(&[]), 0);
        assert_eq!(count_runs(&[5u32]), 1);
        assert_eq!(count_runs(&[1u32, 1, 2]), 1);
        assert_eq!(count_runs(&[3u32, 2, 1]), 3);
    }

    #[test]
    fn nearly_sorted_is_permutation() {
        let mut data = nearly_sorted(1000, 20.0, 3, 1);
        data.sort_unstable();
        assert_eq!(data, (0..1000u64).collect::<Vec<_>>());
    }
}
