//! Synthetic cosmology particles (BD-CATS-style clustering output).
//!
//! The paper's second science dataset is a 2.1 TB GADGET-2 snapshot of 68
//! billion particles, sorted by the *cluster ID* assigned by BD-CATS, with
//! position and velocity payload (x, y, z, vx, vy, vz) and δ = 0.73 %
//! (Fig. 10, Table 4). Substitution: cluster populations in N-body
//! clustering follow a steep power law (many tiny halos, few huge ones);
//! we reuse the Zipf machinery calibrated so the largest cluster holds
//! 0.73 % of particles, hash the Zipf index into a scattered 64-bit
//! cluster ID (cluster IDs are not value-ordered in BD-CATS output), and
//! attach the 24-byte kinematic payload. Key skew and payload weight are
//! the two properties the evaluation exercises.

use crate::zipf::ZipfGen;
use rand::prelude::*;
use sdssort::Record;

/// Largest-cluster share published for the paper's snapshot, in percent.
pub const COSMOLOGY_DELTA_PCT: f64 = 0.73;

/// Kinematic payload: position and velocity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Kinematics {
    /// Position (x, y, z).
    pub pos: [f32; 3],
    /// Velocity (vx, vy, vz).
    pub vel: [f32; 3],
}

/// Field-wise wire encoding (safe element loop: this crate forbids
/// `unsafe`), so `Particle` exchanges work on the sockets backend too.
impl comm::Wire for Kinematics {
    fn put(&self, out: &mut Vec<u8>) {
        self.pos.put(out);
        self.vel.put(out);
    }
    fn get(src: &mut &[u8]) -> Option<Self> {
        Some(Self {
            pos: comm::Wire::get(src)?,
            vel: comm::Wire::get(src)?,
        })
    }
}

/// A particle record: cluster-ID key + kinematics payload.
pub type Particle = Record<u64, Kinematics>;

/// Splittable 64-bit hash (splitmix64 finalizer) — scatters cluster IDs.
fn scramble(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate `n` particles for `rank` with the published cluster-size skew.
pub fn cosmology_particles(n: usize, seed: u64, rank: usize) -> Vec<Particle> {
    // α = 0.6 keeps the solved universe small (~25k clusters) while the
    // head cluster holds δ = 0.73 % of particles.
    let gen = ZipfGen::with_delta_target(0.6, COSMOLOGY_DELTA_PCT);
    particles_with_gen(&gen, n, seed, rank)
}

/// Generator variant with an explicit cluster-size distribution.
pub fn particles_with_gen(gen: &ZipfGen, n: usize, seed: u64, rank: usize) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed ^ ((rank as u64) << 20) ^ 0xC05);
    (0..n)
        .map(|_| {
            let cluster = scramble(gen.sample(&mut rng));
            let payload = Kinematics {
                pos: [
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                ],
                vel: [
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ],
            };
            Record::new(cluster, payload)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication_ratio_pct;
    use sdssort::Sortable;

    #[test]
    fn delta_matches_published_value() {
        let parts = cosmology_particles(300_000, 13, 0);
        let delta = replication_ratio_pct(parts.iter().map(|p| p.key()));
        assert!(
            (delta - COSMOLOGY_DELTA_PCT).abs() / COSMOLOGY_DELTA_PCT < 0.3,
            "δ {delta:.3}% should be ≈ {COSMOLOGY_DELTA_PCT}%"
        );
    }

    #[test]
    fn record_is_32_bytes() {
        // u64 key + 6×f32 payload: the paper's heavy-record shape.
        assert_eq!(std::mem::size_of::<Particle>(), 32);
    }

    #[test]
    fn cluster_ids_scattered() {
        // scramble must not preserve the small-integer ordering of the
        // Zipf index — the popular cluster should be a big random id.
        let parts = cosmology_particles(50_000, 3, 1);
        let min = parts.iter().map(|p| p.key).min().unwrap();
        let max = parts.iter().map(|p| p.key).max().unwrap();
        assert!(max > 1 << 60, "ids should span the 64-bit space");
        assert!(min < max);
    }

    #[test]
    fn deterministic_per_rank() {
        let a = cosmology_particles(100, 3, 0);
        let b = cosmology_particles(100, 3, 0);
        assert_eq!(
            a.iter().map(|p| p.key).collect::<Vec<_>>(),
            b.iter().map(|p| p.key).collect::<Vec<_>>()
        );
        let c = cosmology_particles(100, 3, 1);
        assert_ne!(
            a.iter().map(|p| p.key).collect::<Vec<_>>(),
            c.iter().map(|p| p.key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn positions_in_box() {
        let parts = cosmology_particles(5000, 8, 2);
        for p in &parts {
            for c in p.payload.pos {
                assert!((0.0..100.0).contains(&c));
            }
            for v in p.payload.vel {
                assert!((-1.0..1.0).contains(&v));
            }
        }
    }
}
