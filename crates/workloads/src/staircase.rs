//! Staircase skew — a descending staircase of duplication levels.
//!
//! The key space is split into `steps` plateaus of **equal sampling
//! mass** whose widths *halve* step by step: step `i` draws uniformly
//! from `2^(steps-1-i)` distinct values, so the per-key replication
//! doubles at every step and the final plateau is a single key holding
//! `1/steps` of all mass (δ ≈ `100/steps` %). The density plotted over
//! the key space is a staircase: flat within a plateau, doubling at each
//! boundary.
//!
//! This sits between `uniform` (every key rare) and `adversarial`
//! (nearly all mass on one key): a duplicate-blind splitter can land a
//! boundary *inside* any of the heavy plateaus, and the imbalance it
//! eats grows smoothly with how deep into the staircase the boundary
//! falls — which is exactly the knob the 4-way algorithm shoot-out
//! sweeps. ROADMAP item 4 names it alongside uniform and Zipf.
//!
//! Deterministic in `(seed, rank)` like every generator in this crate.

/// Maximum supported number of steps: plateau offsets are spaced
/// `2^48` apart and plateau widths start at `2^(steps-1)`, so 32 keeps
/// both well inside `u64`.
pub const MAX_STAIRCASE_STEPS: u32 = 32;

/// `n` keys for `rank` from a `steps`-level staircase (see module docs).
/// Each step receives `≈ n/steps` of the mass; step `i` spans the
/// `2^(steps-1-i)` keys starting at `i·2^48`.
///
/// # Panics
/// If `steps` is 0 or exceeds [`MAX_STAIRCASE_STEPS`].
pub fn staircase(n: usize, steps: u32, seed: u64, rank: usize) -> Vec<u64> {
    let mut buf = Vec::with_capacity(n);
    staircase_into(&mut buf, n, steps, seed, rank);
    buf
}

/// Buffer-filling variant of [`staircase`]: appends the identical key
/// stream to `buf` (the resident service recycles buffers between jobs).
pub fn staircase_into(buf: &mut Vec<u64>, n: usize, steps: u32, seed: u64, rank: usize) {
    assert!(
        (1..=MAX_STAIRCASE_STEPS).contains(&steps),
        "staircase steps must be in 1..={MAX_STAIRCASE_STEPS}, got {steps}"
    );
    buf.reserve(n);
    let mut x = 0xA076_1D64_78BD_642Fu64 ^ seed ^ ((rank as u64) << 32) | 1;
    for _ in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let step = x % u64::from(steps);
        let width = 1u64 << (u64::from(steps) - 1 - step);
        let mut y = x;
        y ^= y << 13;
        y ^= y >> 7;
        y ^= y << 17;
        x = y;
        buf.push((step << 48) + y % width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed_and_rank() {
        assert_eq!(staircase(500, 8, 7, 3), staircase(500, 8, 7, 3));
        assert_ne!(staircase(500, 8, 7, 3), staircase(500, 8, 7, 4));
        assert_ne!(staircase(500, 8, 7, 3), staircase(500, 8, 8, 3));
    }

    #[test]
    fn keys_live_in_their_plateaus() {
        let steps = 8u32;
        for key in staircase(2000, steps, 42, 0) {
            let step = key >> 48;
            assert!(step < u64::from(steps));
            let width = 1u64 << (u64::from(steps) - 1 - step);
            assert!(
                key & ((1 << 48) - 1) < width,
                "key {key:#x} outside plateau"
            );
        }
    }

    #[test]
    fn last_plateau_concentrates_about_one_over_steps() {
        let steps = 8u32;
        let n = 40_000;
        let keys = staircase(n, steps, 1, 0);
        // The last plateau is a single key: its count is the most
        // duplicated key's count, so δ ≈ 1/steps.
        let top = keys
            .iter()
            .filter(|&&k| k == u64::from(steps - 1) << 48)
            .count();
        let frac = top as f64 / n as f64;
        let want = 1.0 / f64::from(steps);
        assert!(
            (frac - want).abs() < want * 0.25,
            "last-plateau mass {frac:.4}, expected ≈ {want:.4}"
        );
    }

    #[test]
    fn single_step_is_all_one_key() {
        assert!(staircase(100, 1, 9, 2).iter().all(|&k| k == 0));
    }
}
