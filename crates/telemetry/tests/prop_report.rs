//! Property tests: `RunReport` JSON serialization is lossless — an
//! arbitrary populated report survives serialize → parse → deserialize
//! bit-for-bit, and the canonical text is stable across round-trips.

use proptest::prelude::*;
use telemetry::{Decisions, Json, MemoryReport, Recorder, RunReport, WorldMeta};

/// Build a recorder snapshot whose contents are all derived from `seed`.
fn seeded_report(seed: u64, ranks: usize, phases: usize, spans: usize) -> RunReport {
    let node_of: Vec<usize> = (0..ranks).map(|r| (seed as usize + r) % 3).collect();
    let rec = Recorder::new(node_of, true);
    let mix = |i: u64| -> u64 {
        let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    };
    for ph in 0..phases {
        rec.set_phase(&format!("phase-{ph}"));
        for i in 0..(mix(ph as u64) % 5) {
            let src = (mix(i) % ranks as u64) as usize;
            let dst = (mix(i + 100) % ranks as u64) as usize;
            rec.on_send(src, dst, (mix(i + 200) % 10_000) as usize);
        }
    }
    for s in 0..spans {
        let rank = (mix(s as u64 + 300) % ranks as u64) as usize;
        let start = (mix(s as u64 + 400) % 1000) as f64 / 256.0;
        let id = rec.span_begin(rank, &format!("span-{}", s % 3), start);
        rec.span_end(id, start + (mix(s as u64 + 500) % 100) as f64 / 64.0);
    }
    rec.count("coll.alltoallv", mix(600) % 40);
    rec.observe("msg.bytes", mix(700) % 100_000);
    rec.gauge_max("mem.high_water", (mix(800) % 1_000_000) as f64);
    rec.event(0, "tau", "decision detail", 0.25);
    rec.add_compute(0, (mix(900) % 1000) as f64 / 997.0);
    rec.add_comm(ranks - 1, (mix(1000) % 1000) as f64 / 991.0);

    let loads: Vec<u64> = (0..ranks as u64).map(|r| mix(r + 1100) % 5000).collect();
    let mut report = RunReport::from_snapshot("prop", rec.snapshot(), loads);
    report.config = vec![
        ("workload".to_string(), Json::from("zipf:1.4")),
        ("n_rank".to_string(), Json::from(mix(1200) % 100_000)),
        (
            "scale".to_string(),
            Json::from(mix(1300) as f64 / u64::MAX as f64),
        ),
    ];
    report.world = WorldMeta {
        ranks,
        cores_per_node: 3,
        nodes: 3,
    };
    report.decisions = Decisions {
        tau_m_bytes: mix(1400) % (1 << 20),
        tau_o: mix(1500) % 4096,
        tau_s: mix(1600) % 4096,
        stable: mix(1700) % 2 == 0,
        node_merged: mix(1800) % 2 == 0,
        overlapped: mix(1900) % 2 == 0,
    };
    report.memory = MemoryReport {
        budget: (mix(2000) % 2 == 0).then(|| mix(2100) % (1 << 30)),
        max_high_water: mix(2200) % (1 << 30),
        per_rank_high_water: (0..ranks as u64)
            .map(|r| mix(r + 2300) % (1 << 30))
            .collect(),
    };
    report.makespan_v = (mix(2400) % 1_000_000) as f64 / 1e4;
    report.wall_s = (mix(2500) % 1_000_000) as f64 / 1e6;
    report
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn run_report_roundtrips_losslessly(
        seed in any::<u64>(),
        ranks in 1usize..6,
        phases in 0usize..4,
        spans in 0usize..8,
    ) {
        let report = seeded_report(seed, ranks, phases, spans);
        let text = report.to_json_string();
        let back = RunReport::from_json_str(&text).expect("valid JSON round-trips");
        prop_assert_eq!(&back, &report);
        // Canonical form: re-serializing the parsed report reproduces the
        // exact same bytes.
        prop_assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn parsed_json_value_equals_original(
        seed in any::<u64>(),
        ranks in 1usize..5,
    ) {
        let report = seeded_report(seed, ranks, 2, 4);
        let doc = report.to_json();
        let reparsed = Json::parse(&doc.to_string_pretty()).expect("pretty JSON parses");
        prop_assert_eq!(reparsed, doc);
    }
}
