//! Per-run recorder: the single sink every instrumented component writes
//! to. A `Recorder` is a *pure observer* — it never reads or advances
//! virtual clocks, so simulation results are identical with recording on
//! or off. When disabled, every operation is one relaxed atomic load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;
use crate::metrics::{HistogramSnapshot, Registry};
use crate::timeline::{EventRecord, SpanRecord};

/// Handle for an open span. Obtained from [`Recorder::span_begin`];
/// harmless to end when recording was disabled at begin time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

impl SpanId {
    const DISABLED: SpanId = SpanId(usize::MAX);
}

/// Per-phase communication totals (mirrors the shape of
/// `mpisim::PhaseTraffic` but pre-aggregated, with inter-node splits
/// computed from the recorder's rank→node map).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseComm {
    pub name: String,
    pub messages: u64,
    pub bytes: u64,
    pub internode_messages: u64,
    pub internode_bytes: u64,
}

impl PhaseComm {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.clone())),
            ("messages", Json::from(self.messages)),
            ("bytes", Json::from(self.bytes)),
            ("internode_messages", Json::from(self.internode_messages)),
            ("internode_bytes", Json::from(self.internode_bytes)),
        ])
    }

    pub fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            name: v.get("name")?.as_str()?.to_string(),
            messages: v.get("messages")?.as_u64()?,
            bytes: v.get("bytes")?.as_u64()?,
            internode_messages: v.get("internode_messages")?.as_u64()?,
            internode_bytes: v.get("internode_bytes")?.as_u64()?,
        })
    }
}

struct OpenSpan {
    rank: usize,
    name: String,
    start_v: f64,
}

#[derive(Default)]
struct Inner {
    current_phase: String,
    phase_order: Vec<String>,
    phases: Vec<PhaseComm>,
    spans: Vec<SpanRecord>,
    open: Vec<Option<OpenSpan>>,
    events: Vec<EventRecord>,
}

impl Inner {
    fn phase_mut(&mut self) -> &mut PhaseComm {
        let name = self.current_phase.clone();
        match self.phase_order.iter().position(|n| n == &name) {
            Some(i) => &mut self.phases[i],
            None => {
                self.phase_order.push(name.clone());
                self.phases.push(PhaseComm {
                    name,
                    ..PhaseComm::default()
                });
                self.phases.last_mut().expect("just pushed")
            }
        }
    }
}

pub struct Recorder {
    enabled: AtomicBool,
    node_of: Vec<usize>,
    registry: Registry,
    // Per-rank accumulated seconds, stored as f64 bits. Each rank only
    // writes its own slot, so a load+store pair per update is race-free.
    compute_v: Vec<AtomicU64>,
    comm_v: Vec<AtomicU64>,
    inner: Mutex<Inner>,
}

fn f64_slot_add(slot: &AtomicU64, dv: f64) {
    let cur = f64::from_bits(slot.load(Ordering::SeqCst));
    slot.store((cur + dv).to_bits(), Ordering::SeqCst);
}

impl Recorder {
    /// `node_of[rank]` gives the node hosting each rank (used to classify
    /// inter-node traffic); its length is the world size.
    pub fn new(node_of: Vec<usize>, enabled: bool) -> Self {
        let ranks = node_of.len();
        Self {
            enabled: AtomicBool::new(enabled),
            node_of,
            registry: Registry::default(),
            compute_v: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            comm_v: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            inner: Mutex::new(Inner::default()),
        }
    }

    pub fn disabled(ranks: usize) -> Self {
        Self::new(vec![0; ranks], false)
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    pub fn ranks(&self) -> usize {
        self.node_of.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Switch the phase new communication is attributed to.
    pub fn set_phase(&self, name: &str) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.lock();
        inner.current_phase = name.to_string();
        inner.phase_mut();
    }

    /// Record one message on the wire (called from the runtime send path).
    pub fn on_send(&self, src: usize, dst: usize, bytes: usize) {
        if !self.enabled() {
            return;
        }
        let internode = self.node_of.get(src) != self.node_of.get(dst);
        let mut inner = self.lock();
        let phase = inner.phase_mut();
        phase.messages += 1;
        phase.bytes += bytes as u64;
        if internode {
            phase.internode_messages += 1;
            phase.internode_bytes += bytes as u64;
        }
    }

    pub fn count(&self, name: &str, n: u64) {
        if !self.enabled() {
            return;
        }
        self.registry.counter(name).add(n);
    }

    pub fn gauge_max(&self, name: &str, v: f64) {
        if !self.enabled() {
            return;
        }
        self.registry.gauge(name).set_max(v);
    }

    pub fn observe(&self, name: &str, v: u64) {
        if !self.enabled() {
            return;
        }
        self.registry.histogram(name).record(v);
    }

    /// Record a point event at the caller-supplied virtual time.
    pub fn event(&self, rank: usize, name: &str, detail: &str, v_time: f64) {
        if !self.enabled() {
            return;
        }
        self.lock().events.push(EventRecord {
            rank,
            name: name.to_string(),
            detail: detail.to_string(),
            v_time,
        });
    }

    /// Open a span at the caller-supplied virtual time. Returns a sentinel
    /// id when disabled, which [`Recorder::span_end`] ignores.
    pub fn span_begin(&self, rank: usize, name: &str, v_now: f64) -> SpanId {
        if !self.enabled() {
            return SpanId::DISABLED;
        }
        let mut inner = self.lock();
        let slot = OpenSpan {
            rank,
            name: name.to_string(),
            start_v: v_now,
        };
        if let Some(i) = inner.open.iter().position(Option::is_none) {
            inner.open[i] = Some(slot);
            SpanId(i)
        } else {
            inner.open.push(Some(slot));
            SpanId(inner.open.len() - 1)
        }
    }

    pub fn span_end(&self, id: SpanId, v_now: f64) {
        if id == SpanId::DISABLED || !self.enabled() {
            return;
        }
        let mut inner = self.lock();
        if let Some(open) = inner.open.get_mut(id.0).and_then(Option::take) {
            inner.spans.push(SpanRecord {
                rank: open.rank,
                name: open.name,
                start_v: open.start_v,
                end_v: v_now,
            });
        }
    }

    /// Accumulate modeled/measured compute seconds on a rank's ledger.
    pub fn add_compute(&self, rank: usize, seconds: f64) {
        if !self.enabled() {
            return;
        }
        if let Some(slot) = self.compute_v.get(rank) {
            f64_slot_add(slot, seconds);
        }
    }

    /// Accumulate communication seconds (injection, transit waits, probe
    /// overheads) on a rank's ledger.
    pub fn add_comm(&self, rank: usize, seconds: f64) {
        if !self.enabled() {
            return;
        }
        if let Some(slot) = self.comm_v.get(rank) {
            f64_slot_add(slot, seconds);
        }
    }

    /// Freeze everything recorded so far. Open spans are not included.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            node_of: self.node_of.clone(),
            phases: inner.phases.clone(),
            spans: inner.spans.clone(),
            events: inner.events.clone(),
            counters: self.registry.counter_values(),
            gauges: self.registry.gauge_values(),
            histograms: self.registry.histogram_values(),
            compute_v: self
                .compute_v
                .iter()
                .map(|s| f64::from_bits(s.load(Ordering::SeqCst)))
                .collect(),
            comm_v: self
                .comm_v
                .iter()
                .map(|s| f64::from_bits(s.load(Ordering::SeqCst)))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled())
            .field("ranks", &self.ranks())
            .finish()
    }
}

/// Frozen recorder state, ready to embed in a `RunReport`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    pub node_of: Vec<usize>,
    pub phases: Vec<PhaseComm>,
    pub spans: Vec<SpanRecord>,
    pub events: Vec<EventRecord>,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<HistogramSnapshot>,
    pub compute_v: Vec<f64>,
    pub comm_v: Vec<f64>,
}

impl Snapshot {
    pub fn total_messages(&self) -> u64 {
        self.phases.iter().map(|p| p.messages).sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.bytes).sum()
    }

    pub fn total_internode_messages(&self) -> u64 {
        self.phases.iter().map(|p| p.internode_messages).sum()
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("node_of", Json::from(self.node_of.clone())),
            (
                "phases",
                Json::Arr(self.phases.iter().map(PhaseComm::to_json).collect()),
            ),
            (
                "spans",
                Json::Arr(self.spans.iter().map(SpanRecord::to_json).collect()),
            ),
            (
                "events",
                Json::Arr(self.events.iter().map(EventRecord::to_json).collect()),
            ),
            (
                "counters",
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|(k, v)| {
                            Json::obj(vec![
                                ("name", Json::from(k.clone())),
                                ("value", Json::from(*v)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Arr(
                    self.gauges
                        .iter()
                        .map(|(k, v)| {
                            Json::obj(vec![
                                ("name", Json::from(k.clone())),
                                ("value", Json::from(*v)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Arr(
                    self.histograms
                        .iter()
                        .map(HistogramSnapshot::to_json)
                        .collect(),
                ),
            ),
            ("compute_v", Json::from(self.compute_v.clone())),
            ("comm_v", Json::from(self.comm_v.clone())),
        ])
    }

    pub fn from_json(v: &Json) -> Option<Self> {
        let usizes = |j: &Json| -> Option<Vec<usize>> {
            j.as_arr()?
                .iter()
                .map(|x| x.as_u64().map(|u| u as usize))
                .collect()
        };
        let f64s =
            |j: &Json| -> Option<Vec<f64>> { j.as_arr()?.iter().map(Json::as_f64).collect() };
        Some(Self {
            node_of: usizes(v.get("node_of")?)?,
            phases: v
                .get("phases")?
                .as_arr()?
                .iter()
                .map(PhaseComm::from_json)
                .collect::<Option<Vec<_>>>()?,
            spans: v
                .get("spans")?
                .as_arr()?
                .iter()
                .map(SpanRecord::from_json)
                .collect::<Option<Vec<_>>>()?,
            events: v
                .get("events")?
                .as_arr()?
                .iter()
                .map(EventRecord::from_json)
                .collect::<Option<Vec<_>>>()?,
            counters: v
                .get("counters")?
                .as_arr()?
                .iter()
                .map(|c| {
                    Some((
                        c.get("name")?.as_str()?.to_string(),
                        c.get("value")?.as_u64()?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?,
            gauges: v
                .get("gauges")?
                .as_arr()?
                .iter()
                .map(|g| {
                    Some((
                        g.get("name")?.as_str()?.to_string(),
                        g.get("value")?.as_f64()?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?,
            histograms: v
                .get("histograms")?
                .as_arr()?
                .iter()
                .map(HistogramSnapshot::from_json)
                .collect::<Option<Vec<_>>>()?,
            compute_v: f64s(v.get("compute_v")?)?,
            comm_v: f64s(v.get("comm_v")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled(4);
        r.set_phase("pivot");
        r.on_send(0, 3, 100);
        r.count("c", 1);
        r.gauge_max("g", 5.0);
        r.observe("h", 9);
        r.event(0, "e", "", 1.0);
        let id = r.span_begin(0, "s", 0.0);
        r.span_end(id, 1.0);
        r.add_compute(0, 1.0);
        r.add_comm(0, 1.0);
        let snap = r.snapshot();
        assert!(snap.phases.is_empty());
        assert!(snap.spans.is_empty() && snap.events.is_empty());
        assert!(snap.counters.is_empty() && snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert_eq!(snap.compute_v, vec![0.0; 4]);
    }

    #[test]
    fn phase_comm_splits_internode_by_node_map() {
        // Custom (non-block) map: ranks 0,2 on node 0; ranks 1,3 on node 1.
        let r = Recorder::new(vec![0, 1, 0, 1], true);
        r.set_phase("exchange");
        r.on_send(0, 2, 10); // intra-node
        r.on_send(0, 1, 20); // inter-node
        r.on_send(3, 1, 30); // intra-node
        r.on_send(2, 3, 40); // inter-node
        let snap = r.snapshot();
        assert_eq!(snap.phases.len(), 1);
        let p = &snap.phases[0];
        assert_eq!((p.messages, p.bytes), (4, 100));
        assert_eq!((p.internode_messages, p.internode_bytes), (2, 60));
    }

    #[test]
    fn spans_and_ledgers_accumulate() {
        let r = Recorder::new(vec![0, 0], true);
        let a = r.span_begin(0, "pivot", 1.0);
        let b = r.span_begin(1, "pivot", 1.5);
        r.span_end(a, 2.0);
        r.span_end(b, 4.0);
        // Slot reuse after both closed.
        let c = r.span_begin(0, "exchange", 4.0);
        r.span_end(c, 6.0);
        r.add_compute(0, 0.5);
        r.add_compute(0, 0.25);
        r.add_comm(1, 1.5);
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.compute_v, vec![0.75, 0.0]);
        assert_eq!(snap.comm_v, vec![0.0, 1.5]);
    }

    #[test]
    fn snapshot_roundtrips_json() {
        let r = Recorder::new(vec![0, 0, 1], true);
        r.set_phase("pivot");
        r.on_send(0, 2, 64);
        r.count("coll.barrier", 3);
        r.gauge_max("mem.hw", 1024.0);
        r.observe("msg.bytes", 64);
        r.event(2, "oom", "requested 1 MiB", 7.5);
        let id = r.span_begin(1, "pivot", 0.0);
        r.span_end(id, 2.5);
        r.add_compute(1, 0.125);
        let snap = r.snapshot();
        let json = snap.to_json();
        let parsed = Snapshot::from_json(&Json::parse(&json.to_string_pretty()).unwrap()).unwrap();
        assert_eq!(parsed, snap);
    }
}
