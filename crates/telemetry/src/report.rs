//! `RunReport`: one sort run serialized to canonical JSON — configuration,
//! τ decisions, per-phase virtual times, communication totals, memory
//! high-water marks, loads, and RDFA — plus the full recorder snapshot.
//!
//! The schema is versioned; `from_json` refuses documents with a newer
//! major schema than it understands.

use crate::json::Json;
use crate::recorder::Snapshot;
use crate::timeline::{phases_from_spans, PhaseTimes};

pub const SCHEMA_VERSION: u64 = 1;

/// World shape the run executed on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorldMeta {
    pub ranks: usize,
    pub cores_per_node: usize,
    pub nodes: usize,
}

impl WorldMeta {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("ranks", Json::from(self.ranks)),
            ("cores_per_node", Json::from(self.cores_per_node)),
            ("nodes", Json::from(self.nodes)),
        ])
    }

    fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            ranks: v.get("ranks")?.as_u64()? as usize,
            cores_per_node: v.get("cores_per_node")?.as_u64()? as usize,
            nodes: v.get("nodes")?.as_u64()? as usize,
        })
    }
}

/// The algorithm's dynamic skew-handling decisions for this run: the τ
/// thresholds in force and which adaptations actually triggered.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Decisions {
    pub tau_m_bytes: u64,
    pub tau_o: u64,
    pub tau_s: u64,
    pub stable: bool,
    pub node_merged: bool,
    pub overlapped: bool,
}

impl Decisions {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tau_m_bytes", Json::from(self.tau_m_bytes)),
            ("tau_o", Json::from(self.tau_o)),
            ("tau_s", Json::from(self.tau_s)),
            ("stable", Json::from(self.stable)),
            ("node_merged", Json::from(self.node_merged)),
            ("overlapped", Json::from(self.overlapped)),
        ])
    }

    fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            tau_m_bytes: v.get("tau_m_bytes")?.as_u64()?,
            tau_o: v.get("tau_o")?.as_u64()?,
            tau_s: v.get("tau_s")?.as_u64()?,
            stable: v.get("stable")?.as_bool()?,
            node_merged: v.get("node_merged")?.as_bool()?,
            overlapped: v.get("overlapped")?.as_bool()?,
        })
    }
}

/// Memory accounting for the run (bytes; budget `None` = unlimited).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MemoryReport {
    pub budget: Option<u64>,
    pub max_high_water: u64,
    pub per_rank_high_water: Vec<u64>,
}

impl MemoryReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("budget", Json::from(self.budget)),
            ("max_high_water", Json::from(self.max_high_water)),
            (
                "per_rank_high_water",
                Json::from(self.per_rank_high_water.clone()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Option<Self> {
        let budget = match v.get("budget")? {
            Json::Null => None,
            other => Some(other.as_u64()?),
        };
        Some(Self {
            budget,
            max_high_water: v.get("max_high_water")?.as_u64()?,
            per_rank_high_water: v
                .get("per_rank_high_water")?
                .as_arr()?
                .iter()
                .map(Json::as_u64)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// Everything observed about one sort run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    pub experiment: String,
    /// Free-form configuration echo (key order is preserved).
    pub config: Vec<(String, Json)>,
    pub world: WorldMeta,
    pub decisions: Decisions,
    /// Per-phase virtual times, derived from the recorder's spans.
    pub phases: Vec<PhaseTimes>,
    pub memory: MemoryReport,
    /// Records per rank after the exchange (`mᵢ` in the paper).
    pub loads: Vec<u64>,
    pub rdfa: f64,
    /// Virtual-time makespan (max final clock over ranks), seconds.
    pub makespan_v: f64,
    /// Host wall-clock spent simulating, seconds.
    pub wall_s: f64,
    /// Full recorder state: per-phase comm, spans, events, metrics.
    pub telemetry: Snapshot,
}

impl RunReport {
    /// Assemble the derived fields (`phases`, `rdfa`) from a snapshot.
    pub fn from_snapshot(experiment: &str, telemetry: Snapshot, loads: Vec<u64>) -> Self {
        let ranks = telemetry.node_of.len();
        let phases = phases_from_spans(&telemetry.spans, ranks);
        let loads_usize: Vec<usize> = loads.iter().map(|&l| l as usize).collect();
        Self {
            experiment: experiment.to_string(),
            phases,
            rdfa: crate::rdfa(&loads_usize),
            loads,
            telemetry,
            ..Self::default()
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::from(SCHEMA_VERSION)),
            ("kind", Json::from("run")),
            ("experiment", Json::from(self.experiment.clone())),
            (
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            ),
            ("world", self.world.to_json()),
            ("decisions", self.decisions.to_json()),
            (
                "phases",
                Json::Arr(self.phases.iter().map(PhaseTimes::to_json).collect()),
            ),
            (
                "comm",
                Json::obj(vec![
                    ("messages", Json::from(self.telemetry.total_messages())),
                    ("bytes", Json::from(self.telemetry.total_bytes())),
                    (
                        "internode_messages",
                        Json::from(self.telemetry.total_internode_messages()),
                    ),
                ]),
            ),
            ("memory", self.memory.to_json()),
            ("loads", Json::from(self.loads.clone())),
            ("rdfa", Json::from(self.rdfa)),
            ("makespan_v", Json::from(self.makespan_v)),
            ("wall_s", Json::from(self.wall_s)),
            ("telemetry", self.telemetry.to_json()),
        ])
    }

    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    pub fn from_json(v: &Json) -> Result<Self, String> {
        let version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version > SCHEMA_VERSION {
            return Err(format!(
                "report schema {version} is newer than supported {SCHEMA_VERSION}"
            ));
        }
        if v.get("kind").and_then(Json::as_str) != Some("run") {
            return Err("not a run report (kind != \"run\")".to_string());
        }
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k:?}"));
        let report = Self {
            experiment: field("experiment")?
                .as_str()
                .ok_or("experiment must be a string")?
                .to_string(),
            config: field("config")?
                .as_obj()
                .ok_or("config must be an object")?
                .to_vec(),
            world: WorldMeta::from_json(field("world")?).ok_or("bad world")?,
            decisions: Decisions::from_json(field("decisions")?).ok_or("bad decisions")?,
            phases: field("phases")?
                .as_arr()
                .ok_or("phases must be an array")?
                .iter()
                .map(PhaseTimes::from_json)
                .collect::<Option<Vec<_>>>()
                .ok_or("bad phase entry")?,
            memory: MemoryReport::from_json(field("memory")?).ok_or("bad memory")?,
            loads: field("loads")?
                .as_arr()
                .ok_or("loads must be an array")?
                .iter()
                .map(Json::as_u64)
                .collect::<Option<Vec<_>>>()
                .ok_or("bad load entry")?,
            rdfa: field("rdfa")?.as_f64().ok_or("rdfa must be a number")?,
            makespan_v: field("makespan_v")?
                .as_f64()
                .ok_or("makespan_v must be a number")?,
            wall_s: field("wall_s")?.as_f64().ok_or("wall_s must be a number")?,
            telemetry: Snapshot::from_json(field("telemetry")?).ok_or("bad telemetry")?,
        };
        Ok(report)
    }

    pub fn from_json_str(s: &str) -> Result<Self, String> {
        let v = Json::parse(s).map_err(|e| e.to_string())?;
        Self::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_report() -> RunReport {
        let rec = Recorder::new(vec![0, 0, 1, 1], true);
        rec.set_phase("pivot");
        rec.on_send(0, 1, 10);
        rec.on_send(0, 2, 30);
        rec.set_phase("exchange");
        rec.on_send(3, 0, 100);
        rec.count("coll.alltoallv", 1);
        let s0 = rec.span_begin(0, "pivot", 0.0);
        rec.span_end(s0, 1.5);
        let s1 = rec.span_begin(0, "exchange", 1.5);
        rec.span_end(s1, 2.0);
        rec.event(3, "tau", "node-merge off", 0.5);
        let mut report = RunReport::from_snapshot("unit", rec.snapshot(), vec![10, 20, 30, 40]);
        report.config = vec![
            ("workload".to_string(), Json::from("zipf:1.1")),
            ("records".to_string(), Json::from(1000u64)),
        ];
        report.world = WorldMeta {
            ranks: 4,
            cores_per_node: 2,
            nodes: 2,
        };
        report.decisions = Decisions {
            tau_m_bytes: 160 << 20,
            tau_o: 4096,
            tau_s: 4000,
            stable: false,
            node_merged: false,
            overlapped: true,
        };
        report.memory = MemoryReport {
            budget: Some(1 << 30),
            max_high_water: 4096,
            per_rank_high_water: vec![4096, 1024, 512, 2048],
        };
        report.makespan_v = 2.0;
        report.wall_s = 0.01;
        report
    }

    #[test]
    fn report_roundtrips_losslessly() {
        let report = sample_report();
        let text = report.to_json_string();
        let parsed = RunReport::from_json_str(&text).expect("parse");
        assert_eq!(parsed, report);
        // Canonical: re-serialization is byte-identical.
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn derived_fields_match_inputs() {
        let report = sample_report();
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].name, "pivot");
        assert_eq!(report.phases[0].per_rank_v[0], 1.5);
        assert!((report.rdfa - 1.6).abs() < 1e-12);
        assert_eq!(report.telemetry.total_messages(), 3);
        assert_eq!(report.telemetry.total_bytes(), 140);
        // 0→2 and 3→0 cross nodes under the block map {0,0,1,1}.
        assert_eq!(report.telemetry.total_internode_messages(), 2);
    }

    #[test]
    fn rejects_future_schema_and_wrong_kind() {
        let mut json = sample_report().to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs[0].1 = Json::from(SCHEMA_VERSION + 1);
        }
        assert!(RunReport::from_json(&json).is_err());
        let not_run = Json::obj(vec![
            ("schema_version", Json::from(SCHEMA_VERSION)),
            ("kind", Json::from("experiment")),
        ]);
        assert!(RunReport::from_json(&not_run).is_err());
    }
}
