//! Canonical JSON values with a writer and a parser.
//!
//! The workspace has no serde_json dependency, so run reports are
//! serialized through this module. The dialect is standard JSON plus the
//! bare tokens `NaN`, `Infinity`, and `-Infinity` (accepted by Python's
//! `json` module), so every `f64` round-trips bit-exactly: finite floats
//! are written with Rust's shortest-round-trip `{:?}` formatting, which
//! always includes a `.` or an exponent and therefore parses back as a
//! float rather than an integer.
//!
//! Object keys keep insertion order — reports are written once with a
//! fixed field order, so output is canonical (byte-identical for equal
//! values).

use std::fmt;

#[derive(Debug, Clone)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        use Json::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (U64(a), U64(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            // The parser types non-negative integers as U64, so a
            // round-tripped I64(5) comes back as U64(5): compare by value.
            (U64(a), I64(b)) | (I64(b), U64(a)) => *b >= 0 && *b as u64 == *a,
            // Bit equality so NaN round-trips compare equal and -0.0 != 0.0.
            (F64(a), F64(b)) => a.to_bits() == b.to_bits(),
            (Str(a), Str(b)) => a == b,
            (Arr(a), Arr(b)) => a == b,
            (Obj(a), Obj(b)) => a == b,
            _ => false,
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::U64(v as u64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Json::Null, Into::into)
    }
}

impl Json {
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Numeric value as f64 (integers convert; use [`Json::as_u64`] first
    /// when exactness matters).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact canonical encoding.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Two-space-indented encoding (same token stream as compact).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out.push('\n');
        out
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_value(out: &mut String, v: &Json, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::U64(n) => {
            out.push_str(&n.to_string());
        }
        Json::I64(n) => {
            out.push_str(&n.to_string());
        }
        Json::F64(f) => write_f64(out, *f),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => write_seq(out, items.len(), indent, depth, '[', ']', |out, i, d| {
            write_value(out, &items[i], indent, d);
        }),
        Json::Obj(pairs) => write_seq(out, pairs.len(), indent, depth, '{', '}', |out, i, d| {
            write_string(out, &pairs[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &pairs[i].1, indent, d);
        }),
    }
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f == f64::INFINITY {
        out.push_str("Infinity");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // `{:?}` is shortest-round-trip and always includes `.` or an
        // exponent, so the parser types it back as F64.
        out.push_str(&format!("{f:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'N') if self.eat("NaN") => Ok(Json::F64(f64::NAN)),
            Some(b'I') if self.eat("Infinity") => Ok(Json::F64(f64::INFINITY)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.pos += 1; // consume [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.pos += 1; // consume {
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // consume opening quote
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            s.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (cursor on the `u`), handling
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hex4 = |p: &mut Self| -> Result<u32, ParseError> {
            p.pos += 1; // consume 'u'
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..end])
                .map_err(|_| p.err("invalid \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| p.err("invalid \\u escape"))?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            if !(self.eat("\\")) || self.peek() != Some(b'u') {
                return Err(self.err("unpaired surrogate in \\u escape"));
            }
            let lo = hex4(self)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate in \\u escape"));
            }
            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u codepoint"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.eat("Infinity") {
                return Ok(Json::F64(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number chars");
        if is_float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| self.err("invalid float literal"))
        } else if text.starts_with('-') {
            // Negative integer: I64, overflowing to F64.
            match text.parse::<i64>() {
                Ok(v) => Ok(Json::I64(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::F64)
                    .map_err(|_| self.err("invalid integer literal")),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(Json::U64(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::F64)
                    .map_err(|_| self.err("invalid integer literal")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let compact = v.to_string_compact();
        assert_eq!(&Json::parse(&compact).unwrap(), v, "compact: {compact}");
        let pretty = v.to_string_pretty();
        assert_eq!(&Json::parse(&pretty).unwrap(), v, "pretty: {pretty}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::U64(u64::MAX));
        roundtrip(&Json::I64(i64::MIN));
        roundtrip(&Json::F64(0.1));
        roundtrip(&Json::F64(-0.0));
        roundtrip(&Json::F64(1.0));
        roundtrip(&Json::F64(1e300));
        roundtrip(&Json::F64(5e-324)); // smallest subnormal
        roundtrip(&Json::F64(f64::NAN));
        roundtrip(&Json::F64(f64::INFINITY));
        roundtrip(&Json::F64(f64::NEG_INFINITY));
        roundtrip(&Json::Str(String::new()));
        roundtrip(&Json::Str("hé \"quoted\"\\\n\t\u{1}\u{1F600}".to_string()));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&Json::Arr(vec![]));
        roundtrip(&Json::Obj(vec![]));
        roundtrip(&Json::obj(vec![
            ("a", Json::from(vec![1u64, 2, 3])),
            ("b", Json::obj(vec![("nested", Json::Null)])),
            ("c", Json::Arr(vec![Json::Bool(false), Json::F64(2.5)])),
        ]));
    }

    #[test]
    fn float_stays_float() {
        // 1.0 must not collapse to the integer 1 across a round-trip.
        let v = Json::parse(&Json::F64(1.0).to_string_compact()).unwrap();
        assert!(matches!(v, Json::F64(f) if f == 1.0));
    }

    #[test]
    fn integer_cross_type_equality() {
        assert_eq!(Json::I64(5), Json::U64(5));
        assert_ne!(Json::I64(-5), Json::U64(5));
        assert_ne!(Json::U64(1), Json::F64(1.0));
    }

    #[test]
    fn parses_standard_json() {
        let doc = r#" {"k": [1, -2, 3.5, true, null, "sA😀"], "e": {}} "#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[5].as_str().unwrap(),
            "sA\u{1F600}"
        );
        assert_eq!(v.get("e").unwrap(), &Json::Obj(vec![]));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn canonical_output_is_stable() {
        let v = Json::obj(vec![("x", Json::U64(1)), ("y", Json::F64(0.5))]);
        assert_eq!(v.to_string_compact(), r#"{"x":1,"y":0.5}"#);
    }
}
