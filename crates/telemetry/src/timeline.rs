//! Per-rank timelines: named spans (virtual-time intervals) and point
//! events. Spans are keyed by phase name so a run's driver phases
//! (pivot-select, exchange, node-merge, local-order, validate) appear as
//! one interval per rank per entry.

use crate::json::Json;

/// A closed virtual-time interval on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub rank: usize,
    pub name: String,
    pub start_v: f64,
    pub end_v: f64,
}

impl SpanRecord {
    pub fn duration_v(&self) -> f64 {
        self.end_v - self.start_v
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rank", Json::from(self.rank)),
            ("name", Json::from(self.name.clone())),
            ("start_v", Json::from(self.start_v)),
            ("end_v", Json::from(self.end_v)),
        ])
    }

    pub fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            rank: v.get("rank")?.as_u64()? as usize,
            name: v.get("name")?.as_str()?.to_string(),
            start_v: v.get("start_v")?.as_f64()?,
            end_v: v.get("end_v")?.as_f64()?,
        })
    }
}

/// A point event on one rank (OOM, τ decision, retry, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    pub rank: usize,
    pub name: String,
    pub detail: String,
    pub v_time: f64,
}

impl EventRecord {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rank", Json::from(self.rank)),
            ("name", Json::from(self.name.clone())),
            ("detail", Json::from(self.detail.clone())),
            ("v_time", Json::from(self.v_time)),
        ])
    }

    pub fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            rank: v.get("rank")?.as_u64()? as usize,
            name: v.get("name")?.as_str()?.to_string(),
            detail: v.get("detail")?.as_str()?.to_string(),
            v_time: v.get("v_time")?.as_f64()?,
        })
    }
}

/// Aggregate per-phase virtual times derived from spans: for each span
/// name (in first-appearance order), the per-rank total duration.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTimes {
    pub name: String,
    pub per_rank_v: Vec<f64>,
}

impl PhaseTimes {
    pub fn v_max(&self) -> f64 {
        self.per_rank_v.iter().copied().fold(0.0, f64::max)
    }

    pub fn v_sum(&self) -> f64 {
        self.per_rank_v.iter().sum()
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.clone())),
            ("v_max", Json::from(self.v_max())),
            ("v_sum", Json::from(self.v_sum())),
            ("per_rank_v", Json::from(self.per_rank_v.clone())),
        ])
    }

    pub fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            name: v.get("name")?.as_str()?.to_string(),
            per_rank_v: v
                .get("per_rank_v")?
                .as_arr()?
                .iter()
                .map(Json::as_f64)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// Fold spans into per-phase per-rank totals. `ranks` sizes the vectors;
/// phase order is first appearance in `spans`.
pub fn phases_from_spans(spans: &[SpanRecord], ranks: usize) -> Vec<PhaseTimes> {
    let mut order: Vec<String> = Vec::new();
    let mut phases: Vec<PhaseTimes> = Vec::new();
    for s in spans {
        let idx = match order.iter().position(|n| n == &s.name) {
            Some(i) => i,
            None => {
                order.push(s.name.clone());
                phases.push(PhaseTimes {
                    name: s.name.clone(),
                    per_rank_v: vec![0.0; ranks],
                });
                order.len() - 1
            }
        };
        if s.rank < ranks {
            phases[idx].per_rank_v[s.rank] += s.duration_v();
        }
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(rank: usize, name: &str, a: f64, b: f64) -> SpanRecord {
        SpanRecord {
            rank,
            name: name.to_string(),
            start_v: a,
            end_v: b,
        }
    }

    #[test]
    fn folds_spans_by_phase_and_rank() {
        let spans = vec![
            span(0, "pivot", 0.0, 1.0),
            span(1, "pivot", 0.0, 2.0),
            span(0, "exchange", 1.0, 4.0),
            span(0, "pivot", 5.0, 5.5), // second interval accumulates
        ];
        let phases = phases_from_spans(&spans, 2);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "pivot");
        assert_eq!(phases[0].per_rank_v, vec![1.5, 2.0]);
        assert_eq!(phases[0].v_max(), 2.0);
        assert_eq!(phases[1].name, "exchange");
        assert_eq!(phases[1].per_rank_v, vec![3.0, 0.0]);
    }

    #[test]
    fn records_roundtrip_json() {
        let s = span(3, "local-order", 1.25, 2.5);
        assert_eq!(SpanRecord::from_json(&s.to_json()).unwrap(), s);
        let e = EventRecord {
            rank: 1,
            name: "oom".to_string(),
            detail: "requested 4096".to_string(),
            v_time: 0.125,
        };
        assert_eq!(EventRecord::from_json(&e.to_json()).unwrap(), e);
        let p = PhaseTimes {
            name: "x".to_string(),
            per_rank_v: vec![0.5, 0.25],
        };
        assert_eq!(PhaseTimes::from_json(&p.to_json()).unwrap(), p);
    }
}
