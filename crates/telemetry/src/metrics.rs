//! Metric primitives: monotonic counters, max-tracking gauges, and
//! histograms with fixed log₂ buckets. All updates are lock-free atomics;
//! the registry mutex is touched only on first registration of a name.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::SeqCst);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Gauge that keeps the maximum value ever set (high-water semantics,
/// stored as f64 bits; values must be non-negative finite).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set_max(&self, v: f64) {
        debug_assert!(
            v >= 0.0 && v.is_finite(),
            "gauge values are non-negative finite"
        );
        // Non-negative IEEE-754 floats order like their bit patterns.
        self.0.fetch_max(v.to_bits(), Ordering::SeqCst);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::SeqCst))
    }
}

/// Number of log₂ buckets: bucket 0 holds value 0, bucket `i` (1..=64)
/// holds values with `floor(log2(v)) == i - 1`, i.e. `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Histogram over `u64` values with fixed log₂ buckets.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket (0 for bucket 0, else `2^(i-1)`).
pub fn bucket_low(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::SeqCst);
        self.count.fetch_add(1, Ordering::SeqCst);
        self.sum.fetch_add(v, Ordering::SeqCst);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::SeqCst)
    }

    /// Sparse snapshot: `(bucket_index, count)` for non-empty buckets.
    pub fn nonempty_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::SeqCst);
                (c > 0).then_some((i, c))
            })
            .collect()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// Name → metric registry. Hot paths hold an `Arc` handle; lookups by name
/// lock only a registration map.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn intern<T: Default>(map: &Mutex<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(m) = map.get(name) {
        return Arc::clone(m);
    }
    let m = Arc::new(T::default());
    map.insert(name.to_string(), Arc::clone(&m));
    m
}

impl Registry {
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, c)| (k.clone(), c.get())).collect()
    }

    pub fn gauge_values(&self) -> Vec<(String, f64)> {
        let map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, g)| (k.clone(), g.get())).collect()
    }

    pub fn histogram_values(&self) -> Vec<HistogramSnapshot> {
        let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(k, h)| HistogramSnapshot {
                name: k.clone(),
                count: h.count(),
                sum: h.sum(),
                buckets: h.nonempty_buckets(),
            })
            .collect()
    }
}

/// Frozen histogram state (sparse buckets).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.clone())),
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            (
                "buckets",
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(i, c)| {
                            Json::obj(vec![
                                ("bucket", Json::from(i)),
                                ("low", Json::from(bucket_low(i))),
                                ("count", Json::from(c)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            name: v.get("name")?.as_str()?.to_string(),
            count: v.get("count")?.as_u64()?,
            sum: v.get("sum")?.as_u64()?,
            buckets: v
                .get("buckets")?
                .as_arr()?
                .iter()
                .map(|b| {
                    Some((
                        b.get("bucket")?.as_u64()? as usize,
                        b.get("count")?.as_u64()?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_low_is_inclusive_lower_edge() {
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_low(i)), i);
            if bucket_low(i) > 1 {
                assert_eq!(bucket_index(bucket_low(i) - 1), i - 1);
            }
        }
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 7, 8, 1 << 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 17 + (1 << 40));
        let sparse = h.nonempty_buckets();
        assert_eq!(sparse, vec![(0, 1), (1, 2), (3, 1), (4, 1), (41, 1)]);
    }

    #[test]
    fn registry_interns_by_name() {
        let r = Registry::default();
        r.counter("x").add(3);
        r.counter("x").add(4);
        r.counter("a").add(1);
        assert_eq!(r.counter_values(), vec![("a".into(), 1), ("x".into(), 7)]);
        r.gauge("g").set_max(2.0);
        r.gauge("g").set_max(1.0);
        assert_eq!(r.gauge_values(), vec![("g".into(), 2.0)]);
    }
}
