//! Low-overhead run telemetry for the SDS-Sort workspace.
//!
//! Three layers:
//!
//! * [`metrics`] — counters, max-gauges, and log₂-bucket histograms, all
//!   lock-free atomics behind a name registry.
//! * [`recorder`] — the per-run [`Recorder`] sink: phase-attributed
//!   communication totals (with inter-node splits from a rank→node map),
//!   per-rank span timelines and events, and compute/comm time ledgers.
//!   Disabled recorders cost one relaxed atomic load per operation, and a
//!   recorder never reads or advances virtual clocks, so simulation
//!   results are bit-identical with telemetry on or off.
//! * [`report`] — [`RunReport`], the canonical-JSON serialization of one
//!   sort run (config, τ decisions, per-phase virtual time, comm totals,
//!   memory high-water marks, loads, RDFA).
//!
//! JSON support is hand-rolled in [`json`] (the workspace builds without
//! serde_json); the dialect is standard JSON plus bare `NaN`/`Infinity`
//! tokens so floats round-trip bit-exactly.

#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod timeline;

pub use json::{Json, ParseError};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use recorder::{PhaseComm, Recorder, Snapshot, SpanId};
pub use report::{Decisions, MemoryReport, RunReport, WorldMeta, SCHEMA_VERSION};
pub use timeline::{phases_from_spans, EventRecord, PhaseTimes, SpanRecord};

/// RDFA (Relative Deviation From Average): `max(loads) / avg(loads)`, the
/// paper's load-balance metric (Tables 3/4). `1.0` for empty or all-zero
/// distributions (trivially balanced).
pub fn rdfa(loads: &[usize]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let total: usize = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let avg = total as f64 / loads.len() as f64;
    let max = *loads.iter().max().expect("non-empty") as f64;
    max / avg
}

/// RDFA for a failed (OOM) run: ∞, per the paper's convention.
pub fn rdfa_failed() -> f64 {
    f64::INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdfa_matches_paper_convention() {
        assert_eq!(rdfa(&[]), 1.0);
        assert_eq!(rdfa(&[0, 0]), 1.0);
        assert_eq!(rdfa(&[10, 10, 10, 10]), 1.0);
        assert_eq!(rdfa(&[40, 0, 0, 0]), 4.0);
        assert!(rdfa_failed().is_infinite());
    }
}
