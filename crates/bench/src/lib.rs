//! # bench — experiment harness for the SDS-Sort reproduction
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus
//! Criterion micro-benchmarks (`benches/`). This library holds the shared
//! plumbing: scaled experiment sizes, table printing, world construction,
//! and sorter dispatch.
//!
//! Every harness prints (a) the paper's rows/series at our reduced scale
//! and (b) a `shape:` verdict line summarizing whether the qualitative
//! result (who wins, where the crossover falls, who crashes) reproduced.
//!
//! Scale control: set `BENCH_SCALE=full` for larger sweeps (default
//! `small` finishes in seconds per harness).

use mpisim::{Comm, NetModel, World};
use sdssort::{sds_sort, ComputeCharge, ComputeModel, SdsConfig, SortError, SortOutput, Sortable};
use std::time::Instant;

pub mod emit;
pub mod experiments;
pub mod table;

pub use emit::{metrics_out_path, Emitter};
pub use table::{fmt_bytes, fmt_time, Table};

/// Experiment scale, from the `BENCH_SCALE` env var.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-harness sizes (default; used by `cargo test`).
    Small,
    /// Larger sweeps for report-quality numbers.
    Full,
}

/// Read the scale from the environment.
pub fn scale() -> Scale {
    match std::env::var("BENCH_SCALE").as_deref() {
        Ok("full") | Ok("FULL") => Scale::Full,
        _ => Scale::Small,
    }
}

/// Pick `small` or `full` by scale.
pub fn by_scale<T>(small: T, full: T) -> T {
    match scale() {
        Scale::Small => small,
        Scale::Full => full,
    }
}

/// Calibrate the compute model once per harness.
pub fn model() -> ComputeModel {
    ComputeModel::calibrate()
}

/// A modelled world: Edison network, 24-core nodes, zero wall-clock
/// compute charging (compute enters through `ComputeCharge::Modeled`).
pub fn modeled_world(p: usize) -> World {
    World::new(p)
        .cores_per_node(24)
        .net(NetModel::edison())
        .compute_scale(0.0)
}

/// Which sorter a harness runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sorter {
    /// SDS-Sort, fast (unstable) variant.
    Sds,
    /// SDS-Sort, stable variant.
    SdsStable,
    /// HykSort baseline.
    HykSort,
    /// Multi-level AMS-sort peer (`crates/algos`).
    Ams,
    /// Histogram Sort with Sampling peer (`crates/algos`).
    Hss,
}

impl Sorter {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Sorter::Sds => "SDS-Sort",
            Sorter::SdsStable => "SDS-Sort/stable",
            Sorter::HykSort => "HykSort",
            Sorter::Ams => "AMS-sort",
            Sorter::Hss => "HSS",
        }
    }

    /// Stable wire code for the sockets bench entry (process boundary).
    pub fn code(self) -> u8 {
        match self {
            Sorter::Sds => 0,
            Sorter::SdsStable => 1,
            Sorter::HykSort => 2,
            Sorter::Ams => 3,
            Sorter::Hss => 4,
        }
    }

    /// Inverse of [`Sorter::code`].
    pub fn from_code(code: u8) -> Option<Sorter> {
        match code {
            0 => Some(Sorter::Sds),
            1 => Some(Sorter::SdsStable),
            2 => Some(Sorter::HykSort),
            3 => Some(Sorter::Ams),
            4 => Some(Sorter::Hss),
            _ => None,
        }
    }

    /// Whether this sorter is generic over [`comm::Communicator`] and so
    /// runs on the threads and sockets backends, not just the simulator.
    pub fn transport_generic(self) -> bool {
        !matches!(self, Sorter::HykSort)
    }
}

/// Which execution backend a harness runs on, from the `BENCH_BACKEND`
/// env var: the deterministic virtual-time simulator (default) or the real
/// OS-thread backend (`crates/shmem`), which reports wall-clock seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `mpisim`: modeled network, virtual time, deterministic.
    Sim,
    /// `shmem`: one OS thread per rank, measured wall-clock time.
    Threads,
}

impl Backend {
    /// Stable name embedded in emitted reports.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Threads => "threads",
        }
    }
}

/// Read the backend from the environment (`BENCH_BACKEND=threads`).
pub fn backend() -> Backend {
    match std::env::var("BENCH_BACKEND").as_deref() {
        Ok("threads") | Ok("THREADS") => Backend::Threads,
        _ => Backend::Sim,
    }
}

/// Short git revision of the checkout producing a report, or `"unknown"`
/// outside a repository — embedded in every emitted document so a BENCH
/// file identifies the code that produced it.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Outcome of one distributed-sort run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Modelled makespan in seconds, `None` on OOM failure.
    pub time_s: Option<f64>,
    /// Per-rank post-exchange loads (empty on failure).
    pub loads: Vec<usize>,
    /// Phase maxima across ranks (zeroed on failure).
    pub phases: sdssort::SortStats,
    /// Host wall time of the simulation.
    pub wall_s: f64,
}

impl RunOutcome {
    /// RDFA, or ∞ on failure (the paper's Tables 3/4 convention).
    pub fn rdfa(&self) -> f64 {
        if self.time_s.is_none() {
            sdssort::stats::rdfa_failed()
        } else {
            sdssort::rdfa(&self.loads)
        }
    }
}

/// Run `sorter` over `p` ranks where rank `r` sorts `gen(r)`; compute is
/// charged via the calibrated model, communication via the Edison network
/// model. `budget` optionally caps per-rank simulated memory.
pub fn run_sorter<T, G>(
    sorter: Sorter,
    p: usize,
    budget: Option<usize>,
    model: ComputeModel,
    gen: G,
) -> RunOutcome
where
    T: Sortable,
    G: Fn(usize) -> Vec<T> + Send + Sync,
{
    let mut world = modeled_world(p);
    if let Some(b) = budget {
        world = world.memory_budget(b);
    }
    let started = Instant::now();
    let report = world.run(|comm| run_one(sorter, comm, gen(comm.rank()), model));
    let wall_s = started.elapsed().as_secs_f64();
    let ok = report.results.iter().all(Result::is_ok);
    if !ok {
        return RunOutcome {
            time_s: None,
            loads: Vec::new(),
            phases: sdssort::SortStats::default(),
            wall_s,
        };
    }
    let stats: Vec<sdssort::SortStats> = report
        .results
        .iter()
        .map(|r| r.as_ref().expect("checked ok").stats)
        .collect();
    let loads = report
        .results
        .iter()
        .map(|r| r.as_ref().expect("checked ok").data.len())
        .collect();
    RunOutcome {
        time_s: Some(report.makespan),
        loads,
        phases: sdssort::stats::phase_maxima(&stats),
        wall_s,
    }
}

/// Dispatch a transport-generic sorter (SDS fast/stable, AMS, HSS) on any
/// [`comm::Communicator`] backend with *measured* compute charging and the
/// same τ knobs as the simulator harnesses (`τm = 0`, `τo = 16`, `τs = 8`)
/// so cross-backend sweeps compare identical algorithm configurations.
///
/// # Panics
/// Panics for [`Sorter::HykSort`], which is simulator-only — callers gate
/// on [`Sorter::transport_generic`].
pub fn run_one_measured<T: Sortable, C: comm::Communicator>(
    sorter: Sorter,
    comm: &C,
    data: Vec<T>,
) -> Result<SortOutput<T>, SortError> {
    match sorter {
        Sorter::Sds | Sorter::SdsStable => {
            let mut cfg = if sorter == Sorter::SdsStable {
                SdsConfig::stable()
            } else {
                SdsConfig::default()
            };
            cfg.tau_m_bytes = 0;
            cfg.tau_o = 16;
            cfg.tau_s = 8;
            sds_sort(comm, data, &cfg)
        }
        Sorter::Ams => algos::ams_sort(comm, data, &algos::AmsConfig::default()),
        Sorter::Hss => algos::hss_sort(comm, data, &algos::HssConfig::default()),
        Sorter::HykSort => panic!("HykSort is simulator-only, not transport-generic"),
    }
}

/// Run a transport-generic sorter for real on the threads backend
/// (`crates/shmem`): one OS thread per rank, wall-clock timing. `time_s`
/// in the outcome is the measured wall clock of the whole world, so
/// weak-scaling sweeps report real seconds. SDS fast/stable, AMS and HSS
/// run here; the HykSort baseline is simulator-only
/// (see [`run_one_measured`]).
pub fn run_sorter_threads<T, G>(sorter: Sorter, p: usize, gen: G) -> RunOutcome
where
    T: Sortable,
    G: Fn(usize) -> Vec<T> + Send + Sync,
{
    assert!(
        sorter.transport_generic(),
        "the threads backend runs the transport-generic sorters only (sds, sds-stable, ams, hss)"
    );
    let report = shmem::ThreadWorld::new(p).cores_per_node(24).run(|comm| {
        use comm::Communicator;
        run_one_measured(sorter, comm, gen(comm.rank()))
    });
    let ok = report.results.iter().all(Result::is_ok);
    if !ok {
        return RunOutcome {
            time_s: None,
            loads: Vec::new(),
            phases: sdssort::SortStats::default(),
            wall_s: report.wall_s,
        };
    }
    let stats: Vec<sdssort::SortStats> = report
        .results
        .iter()
        .map(|r| r.as_ref().expect("checked ok").stats)
        .collect();
    let loads = report
        .results
        .iter()
        .map(|r| r.as_ref().expect("checked ok").data.len())
        .collect();
    RunOutcome {
        time_s: Some(report.wall_s),
        loads,
        phases: sdssort::stats::phase_maxima(&stats),
        wall_s: report.wall_s,
    }
}

/// Entry name the sockets bench worlds dispatch on. A binary that calls
/// [`run_sorter_sockets`] MUST call [`sockets_bench_child`] at the top of
/// `main`, or its re-exec'd rank processes will never find the entry.
pub const SOCKETS_BENCH_ENTRY: &str = "bench-sds-uniform";

/// Per-rank result of the sockets bench entry, flattened to `Wire`
/// scalars: (output len, wall s, pivot s, exchange s, local-order s,
/// other s, node merged, overlapped).
type SockBenchResult = (u64, f64, f64, f64, f64, f64, bool, bool);

/// Child-side hook for [`run_sorter_sockets`]: diverts re-exec'd rank
/// processes into the bench sort entry; a no-op in the parent.
pub fn sockets_bench_child() {
    sockcomm::child_rank(
        SOCKETS_BENCH_ENTRY,
        |comm, (code, n_rank): (u8, u64)| -> SockBenchResult {
            use comm::Communicator;
            let sorter = Sorter::from_code(code).expect("sockets bench rank: bad sorter code");
            let data = workloads::uniform_u64(n_rank as usize, 0xF167, comm.rank());
            let t0 = Instant::now();
            let o = run_one_measured(sorter, comm, data).expect("sockets bench rank: sort failed");
            (
                o.data.len() as u64,
                t0.elapsed().as_secs_f64(),
                o.stats.pivot_s,
                o.stats.exchange_s,
                o.stats.local_order_s,
                o.stats.other_s,
                o.stats.node_merged,
                o.stats.overlapped,
            )
        },
    );
}

/// Run `sorter` over `p` rank *processes* connected by Unix-domain
/// sockets, each sorting `n_rank` uniform `u64` keys (same generator and
/// seed as [`run_sorter_threads`] via `weak_scaling_uniform_threads`).
/// `time_s` is the slowest rank's measured sort seconds; `wall_s` is the
/// launcher's wall clock and additionally includes process spawn and
/// rendezvous (see EXPERIMENTS.md).
pub fn run_sorter_sockets(sorter: Sorter, p: usize, n_rank: usize) -> RunOutcome {
    assert!(
        sorter.transport_generic(),
        "the sockets backend runs the transport-generic sorters only (sds, sds-stable, ams, hss)"
    );
    let world = sockcomm::SocketWorld::new(p).cores_per_node(24);
    match world
        .run::<(u8, u64), SockBenchResult>(SOCKETS_BENCH_ENTRY, &(sorter.code(), n_rank as u64))
    {
        Err(e) => {
            eprintln!("sockets bench world failed: {e}");
            RunOutcome {
                time_s: None,
                loads: Vec::new(),
                phases: sdssort::SortStats::default(),
                wall_s: 0.0,
            }
        }
        Ok(report) => {
            let stats: Vec<sdssort::SortStats> = report
                .results
                .iter()
                .map(|r| sdssort::SortStats {
                    pivot_s: r.2,
                    exchange_s: r.3,
                    local_order_s: r.4,
                    other_s: r.5,
                    recv_count: r.0 as usize,
                    node_merged: r.6,
                    overlapped: r.7,
                    ..Default::default()
                })
                .collect();
            let slowest_sort = report.results.iter().map(|r| r.1).fold(0.0f64, f64::max);
            RunOutcome {
                time_s: Some(slowest_sort),
                loads: report.results.iter().map(|r| r.0 as usize).collect(),
                phases: sdssort::stats::phase_maxima(&stats),
                wall_s: report.wall_s,
            }
        }
    }
}

fn run_one<T: Sortable>(
    sorter: Sorter,
    comm: &mut Comm,
    data: Vec<T>,
    model: ComputeModel,
) -> Result<SortOutput<T>, SortError> {
    // Node merging is disabled (τm = 0) in the comparative harnesses: our
    // memory budget is per rank, while node merging concentrates a node's
    // data on its leader by design (the real machine's budget is per
    // *node*). Fig. 5a studies node merging in isolation.
    //
    // τo and τs are machine-specific tuning knobs: the paper calibrates
    // 4096/4000 for Edison (Figs. 5b/5c); our Fig. 5b/5c harnesses locate
    // the crossovers near 16 and 8 on the simulated machine, so the
    // comparative runs use those.
    match sorter {
        Sorter::Sds => {
            let mut cfg = SdsConfig::modeled(model);
            cfg.tau_m_bytes = 0;
            cfg.tau_o = 16;
            cfg.tau_s = 8;
            sds_sort(comm, data, &cfg)
        }
        Sorter::SdsStable => {
            let mut cfg = SdsConfig::modeled(model);
            cfg.stable = true;
            cfg.tau_m_bytes = 0;
            cfg.tau_s = 8;
            sds_sort(comm, data, &cfg)
        }
        Sorter::HykSort => {
            let cfg = baselines::HykSortConfig {
                charge: ComputeCharge::Modeled(model),
                ..baselines::HykSortConfig::default()
            };
            baselines::hyksort(comm, data, &cfg)
        }
        Sorter::Ams => {
            let cfg = algos::AmsConfig {
                charge: ComputeCharge::Modeled(model),
                // τm = 0 for the same per-rank-budget reason as SDS above.
                tau_m_bytes: 0,
                ..algos::AmsConfig::default()
            };
            algos::ams_sort(comm, data, &cfg)
        }
        Sorter::Hss => {
            let cfg = algos::HssConfig {
                charge: ComputeCharge::Modeled(model),
                ..algos::HssConfig::default()
            };
            algos::hss_sort(comm, data, &cfg)
        }
    }
}

/// Format an optional time, using the paper's "Out of Memory" marker.
pub fn fmt_opt_time(t: Option<f64>) -> String {
    match t {
        Some(t) => fmt_time(t),
        None => "OOM".to_string(),
    }
}

/// Format an RDFA value, with ∞ for failures (Tables 3/4).
pub fn fmt_rdfa(r: f64) -> String {
    if r.is_infinite() {
        "inf".to_string()
    } else {
        format!("{r:.4}")
    }
}

/// Print the standard harness header.
pub fn header(id: &str, paper_claim: &str) {
    println!("==============================================================");
    println!("{id}");
    println!("paper: {paper_claim}");
    println!(
        "scale: {:?} (set BENCH_SCALE=full for larger sweeps)",
        scale()
    );
    println!("==============================================================");
}

/// Print a shape verdict line.
pub fn verdict(ok: bool, what: &str) {
    println!(
        "shape: [{}] {what}",
        if ok { "REPRODUCED" } else { "DIVERGED" }
    );
}
