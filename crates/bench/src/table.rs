//! Minimal fixed-width table printer for harness output.

/// A simple column-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Human-friendly duration: µs/ms/s with 3 significant digits.
pub fn fmt_time(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.2}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

/// Human-friendly byte size.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes}B")
    } else {
        format!("{v:.1}{}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(["only-one"]);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn fmt_time_ranges() {
        assert!(fmt_time(5e-6).ends_with("us"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(160 << 20), "160.0MiB");
    }
}
