//! Ablation — the skew-aware partition itself.
//!
//! Runs the *same* SDS-Sort pipeline with only the partitioning rule
//! switched: skew-aware (the paper's contribution) vs classic
//! `upper_bound` (the PSRS/HykSort rule). Everything else — sampling,
//! pivot selection, exchange, ordering — is identical, so any difference
//! in load balance and survival is attributable to the partition alone.

use bench::{by_scale, fmt_opt_time, fmt_rdfa, header, model, verdict, Table};
use mpisim::World;
use sdssort::{rdfa, sds_sort, PartitionStrategy, SdsConfig, SortError};
use workloads::{zipf_keys, PAPER_ALPHA_DELTA_TABLE2};

fn run(
    p: usize,
    n_rank: usize,
    alpha: f64,
    strategy: PartitionStrategy,
    budget: usize,
) -> (Option<f64>, f64) {
    let m = model();
    let mut cfg = SdsConfig::modeled(m);
    cfg.tau_m_bytes = 0;
    cfg.tau_o = 0;
    cfg.partition = strategy;
    let world = World::new(p)
        .cores_per_node(24)
        .compute_scale(0.0)
        .memory_budget(budget);
    let report = world.run(|comm| {
        let data = zipf_keys(n_rank, alpha, 0xAB1, comm.rank());
        sds_sort(comm, data, &cfg).map(|o| o.data.len())
    });
    let ok = report.results.iter().all(Result::is_ok);
    if !ok {
        debug_assert!(report
            .results
            .iter()
            .any(|r| matches!(r, Err(SortError::Oom(_)) | Err(SortError::PeerOom))));
        return (None, f64::INFINITY);
    }
    let loads: Vec<usize> = report
        .results
        .into_iter()
        .map(|r| r.expect("checked ok"))
        .collect();
    (Some(report.makespan), rdfa(&loads))
}

fn main() {
    header(
        "Ablation — skew-aware vs classic partition inside the same pipeline",
        "isolates §2.5: the partition alone must explain the skew robustness",
    );
    let p: usize = 256;
    let n_rank: usize = by_scale(1500, 8000);
    let budget = n_rank * 8 * 16 / 5; // same regime as Fig 6c
    println!("p = {p}, {n_rank} u64/rank, budget = 3.2x input\n");

    let mut table = Table::new([
        "δ (%)",
        "skew-aware time",
        "skew-aware RDFA",
        "classic time",
        "classic RDFA",
    ]);
    let mut classic_fails_high = false;
    let mut skew_all_ok = true;
    for &(alpha, delta) in &PAPER_ALPHA_DELTA_TABLE2 {
        let (t_skew, r_skew) = run(p, n_rank, alpha, PartitionStrategy::SkewAware, budget);
        let (t_classic, r_classic) = run(p, n_rank, alpha, PartitionStrategy::Classic, budget);
        if t_skew.is_none() {
            skew_all_ok = false;
        }
        if t_classic.is_none() && delta >= 2.0 {
            classic_fails_high = true;
        }
        table.row([
            format!("{delta:.1}"),
            fmt_opt_time(t_skew),
            fmt_rdfa(r_skew),
            fmt_opt_time(t_classic),
            fmt_rdfa(r_classic),
        ]);
    }
    table.print();
    verdict(
        skew_all_ok && classic_fails_high,
        "with ONLY the partition swapped, the classic rule inherits HykSort's OOM failure",
    );
}
