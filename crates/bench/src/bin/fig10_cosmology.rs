//! Fig. 10 — sorting cosmology particles by cluster ID (δ ≈ 0.73 %,
//! 24-byte kinematic payload) at high rank counts, with phase breakdown.
//!
//! Paper result (2.1 TB, 16K cores): HykSort fails with out-of-memory;
//! SDS-Sort and SDS-Sort/stable finish (15.6 and 7.9 TB/min), with small
//! RDFA (1.3962 for both). The concentration that kills HykSort here is
//! δ·p ≈ 120 shares of a rank's input on one rank; our scaled run keeps
//! δ·p comfortably past the 2×-input budget.

use bench::experiments::{cosmology_experiment, emit_outcome_rows};
use bench::{
    by_scale, fmt_opt_time, fmt_rdfa, fmt_time, header, model, verdict, Emitter, Sorter, Table,
};

fn main() {
    header(
        "Fig 10 — cosmology cluster-ID sort (δ ≈ 0.73%), phase breakdown",
        "HykSort OOM; SDS ~2x faster than SDS/stable; RDFA ≈ 1.4 for both",
    );
    let p = 512;
    let n_rank: usize = by_scale(2000, 10_000);
    println!("records/rank: {n_rank} (u64 cluster id + 6 f32 payload), budget 2.5x input\n");
    let rows = cosmology_experiment(p, n_rank, model());
    let mut em = Emitter::from_env("fig10");
    em.meta("workload", "cosmology_particles");
    em.meta("n_rank", n_rank as u64);
    emit_outcome_rows(&mut em, p, &rows, &[]);

    let mut table = Table::new([
        "sorter",
        "pivot selection",
        "exchange",
        "local-ordering",
        "other",
        "total",
        "RDFA",
    ]);
    for (sorter, outcome) in &rows {
        let ph = outcome.phases;
        table.row([
            sorter.label().to_string(),
            fmt_time(ph.pivot_s),
            fmt_time(ph.exchange_s),
            fmt_time(ph.local_order_s),
            fmt_time(ph.other_s),
            fmt_opt_time(outcome.time_s),
            fmt_rdfa(outcome.rdfa()),
        ]);
    }
    table.print();

    let get = |s: Sorter| {
        rows.iter()
            .find(|(x, _)| *x == s)
            .map(|(_, o)| o.clone())
            .expect("row")
    };
    let hyk = get(Sorter::HykSort);
    let sds = get(Sorter::Sds);
    let stb = get(Sorter::SdsStable);
    let both_finish = sds.time_s.is_some() && stb.time_s.is_some();
    let rdfa_close = (sds.rdfa() - stb.rdfa()).abs() < 0.05 && sds.rdfa() < 2.0;
    verdict(
        hyk.time_s.is_none() && both_finish && rdfa_close,
        "HykSort OOMs; both SDS variants finish with small, equal RDFA",
    );
    em.finish().expect("write metrics");
}
