//! `bench_quick` — a fast real-execution sanity sweep.
//!
//! Runs the same small weak-scaling sweep of both SDS variants on the
//! Uniform workload twice — once on the threads backend (`crates/shmem`)
//! and once with one OS process per rank over Unix-domain sockets
//! (`crates/sockcomm`) — then drives the resident
//! [`service::SortService`] with a burst of Zipf-sized jobs from several
//! concurrent clients, and emits the wall-clock numbers as
//! `BENCH_pr8.json` (honouring `BENCH_METRICS_OUT`, or
//! `--metrics-out <dir>`). Scaling points carry a `backend` axis so the
//! two substrates are directly comparable per (sorter, p) cell. Unlike
//! the figure harnesses this never touches the simulator: every time in
//! the output is a measured second (sockets `wall_s` includes process
//! spawn + rendezvous — see EXPERIMENTS.md). Intended for
//! `scripts/bench_quick.sh` and CI smoke. After writing, the emitted
//! document is read back, parsed, and checked for the
//! `git_rev`/`backend` meta so CI fails loudly on a malformed emission.

use bench::experiments::{
    drive_service, emit_scaling_cells, print_service_report, print_threads_scaling, service_values,
    weak_scaling_uniform_sockets, weak_scaling_uniform_threads,
};
use bench::{header, verdict, Emitter};
use mpisim::telemetry::Json;
use service::{LoadGen, ServiceConfig};

fn main() {
    // Rank processes of the sockets sweep re-enter this binary and divert
    // here; the parent falls through.
    bench::sockets_bench_child();
    header(
        "Quick real-execution weak scaling (threads vs sockets, wall-clock)",
        "both SDS variants sort, validate, and scale on OS threads and OS processes",
    );
    let ps = [1usize, 2, 4, 8];
    let n_rank = 20_000;
    let mut em = Emitter::from_env("pr8");
    em.meta("workload", "uniform_u64");
    em.meta("n_rank", n_rank as u64);
    em.meta("backend", "threads+sockets");

    println!("records/rank: {n_rank} u64, uniform, backend: threads\n");
    let thr_cells = weak_scaling_uniform_threads(&ps, n_rank);
    emit_scaling_cells(&mut em, &thr_cells, &[("backend", Json::from("threads"))]);
    let thr_ok = print_threads_scaling(&ps, n_rank, &thr_cells);

    println!("\nrecords/rank: {n_rank} u64, uniform, backend: sockets (uds, process per rank)\n");
    let sock_cells = weak_scaling_uniform_sockets(&ps, n_rank);
    emit_scaling_cells(&mut em, &sock_cells, &[("backend", Json::from("sockets"))]);
    let sock_ok = print_threads_scaling(&ps, n_rank, &sock_cells);

    // Resident-service load: persistent ranks, Zipf-sized jobs, 4 clients.
    let (svc_ranks, svc_jobs, svc_clients, svc_min) = (4usize, 32u64, 4usize, 5_000usize);
    println!(
        "\nSortService: zipf:0.8 jobs on {svc_ranks} resident ranks, \
         {svc_jobs} jobs from {svc_clients} clients\n"
    );
    let load = LoadGen::new("zipf:0.8", svc_min, 42).with_size_skew(1.1, 16);
    let svc = drive_service(ServiceConfig::new(svc_ranks), &load, svc_jobs, svc_clients);
    print_service_report(&svc);
    em.meta("service_ranks", svc_ranks);
    em.meta("service_clients", svc_clients);
    em.meta("service_min_records_per_rank", svc_min);
    em.point(
        "SortService",
        &[("jobs", Json::from(svc_jobs))],
        &service_values(&svc),
    );
    let svc_ok = svc.counters.failed == 0
        && svc.counters.balanced()
        && svc.counters.completed + svc.counters.shed == svc_jobs;
    verdict(
        thr_ok && sock_ok && svc_ok,
        "SDS variants complete at every p on both real backends; \
         service resolves every job (wall-clock)",
    );
    if let Some(path) = em.finish().expect("write metrics") {
        let text = std::fs::read_to_string(&path).expect("read back emitted metrics");
        let doc = Json::parse(&text).expect("emitted metrics must parse");
        let meta = doc.get("meta").expect("emitted metrics must carry meta");
        for key in ["git_rev", "backend"] {
            assert!(
                meta.get(key).and_then(Json::as_str).is_some(),
                "emitted metrics must carry meta.{key}"
            );
        }
        let series = doc
            .get("series")
            .expect("emitted metrics must carry series");
        let backends: std::collections::BTreeSet<&str> = series
            .as_arr()
            .expect("series is an array")
            .iter()
            .filter_map(|s| s.get("points")?.as_arr())
            .flatten()
            .filter_map(|p| p.get("params")?.get("backend")?.as_str())
            .collect();
        assert!(
            backends.contains("threads") && backends.contains("sockets"),
            "emitted metrics must carry both backend columns, got {backends:?}"
        );
        println!("metrics validated: {}", path.display());
    }
}
