//! `bench_quick` — a fast real-execution sanity sweep.
//!
//! Runs a small threads-backend (`crates/shmem`) weak-scaling sweep of
//! both SDS variants on the Uniform workload, then drives the resident
//! [`service::SortService`] with a burst of Zipf-sized jobs from several
//! concurrent clients, and emits the wall-clock numbers as
//! `BENCH_pr7.json` (honouring `BENCH_METRICS_OUT`, or
//! `--metrics-out <dir>`). Unlike the figure harnesses this never touches
//! the simulator: every time in the output is a measured second. Intended
//! for `scripts/bench_quick.sh` and CI smoke. After writing, the emitted
//! document is read back, parsed, and checked for the `git_rev`/`backend`
//! meta so CI fails loudly on a malformed emission.

use bench::experiments::{
    drive_service, emit_scaling_cells, print_service_report, print_threads_scaling, service_values,
    weak_scaling_uniform_threads,
};
use bench::{header, verdict, Emitter};
use mpisim::telemetry::Json;
use service::{LoadGen, ServiceConfig};

fn main() {
    header(
        "Quick threads-backend weak scaling (real wall-clock)",
        "both SDS variants sort, validate, and scale on OS threads",
    );
    let ps = [1usize, 2, 4, 8];
    let n_rank = 20_000;
    println!("records/rank: {n_rank} u64, uniform, backend: threads\n");
    let cells = weak_scaling_uniform_threads(&ps, n_rank);
    let mut em = Emitter::from_env("pr7");
    em.meta("workload", "uniform_u64");
    em.meta("n_rank", n_rank as u64);
    em.meta("backend", "threads");
    emit_scaling_cells(&mut em, &cells, &[]);
    let all_ok = print_threads_scaling(&ps, n_rank, &cells);

    // Resident-service load: persistent ranks, Zipf-sized jobs, 4 clients.
    let (svc_ranks, svc_jobs, svc_clients, svc_min) = (4usize, 32u64, 4usize, 5_000usize);
    println!(
        "\nSortService: zipf:0.8 jobs on {svc_ranks} resident ranks, \
         {svc_jobs} jobs from {svc_clients} clients\n"
    );
    let load = LoadGen::new("zipf:0.8", svc_min, 42).with_size_skew(1.1, 16);
    let svc = drive_service(ServiceConfig::new(svc_ranks), &load, svc_jobs, svc_clients);
    print_service_report(&svc);
    em.meta("service_ranks", svc_ranks);
    em.meta("service_clients", svc_clients);
    em.meta("service_min_records_per_rank", svc_min);
    em.point(
        "SortService",
        &[("jobs", Json::from(svc_jobs))],
        &service_values(&svc),
    );
    let svc_ok = svc.counters.failed == 0
        && svc.counters.balanced()
        && svc.counters.completed + svc.counters.shed == svc_jobs;
    verdict(
        all_ok && svc_ok,
        "SDS variants complete at every p; service resolves every job (wall-clock)",
    );
    if let Some(path) = em.finish().expect("write metrics") {
        let text = std::fs::read_to_string(&path).expect("read back emitted metrics");
        let doc = Json::parse(&text).expect("emitted metrics must parse");
        let meta = doc.get("meta").expect("emitted metrics must carry meta");
        for key in ["git_rev", "backend"] {
            assert!(
                meta.get(key).and_then(Json::as_str).is_some(),
                "emitted metrics must carry meta.{key}"
            );
        }
        println!("metrics validated: {}", path.display());
    }
}
