//! `bench_quick` — a fast real-execution sanity sweep.
//!
//! Runs a small threads-backend (`crates/shmem`) weak-scaling sweep of
//! both SDS variants on the Uniform workload and emits the wall-clock
//! numbers as `BENCH_pr5.json` (honouring `BENCH_METRICS_OUT`, or
//! `--metrics-out <dir>`). Unlike the figure harnesses this never touches
//! the simulator: every time in the output is a measured second. Intended
//! for `scripts/bench_quick.sh` and CI smoke.

use bench::experiments::{emit_scaling_cells, print_threads_scaling, weak_scaling_uniform_threads};
use bench::{header, verdict, Emitter};

fn main() {
    header(
        "Quick threads-backend weak scaling (real wall-clock)",
        "both SDS variants sort, validate, and scale on OS threads",
    );
    let ps = [1usize, 2, 4, 8];
    let n_rank = 20_000;
    println!("records/rank: {n_rank} u64, uniform, backend: threads\n");
    let cells = weak_scaling_uniform_threads(&ps, n_rank);
    let mut em = Emitter::from_env("pr5");
    em.meta("workload", "uniform_u64");
    em.meta("n_rank", n_rank as u64);
    em.meta("backend", "threads");
    emit_scaling_cells(&mut em, &cells, &[]);
    let all_ok = print_threads_scaling(&ps, n_rank, &cells);
    verdict(all_ok, "both SDS variants complete at every p (wall-clock)");
    em.finish().expect("write metrics");
}
