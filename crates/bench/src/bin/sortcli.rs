//! `sortcli` — run any sorter on any workload from the command line.
//!
//! ```text
//! Usage: sortcli [OPTIONS]
//!
//!   --sorter   sds | sds-stable | hyksort | samplesort | bitonic | radix
//!              | ams | hss        (`--algo` is an alias for `--sorter`;
//!                                  `ams` is multi-level AMS-sort and `hss`
//!                                  is Histogram Sort with Sampling, both
//!                                  from crates/algos)
//!   --workload uniform | zipf:<alpha> | staircase[:<steps>] | ptf-like
//!              | adversarial
//!   --backend  sim | threads | sockets
//!                                  (default sim). `sim` runs on the
//!                                  deterministic virtual-time simulator;
//!                                  `threads` runs each rank on a real OS
//!                                  thread (crates/shmem); `sockets` runs
//!                                  each rank as a real OS *process*
//!                                  connected by sockets (crates/sockcomm).
//!                                  Both real backends report wall-clock
//!                                  times and support the transport-generic
//!                                  sorters (sds, sds-stable, ams, hss);
//!                                  fault injection, memory budgets,
//!                                  tracing and resilience are
//!                                  simulator-only
//!   --transport uds | tcp          (default uds; sockets backend only)
//!                                  socket family for rank-to-rank links
//!   --ranks    <p>                 (default 8)
//!   --records  <n per rank>        (default 20000)
//!   --cores    <cores per node>    (default 24)
//!   --budget   <bytes per rank>    (default unlimited)
//!   --oversample <s>               (default 1; sds only)
//!   --trace                        print per-phase traffic matrices
//!   --seed     <u64>               (default 42)
//!   --faults   <spec>              inject deterministic message faults,
//!                                  e.g. seed=7,delay=0.5:1e-4,reorder=0.3:8,
//!                                  stall=2:0.3:1e-3,sendbuf=0.2:3:1e-5,
//!                                  ramp=0:0.01:0.5 (see mpisim::FaultSpec)
//!   --collective-timeout <secs>    wall-clock deadlock detector: if every
//!                                  rank blocks with no message progress for
//!                                  this long, abort with a diagnostic report
//!   --resilient <spill-dir>        sds only: degrade gracefully under
//!                                  memory pressure by spilling received
//!                                  chunks to <spill-dir> instead of aborting
//!   --metrics-out <path>           write a telemetry RunReport as JSON
//!                                  (a directory gets BENCH_sortcli.json;
//!                                  also honours BENCH_METRICS_OUT)
//!   --validate-metrics <file>      parse a previously written RunReport
//!                                  and exit 0 iff it is valid (CI smoke)
//!   --serve                        run a resident SortService (threads
//!                                  backend) and drive it with a stream of
//!                                  Zipf-sized jobs of --workload keys,
//!                                  --records per rank minimum; reports
//!                                  jobs/sec and latency percentiles
//!   --jobs     <n>                 (serve; default 32) jobs to submit
//!   --clients  <n>                 (serve; default 4) concurrent client
//!                                  handles submitting the jobs
//! ```
//!
//! Prints: correctness verdict (globally sorted + permutation), modelled
//! makespan, phase breakdown, RDFA, message/byte totals.

use bench::{fmt_bytes, fmt_time, Table};
use mpisim::telemetry::{Decisions, Json, MemoryReport, RunReport, WorldMeta};
use mpisim::{FaultSpec, NetModel, World};
use sdssort::{
    is_globally_sorted, is_permutation_of, rdfa, sds_sort, sds_sort_resilient, ResilienceConfig,
    SdsConfig, SortError,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

#[derive(Debug, Clone)]
struct Args {
    sorter: String,
    workload: String,
    backend: String,
    transport: String,
    ranks: usize,
    records: usize,
    cores: usize,
    budget: Option<usize>,
    oversample: usize,
    trace: bool,
    seed: u64,
    faults: Option<FaultSpec>,
    faults_text: Option<String>,
    collective_timeout: Option<Duration>,
    resilient: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    validate_metrics: Option<PathBuf>,
    serve: bool,
    jobs: u64,
    clients: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sorter: "sds".into(),
        workload: "uniform".into(),
        backend: "sim".into(),
        transport: "uds".into(),
        ranks: 8,
        records: 20_000,
        cores: 24,
        budget: None,
        oversample: 1,
        trace: false,
        seed: 42,
        faults: None,
        faults_text: None,
        collective_timeout: None,
        resilient: None,
        metrics_out: std::env::var_os("BENCH_METRICS_OUT").map(PathBuf::from),
        validate_metrics: None,
        serve: false,
        jobs: 32,
        clients: 4,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--sorter" | "--algo" => args.sorter = take(&mut i)?,
            "--workload" => args.workload = take(&mut i)?,
            "--backend" => args.backend = take(&mut i)?,
            "--transport" => args.transport = take(&mut i)?,
            "--ranks" => args.ranks = take(&mut i)?.parse().map_err(|e| format!("--ranks: {e}"))?,
            "--records" => {
                args.records = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--records: {e}"))?;
            }
            "--cores" => args.cores = take(&mut i)?.parse().map_err(|e| format!("--cores: {e}"))?,
            "--budget" => {
                args.budget = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?,
                );
            }
            "--oversample" => {
                args.oversample = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--oversample: {e}"))?;
            }
            "--trace" => args.trace = true,
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--faults" => {
                let spec = take(&mut i)?;
                args.faults = Some(FaultSpec::parse(&spec).map_err(|e| format!("--faults: {e}"))?);
                args.faults_text = Some(spec);
            }
            "--collective-timeout" => {
                let secs: f64 = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--collective-timeout: {e}"))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--collective-timeout: must be a positive number".into());
                }
                args.collective_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--resilient" => args.resilient = Some(PathBuf::from(take(&mut i)?)),
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(take(&mut i)?)),
            "--validate-metrics" => args.validate_metrics = Some(PathBuf::from(take(&mut i)?)),
            "--serve" => args.serve = true,
            "--jobs" => args.jobs = take(&mut i)?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--clients" => {
                args.clients = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    Ok(args)
}

/// The SDS configuration this invocation runs (None for baselines).
fn sds_cfg(args: &Args) -> Option<SdsConfig> {
    match args.sorter.as_str() {
        "sds" | "sds-stable" => {
            let mut cfg = if args.sorter == "sds-stable" {
                SdsConfig::stable()
            } else {
                SdsConfig::default()
            };
            cfg.oversample = args.oversample;
            Some(cfg)
        }
        _ => None,
    }
}

/// Whether this sorter is generic over `comm::Communicator` and therefore
/// runs on the threads and sockets backends (the baselines are
/// simulator-only).
fn transport_generic(sorter: &str) -> bool {
    matches!(sorter, "sds" | "sds-stable" | "ams" | "hss")
}

/// Dispatch a transport-generic sorter on any backend. The baselines never
/// reach here — `main` validates the sorter/backend combination first.
fn run_generic<C: comm::Communicator>(
    args: &Args,
    comm: &C,
    input: Vec<u64>,
) -> Result<sdssort::SortOutput<u64>, SortError> {
    match args.sorter.as_str() {
        "sds" | "sds-stable" => {
            let cfg = sds_cfg(args).expect("sds sorter");
            sds_sort(comm, input, &cfg)
        }
        "ams" => algos::ams_sort(comm, input, &algos::AmsConfig::default()),
        "hss" => algos::hss_sort(comm, input, &algos::HssConfig::default()),
        other => panic!("sorter {other} is not transport-generic (validated before launch)"),
    }
}

/// Keys for one rank — the shared by-name dispatch, so the CLI, the
/// service, and the harnesses all agree on what `zipf:0.8` means.
fn gen_keys(workload: &str, n: usize, seed: u64, rank: usize) -> Result<Vec<u64>, String> {
    workloads::keys_by_name(workload, n, seed, rank)
}

/// Per-rank outcome: (globally sorted, permutation, output length, stats).
type RankResult = Result<(bool, bool, usize, sdssort::SortStats), SortError>;

/// Per-rank outcome on the sockets backend, flattened to `Wire`-encodable
/// scalars: (sorted, permutation, output length, pivot s, exchange s,
/// local-order s, node merged, overlapped).
type SocketsRankResult = (bool, bool, u64, f64, f64, f64, bool, bool);

/// Entry name the re-exec'd rank processes dispatch on.
const SOCKETS_SORT_ENTRY: &str = "sortcli-sort";

/// One rank process of a `--backend sockets` run. The child re-parses its
/// own argv (the launcher re-execs sortcli with identical arguments), so
/// no configuration needs to travel through the params payload.
fn sockets_rank_entry(comm: &sockcomm::SockComm, _params: u64) -> SocketsRankResult {
    use comm::Communicator;
    let args = parse_args().expect("parent validated this argv before launching");
    let input = gen_keys(&args.workload, args.records, args.seed, comm.rank())
        .expect("workload validated before launch");
    let o = run_generic(&args, comm, input.clone()).expect("sort failed on sockets rank");
    let sorted = is_globally_sorted(comm, &o.data);
    let permutation = is_permutation_of(comm, &input, &o.data, |&k| k);
    (
        sorted,
        permutation,
        o.data.len() as u64,
        o.stats.pivot_s,
        o.stats.exchange_s,
        o.stats.local_order_s,
        o.stats.node_merged,
        o.stats.overlapped,
    )
}

/// Run a transport-generic sorter with one OS process per rank over
/// real sockets.
fn run_sorter_sockets(
    a: &Args,
    transport: sockcomm::Transport,
) -> Result<sockcomm::SockReport<SocketsRankResult>, sockcomm::SockError> {
    sockcomm::SocketWorld::new(a.ranks)
        .cores_per_node(a.cores)
        .transport(transport)
        .run::<u64, SocketsRankResult>(SOCKETS_SORT_ENTRY, &0)
}

/// Run a transport-generic sorter for real on the threads backend (one OS
/// thread per rank, wall-clock timing); baselines stay simulator-only.
fn run_sorter_threads(a: &Args) -> shmem::ThreadReport<RankResult> {
    use comm::Communicator;
    let a2 = a.clone();
    shmem::ThreadWorld::new(a.ranks)
        .cores_per_node(a.cores)
        .telemetry(a.metrics_out.is_some())
        .run(move |comm| -> RankResult {
            let input = gen_keys(&a2.workload, a2.records, a2.seed, comm.rank())
                .expect("workload validated before launch");
            let o = run_generic(&a2, comm, input.clone())?;
            let sorted = is_globally_sorted(comm, &o.data);
            let permutation = is_permutation_of(comm, &input, &o.data, |&k| k);
            Ok((sorted, permutation, o.data.len(), o.stats))
        })
}

#[allow(clippy::type_complexity)]
fn run_sorter(a: &Args) -> Result<(RankResult, mpisim::runtime::WorldReport<RankResult>), String> {
    let mut world = World::new(a.ranks)
        .cores_per_node(a.cores)
        .net(NetModel::edison())
        .trace(a.trace)
        .telemetry(a.metrics_out.is_some());
    if let Some(b) = a.budget {
        world = world.memory_budget(b);
    }
    if let Some(spec) = a.faults {
        world = world.faults(spec);
    }
    if let Some(window) = a.collective_timeout {
        world = world.collective_timeout(window);
    }
    let a2 = a.clone();
    let report = world.run(
        move |comm| -> Result<(bool, bool, usize, sdssort::SortStats), SortError> {
            let input = gen_keys(&a2.workload, a2.records, a2.seed, comm.rank())
                .expect("workload validated before launch");
            let (out, stats) = match a2.sorter.as_str() {
                "sds" | "sds-stable" => {
                    let cfg = sds_cfg(&a2).expect("sds sorter");
                    let o = if let Some(dir) = &a2.resilient {
                        let rcfg = ResilienceConfig::new(dir);
                        sds_sort_resilient(comm, input.clone(), &cfg, &rcfg)?
                    } else {
                        sds_sort(comm, input.clone(), &cfg)?
                    };
                    (o.data, o.stats)
                }
                "hyksort" => {
                    let o = baselines::hyksort(
                        comm,
                        input.clone(),
                        &baselines::HykSortConfig::default(),
                    )?;
                    (o.data, o.stats)
                }
                "samplesort" => {
                    let o = baselines::sample_sort(
                        comm,
                        input.clone(),
                        &baselines::SampleSortConfig::default(),
                    )?;
                    (o.data, o.stats)
                }
                "radix" => {
                    let o = baselines::radix_sort(comm, input.clone())?;
                    (o.data, o.stats)
                }
                "bitonic" => {
                    let out = baselines::bitonic_sort(comm, input.clone());
                    (out, sdssort::SortStats::default())
                }
                "ams" => {
                    let o = algos::ams_sort(comm, input.clone(), &algos::AmsConfig::default())?;
                    (o.data, o.stats)
                }
                "hss" => {
                    let o = algos::hss_sort(comm, input.clone(), &algos::HssConfig::default())?;
                    (o.data, o.stats)
                }
                other => panic!("unknown sorter {other} (validated before launch)"),
            };
            let sorted = is_globally_sorted(comm, &out);
            let permutation = is_permutation_of(comm, &input, &out, |&k| k);
            Ok((sorted, permutation, out.len(), stats))
        },
    );
    let first = report.results[0].clone();
    Ok((first, report))
}

fn main() -> ExitCode {
    // Rank processes of a `--backend sockets` run divert here (the
    // launcher re-execs this binary); everyone else falls through.
    sockcomm::child_rank(SOCKETS_SORT_ENTRY, sockets_rank_entry);
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!("see the module docs at the top of sortcli.rs for usage");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.validate_metrics {
        return match std::fs::read_to_string(path) {
            Ok(text) => match RunReport::from_json_str(&text) {
                Ok(r) => {
                    println!(
                        "valid run report: experiment {:?}, {} ranks, makespan {:.6} s",
                        r.experiment, r.world.ranks, r.makespan_v
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("invalid metrics file {}: {e}", path.display());
                    ExitCode::from(1)
                }
            },
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                ExitCode::from(1)
            }
        };
    }
    match args.sorter.as_str() {
        "sds" | "sds-stable" | "hyksort" | "samplesort" | "bitonic" | "radix" | "ams" | "hss" => {}
        other => {
            eprintln!("error: unknown sorter {other}");
            return ExitCode::from(2);
        }
    }
    if let Err(e) = gen_keys(&args.workload, 1, 0, 0) {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    if args.resilient.is_some() && sds_cfg(&args).is_none() {
        eprintln!("error: --resilient applies to the sds sorters only");
        return ExitCode::from(2);
    }
    if args.serve {
        if sds_cfg(&args).is_none() {
            eprintln!("error: --serve runs the sds sorters only");
            return ExitCode::from(2);
        }
        if args.clients == 0 {
            eprintln!("error: --clients must be at least 1");
            return ExitCode::from(2);
        }
        let incompatible = [
            (args.faults.is_some(), "--faults"),
            (args.collective_timeout.is_some(), "--collective-timeout"),
            (args.budget.is_some(), "--budget"),
            (args.trace, "--trace"),
            (args.resilient.is_some(), "--resilient"),
        ];
        for (set, flag) in incompatible {
            if set {
                eprintln!(
                    "error: {flag} does not apply to --serve \
                     (the service runs on the threads backend)"
                );
                return ExitCode::from(2);
            }
        }
        return serve_main(&args);
    }
    match args.backend.as_str() {
        "sim" | "threads" | "sockets" => {}
        other => {
            eprintln!("error: unknown backend {other} (expected sim, threads, or sockets)");
            return ExitCode::from(2);
        }
    }
    if args.transport != "uds" && args.backend != "sockets" {
        eprintln!("error: --transport applies to --backend sockets only");
        return ExitCode::from(2);
    }
    if args.backend == "sockets" && sockcomm::Transport::parse(&args.transport).is_none() {
        eprintln!(
            "error: unknown transport {} (expected uds or tcp)",
            args.transport
        );
        return ExitCode::from(2);
    }
    if args.backend == "threads" || args.backend == "sockets" {
        let backend = &args.backend;
        if !transport_generic(&args.sorter) {
            eprintln!(
                "error: the {backend} backend supports the transport-generic sorters only \
                 (sds, sds-stable, ams, hss); {} runs on the simulator — \
                 drop --backend {backend}",
                args.sorter
            );
            return ExitCode::from(2);
        }
        if args.oversample != 1 && sds_cfg(&args).is_none() {
            eprintln!("error: --oversample applies to the sds sorters only");
            return ExitCode::from(2);
        }
        let simulator_only = [
            (args.faults.is_some(), "--faults"),
            (args.collective_timeout.is_some(), "--collective-timeout"),
            (args.budget.is_some(), "--budget"),
            (args.trace, "--trace"),
            (args.resilient.is_some(), "--resilient"),
        ];
        for (set, flag) in simulator_only {
            if set {
                eprintln!("error: {flag} is simulator-only (remove --backend {backend})");
                return ExitCode::from(2);
            }
        }
    }

    println!(
        "sortcli: {} on {} | p = {}, {} records/rank, {} cores/node, {} backend{}",
        args.sorter,
        args.workload,
        args.ranks,
        args.records,
        args.cores,
        args.backend,
        args.budget
            .map(|b| format!(", budget {}", fmt_bytes(b)))
            .unwrap_or_default()
    );
    if let Some(spec) = &args.faults_text {
        println!("faults: {spec}");
    }

    if args.backend == "threads" {
        return threads_main(&args);
    }
    if args.backend == "sockets" {
        return sockets_main(&args);
    }

    let (first, report) = run_sorter(&args).expect("validated");
    match first {
        Err(e) => {
            println!("\nresult: FAILED — {e}");
            println!("(the paper's imbalance-induced crash, reproduced under the memory budget)");
            ExitCode::from(1)
        }
        Ok(_) => {
            let all_ok = report
                .results
                .iter()
                .all(|r| matches!(r, Ok((sorted, perm, _, _)) if *sorted && *perm));
            let loads: Vec<usize> = report
                .results
                .iter()
                .map(|r| r.as_ref().expect("checked ok").2)
                .collect();
            let stats = report.results[0].as_ref().expect("checked ok").3;
            println!(
                "\nresult: {}",
                if all_ok {
                    "OK (sorted, permutation)"
                } else {
                    "CORRUPT"
                }
            );
            let mut t = Table::new(["metric", "value"]);
            t.row(["modelled makespan".to_string(), fmt_time(report.makespan)]);
            t.row(["host wall".to_string(), fmt_time(report.wall.as_secs_f64())]);
            t.row(["pivot phase (rank 0)".to_string(), fmt_time(stats.pivot_s)]);
            t.row([
                "exchange phase (rank 0)".to_string(),
                fmt_time(stats.exchange_s),
            ]);
            t.row([
                "ordering phase (rank 0)".to_string(),
                fmt_time(stats.local_order_s),
            ]);
            t.row([
                "node merged (τm)".to_string(),
                stats.node_merged.to_string(),
            ]);
            t.row(["RDFA".to_string(), format!("{:.4}", rdfa(&loads))]);
            t.row(["messages".to_string(), report.messages.to_string()]);
            t.row(["bytes".to_string(), fmt_bytes(report.bytes as usize)]);
            t.row([
                "peak simulated memory".to_string(),
                fmt_bytes(report.max_memory_high_water),
            ]);
            t.print();
            if stats.spilled {
                println!(
                    "note: memory pressure tripped graceful degradation — {} received\n\
                     records were spilled through disk runs instead of aborting.",
                    stats.spill_records
                );
            }
            if stats.node_merged {
                println!(
                    "note: node-level merging ran (avg message below τm), so output\n\
                     concentrates on node leaders — RDFA counts the empty non-leaders."
                );
            }
            if args.trace {
                println!("\ntraffic by phase:");
                let mut tt = Table::new(["phase", "messages", "inter-node", "bytes"]);
                for (name, tr) in &report.trace_phases {
                    tt.row([
                        name.clone(),
                        tr.total_messages().to_string(),
                        tr.internode_messages(&report.topology).to_string(),
                        fmt_bytes(tr.total_bytes() as usize),
                    ]);
                }
                tt.print();
            }
            if let Some(out) = &args.metrics_out {
                match write_metrics(out, &args, &report, &loads, &stats) {
                    Ok(path) => println!("metrics: wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("error writing metrics: {e}");
                        return ExitCode::from(1);
                    }
                }
            }
            if all_ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
    }
}

/// Run, validate, report, and optionally emit metrics on the threads
/// backend. Times printed here are real wall-clock seconds.
fn threads_main(args: &Args) -> ExitCode {
    let report = run_sorter_threads(args);
    match &report.results[0] {
        Err(e) => {
            println!("\nresult: FAILED — {e}");
            ExitCode::from(1)
        }
        Ok(_) => {
            let all_ok = report
                .results
                .iter()
                .all(|r| matches!(r, Ok((sorted, perm, _, _)) if *sorted && *perm));
            let loads: Vec<usize> = report
                .results
                .iter()
                .map(|r| r.as_ref().expect("checked ok").2)
                .collect();
            let stats = report.results[0].as_ref().expect("checked ok").3;
            println!(
                "\nresult: {}",
                if all_ok {
                    "OK (sorted, permutation)"
                } else {
                    "CORRUPT"
                }
            );
            let mut t = Table::new(["metric", "value"]);
            t.row(["wall clock".to_string(), fmt_time(report.wall_s)]);
            t.row([
                "slowest rank".to_string(),
                fmt_time(report.per_rank_wall.iter().copied().fold(0.0, f64::max)),
            ]);
            t.row(["pivot phase (rank 0)".to_string(), fmt_time(stats.pivot_s)]);
            t.row([
                "exchange phase (rank 0)".to_string(),
                fmt_time(stats.exchange_s),
            ]);
            t.row([
                "ordering phase (rank 0)".to_string(),
                fmt_time(stats.local_order_s),
            ]);
            t.row([
                "node merged (τm)".to_string(),
                stats.node_merged.to_string(),
            ]);
            t.row(["RDFA".to_string(), format!("{:.4}", rdfa(&loads))]);
            t.row(["messages".to_string(), report.messages.to_string()]);
            t.row(["bytes".to_string(), fmt_bytes(report.bytes as usize)]);
            t.print();
            if stats.node_merged {
                println!(
                    "note: node-level merging ran (avg message below τm), so output\n\
                     concentrates on node leaders — RDFA counts the empty non-leaders."
                );
            }
            if let Some(out) = &args.metrics_out {
                match write_metrics_threads(out, args, &report, &loads, &stats) {
                    Ok(path) => println!("metrics: wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("error writing metrics: {e}");
                        return ExitCode::from(1);
                    }
                }
            }
            if all_ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
    }
}

/// Run, validate, report, and optionally emit metrics on the sockets
/// backend (one OS process per rank). Times are real wall-clock seconds;
/// `wall clock` additionally includes process spawn + rendezvous.
fn sockets_main(args: &Args) -> ExitCode {
    let transport =
        sockcomm::Transport::parse(&args.transport).expect("transport validated before launch");
    println!("transport: {} (process per rank)", transport.as_str());
    let report = match run_sorter_sockets(args, transport) {
        Ok(r) => r,
        Err(e) => {
            println!("\nresult: FAILED — {e}");
            return ExitCode::from(1);
        }
    };
    let all_ok = report
        .results
        .iter()
        .all(|&(sorted, perm, ..)| sorted && perm);
    let loads: Vec<usize> = report.results.iter().map(|r| r.2 as usize).collect();
    let r0 = report.results[0];
    let stats = sdssort::SortStats {
        pivot_s: r0.3,
        exchange_s: r0.4,
        local_order_s: r0.5,
        node_merged: r0.6,
        overlapped: r0.7,
        ..Default::default()
    };
    println!(
        "\nresult: {}",
        if all_ok {
            "OK (sorted, permutation)"
        } else {
            "CORRUPT"
        }
    );
    let mut t = Table::new(["metric", "value"]);
    t.row([
        "wall clock (launch + sort)".to_string(),
        fmt_time(report.wall_s),
    ]);
    t.row([
        "slowest rank".to_string(),
        fmt_time(report.per_rank_wall.iter().copied().fold(0.0, f64::max)),
    ]);
    t.row(["pivot phase (rank 0)".to_string(), fmt_time(stats.pivot_s)]);
    t.row([
        "exchange phase (rank 0)".to_string(),
        fmt_time(stats.exchange_s),
    ]);
    t.row([
        "ordering phase (rank 0)".to_string(),
        fmt_time(stats.local_order_s),
    ]);
    t.row([
        "node merged (τm)".to_string(),
        stats.node_merged.to_string(),
    ]);
    t.row(["RDFA".to_string(), format!("{:.4}", rdfa(&loads))]);
    t.row(["messages".to_string(), report.messages.to_string()]);
    t.row(["bytes".to_string(), fmt_bytes(report.bytes as usize)]);
    t.print();
    if stats.node_merged {
        println!(
            "note: node-level merging ran (avg message below τm), so output\n\
             concentrates on node leaders — RDFA counts the empty non-leaders."
        );
    }
    if let Some(out) = &args.metrics_out {
        match write_metrics_sockets(out, args, &report, &loads, &stats) {
            Ok(path) => println!("metrics: wrote {}", path.display()),
            Err(e) => {
                eprintln!("error writing metrics: {e}");
                return ExitCode::from(1);
            }
        }
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Run a resident [`service::SortService`] over the threads backend and
/// drive it with a stream of Zipf-sized jobs from several concurrent
/// client handles. Reports throughput and latency percentiles; with
/// `--metrics-out`, emits a self-describing experiment document.
fn serve_main(args: &Args) -> ExitCode {
    let mut cfg = service::ServiceConfig::new(args.ranks);
    cfg.cores_per_node = args.cores;
    cfg.sort = sds_cfg(args).expect("validated: --serve runs sds only");
    let load = service::LoadGen::new(args.workload.clone(), args.records, args.seed);
    println!(
        "sortsvc: {} on {} resident ranks | {} jobs from {} clients, >= {} records/rank",
        args.workload, args.ranks, args.jobs, args.clients, args.records
    );
    let report = bench::experiments::drive_service(cfg, &load, args.jobs, args.clients);
    bench::experiments::print_service_report(&report);
    if let Some(out) = &args.metrics_out {
        let mut em = bench::emit::Emitter::with_out("sortsvc", Some(out.clone()));
        em.meta("backend", "threads");
        em.meta("workload", args.workload.clone());
        em.meta("ranks", args.ranks);
        em.meta("min_records_per_rank", args.records);
        em.meta("clients", args.clients);
        em.point(
            "SortService",
            &[("jobs", Json::from(args.jobs))],
            &bench::experiments::service_values(&report),
        );
        if let Err(e) = em.finish() {
            eprintln!("error writing metrics: {e}");
            return ExitCode::from(1);
        }
    }
    if report.counters.failed == 0 && report.counters.balanced() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The config and decision fields shared by both backends' RunReports.
fn base_run_report(
    args: &Args,
    snapshot: mpisim::telemetry::Snapshot,
    loads: &[usize],
    stats: &sdssort::SortStats,
) -> RunReport {
    let mut run = RunReport::from_snapshot(
        "sortcli",
        snapshot,
        loads.iter().map(|&l| l as u64).collect(),
    );
    run.config = [
        ("sorter", Json::from(args.sorter.clone())),
        ("workload", Json::from(args.workload.clone())),
        ("backend", Json::from(args.backend.clone())),
        ("git_rev", Json::from(bench::git_rev())),
        ("ranks", Json::from(args.ranks)),
        ("records_per_rank", Json::from(args.records)),
        ("cores_per_node", Json::from(args.cores)),
        ("oversample", Json::from(args.oversample)),
        ("seed", Json::from(args.seed)),
        (
            "faults",
            Json::from(args.faults_text.clone().unwrap_or_default()),
        ),
        ("resilient", Json::from(args.resilient.is_some())),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();
    let cfg = sds_cfg(args);
    run.decisions = Decisions {
        tau_m_bytes: cfg.as_ref().map_or(0, |c| c.tau_m_bytes as u64),
        tau_o: cfg.as_ref().map_or(0, |c| c.tau_o as u64),
        tau_s: cfg.as_ref().map_or(0, |c| c.tau_s as u64),
        stable: cfg.as_ref().is_some_and(|c| c.stable),
        node_merged: stats.node_merged,
        overlapped: stats.overlapped,
    };
    run
}

/// Resolve the output path: a `.json` path is written as-is; any other
/// path is treated as a directory receiving `BENCH_sortcli.json`.
fn metrics_path(out: &Path) -> std::io::Result<PathBuf> {
    let path = if out.extension().is_some_and(|e| e == "json") {
        out.to_path_buf()
    } else {
        out.join("BENCH_sortcli.json")
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    Ok(path)
}

/// Write the [`RunReport`] for a threads-backend run. Every duration in
/// the report — spans, phase times, makespan — is wall-clock seconds.
fn write_metrics_threads<R>(
    out: &Path,
    args: &Args,
    report: &shmem::ThreadReport<R>,
    loads: &[usize],
    stats: &sdssort::SortStats,
) -> std::io::Result<PathBuf> {
    let snapshot = report.telemetry.clone().unwrap_or_default();
    let mut run = base_run_report(args, snapshot, loads, stats);
    run.world = WorldMeta {
        ranks: args.ranks,
        cores_per_node: args.cores,
        nodes: args.ranks.div_ceil(args.cores),
    };
    run.memory = MemoryReport {
        budget: None,
        max_high_water: 0,
        per_rank_high_water: Vec::new(),
    };
    // On this backend virtual time IS wall time: the makespan is the
    // world's measured wall clock.
    run.makespan_v = report.wall_s;
    run.wall_s = report.wall_s;

    let path = metrics_path(out)?;
    std::fs::write(&path, run.to_json_string() + "\n")?;
    Ok(path)
}

/// Write the [`RunReport`] for a sockets-backend run. Durations are
/// wall-clock seconds measured across real processes; there is no
/// telemetry snapshot (each rank is a separate address space), so the
/// report carries the config, decisions, loads, and timing only.
fn write_metrics_sockets(
    out: &Path,
    args: &Args,
    report: &sockcomm::SockReport<SocketsRankResult>,
    loads: &[usize],
    stats: &sdssort::SortStats,
) -> std::io::Result<PathBuf> {
    let mut run = base_run_report(args, Default::default(), loads, stats);
    run.config
        .push(("transport".to_string(), Json::from(args.transport.clone())));
    run.world = WorldMeta {
        ranks: args.ranks,
        cores_per_node: args.cores,
        nodes: args.ranks.div_ceil(args.cores),
    };
    run.memory = MemoryReport {
        budget: None,
        max_high_water: 0,
        per_rank_high_water: Vec::new(),
    };
    // Real processes: virtual time IS wall time.
    run.makespan_v = report.wall_s;
    run.wall_s = report.wall_s;

    let path = metrics_path(out)?;
    std::fs::write(&path, run.to_json_string() + "\n")?;
    Ok(path)
}

/// Assemble and write the telemetry [`RunReport`] for a successful run. A
/// `.json` path is written as-is; any other path is treated as a directory
/// receiving `BENCH_sortcli.json`.
fn write_metrics<R>(
    out: &Path,
    args: &Args,
    report: &mpisim::WorldReport<R>,
    loads: &[usize],
    stats: &sdssort::SortStats,
) -> std::io::Result<PathBuf> {
    let snapshot = report.telemetry.clone().unwrap_or_default();
    let mut run = base_run_report(args, snapshot, loads, stats);
    run.world = WorldMeta {
        ranks: args.ranks,
        cores_per_node: report.topology.cores_per_node(),
        nodes: report.topology.num_nodes(),
    };
    run.memory = MemoryReport {
        budget: report.memory_budget.map(|b| b as u64),
        max_high_water: report.max_memory_high_water as u64,
        per_rank_high_water: report
            .per_rank_memory_high_water
            .iter()
            .map(|&b| b as u64)
            .collect(),
    };
    run.makespan_v = report.makespan;
    run.wall_s = report.wall.as_secs_f64();

    let path = metrics_path(out)?;
    std::fs::write(&path, run.to_json_string() + "\n")?;
    Ok(path)
}
