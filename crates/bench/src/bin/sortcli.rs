//! `sortcli` — run any sorter on any workload from the command line.
//!
//! ```text
//! Usage: sortcli [OPTIONS]
//!
//!   --sorter   sds | sds-stable | hyksort | samplesort | bitonic | radix
//!   --workload uniform | zipf:<alpha> | ptf-like | adversarial
//!   --ranks    <p>                 (default 8)
//!   --records  <n per rank>        (default 20000)
//!   --cores    <cores per node>    (default 24)
//!   --budget   <bytes per rank>    (default unlimited)
//!   --oversample <s>               (default 1; sds only)
//!   --trace                        print per-phase traffic matrices
//!   --seed     <u64>               (default 42)
//! ```
//!
//! Prints: correctness verdict (globally sorted + permutation), modelled
//! makespan, phase breakdown, RDFA, message/byte totals.

use bench::{fmt_bytes, fmt_time, Table};
use mpisim::{NetModel, World};
use sdssort::{is_globally_sorted, is_permutation_of, rdfa, sds_sort, SdsConfig, SortError};
use std::process::ExitCode;
use workloads::{heavy_hitters, ptf_scores, uniform_u64, zipf_keys};

#[derive(Debug, Clone)]
struct Args {
    sorter: String,
    workload: String,
    ranks: usize,
    records: usize,
    cores: usize,
    budget: Option<usize>,
    oversample: usize,
    trace: bool,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sorter: "sds".into(),
        workload: "uniform".into(),
        ranks: 8,
        records: 20_000,
        cores: 24,
        budget: None,
        oversample: 1,
        trace: false,
        seed: 42,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--sorter" => args.sorter = take(&mut i)?,
            "--workload" => args.workload = take(&mut i)?,
            "--ranks" => args.ranks = take(&mut i)?.parse().map_err(|e| format!("--ranks: {e}"))?,
            "--records" => {
                args.records = take(&mut i)?.parse().map_err(|e| format!("--records: {e}"))?
            }
            "--cores" => args.cores = take(&mut i)?.parse().map_err(|e| format!("--cores: {e}"))?,
            "--budget" => {
                args.budget = Some(take(&mut i)?.parse().map_err(|e| format!("--budget: {e}"))?)
            }
            "--oversample" => {
                args.oversample =
                    take(&mut i)?.parse().map_err(|e| format!("--oversample: {e}"))?
            }
            "--trace" => args.trace = true,
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn gen_keys(workload: &str, n: usize, seed: u64, rank: usize) -> Result<Vec<u64>, String> {
    if workload == "uniform" {
        return Ok(uniform_u64(n, seed, rank));
    }
    if let Some(alpha) = workload.strip_prefix("zipf:") {
        let alpha: f64 = alpha.parse().map_err(|e| format!("zipf alpha: {e}"))?;
        return Ok(zipf_keys(n, alpha, seed, rank));
    }
    if workload == "ptf-like" {
        // PTF scores mapped to their order-preserving bits as u64 keys.
        return Ok(ptf_scores(n, seed, rank)
            .into_iter()
            .map(|o| o.key.ordered_bits() as u64)
            .collect());
    }
    if workload == "adversarial" {
        return Ok(heavy_hitters(n, 2, 90.0, seed, rank));
    }
    Err(format!("unknown workload {workload}"))
}

#[allow(clippy::type_complexity)]
fn run_sorter(
    a: &Args,
) -> Result<
    (
        Result<(bool, bool, usize, sdssort::SortStats), SortError>,
        mpisim::runtime::WorldReport<Result<(bool, bool, usize, sdssort::SortStats), SortError>>,
    ),
    String,
> {
    let mut world =
        World::new(a.ranks).cores_per_node(a.cores).net(NetModel::edison()).trace(a.trace);
    if let Some(b) = a.budget {
        world = world.memory_budget(b);
    }
    let a2 = a.clone();
    let report = world.run(move |comm| -> Result<(bool, bool, usize, sdssort::SortStats), SortError> {
        let input = gen_keys(&a2.workload, a2.records, a2.seed, comm.rank())
            .expect("workload validated before launch");
        let (out, stats) = match a2.sorter.as_str() {
            "sds" | "sds-stable" => {
                let mut cfg = if a2.sorter == "sds-stable" {
                    SdsConfig::stable()
                } else {
                    SdsConfig::default()
                };
                cfg.oversample = a2.oversample;
                let o = sds_sort(comm, input.clone(), &cfg)?;
                (o.data, o.stats)
            }
            "hyksort" => {
                let o = baselines::hyksort(comm, input.clone(), &baselines::HykSortConfig::default())?;
                (o.data, o.stats)
            }
            "samplesort" => {
                let o =
                    baselines::sample_sort(comm, input.clone(), &baselines::SampleSortConfig::default())?;
                (o.data, o.stats)
            }
            "radix" => {
                let o = baselines::radix_sort(comm, input.clone())?;
                (o.data, o.stats)
            }
            "bitonic" => {
                let out = baselines::bitonic_sort(comm, input.clone());
                (out, sdssort::SortStats::default())
            }
            other => panic!("unknown sorter {other} (validated before launch)"),
        };
        let sorted = is_globally_sorted(comm, &out);
        let permutation = is_permutation_of(comm, &input, &out, |&k| k);
        Ok((sorted, permutation, out.len(), stats))
    });
    let first = report.results[0].clone();
    Ok((first, report))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!("see the module docs at the top of sortcli.rs for usage");
            return ExitCode::from(2);
        }
    };
    match args.sorter.as_str() {
        "sds" | "sds-stable" | "hyksort" | "samplesort" | "bitonic" | "radix" => {}
        other => {
            eprintln!("error: unknown sorter {other}");
            return ExitCode::from(2);
        }
    }
    if let Err(e) = gen_keys(&args.workload, 1, 0, 0) {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }

    println!(
        "sortcli: {} on {} | p = {}, {} records/rank, {} cores/node{}",
        args.sorter,
        args.workload,
        args.ranks,
        args.records,
        args.cores,
        args.budget.map(|b| format!(", budget {}", fmt_bytes(b))).unwrap_or_default()
    );

    let (first, report) = run_sorter(&args).expect("validated");
    match first {
        Err(e) => {
            println!("\nresult: FAILED — {e}");
            println!("(the paper's imbalance-induced crash, reproduced under the memory budget)");
            ExitCode::from(1)
        }
        Ok(_) => {
            let all_ok = report.results.iter().all(|r| {
                matches!(r, Ok((sorted, perm, _, _)) if *sorted && *perm)
            });
            let loads: Vec<usize> =
                report.results.iter().map(|r| r.as_ref().expect("checked ok").2).collect();
            let stats = report.results[0].as_ref().expect("checked ok").3;
            println!("\nresult: {}", if all_ok { "OK (sorted, permutation)" } else { "CORRUPT" });
            let mut t = Table::new(["metric", "value"]);
            t.row(["modelled makespan".to_string(), fmt_time(report.makespan)]);
            t.row(["host wall".to_string(), fmt_time(report.wall.as_secs_f64())]);
            t.row(["pivot phase (rank 0)".to_string(), fmt_time(stats.pivot_s)]);
            t.row(["exchange phase (rank 0)".to_string(), fmt_time(stats.exchange_s)]);
            t.row(["ordering phase (rank 0)".to_string(), fmt_time(stats.local_order_s)]);
            t.row(["node merged (τm)".to_string(), stats.node_merged.to_string()]);
            t.row(["RDFA".to_string(), format!("{:.4}", rdfa(&loads))]);
            t.row(["messages".to_string(), report.messages.to_string()]);
            t.row(["bytes".to_string(), fmt_bytes(report.bytes as usize)]);
            t.row(["peak simulated memory".to_string(), fmt_bytes(report.max_memory_high_water)]);
            t.print();
            if stats.node_merged {
                println!(
                    "note: node-level merging ran (avg message below τm), so output\n\
                     concentrates on node leaders — RDFA counts the empty non-leaders."
                );
            }
            if args.trace {
                println!("\ntraffic by phase:");
                let mut tt = Table::new(["phase", "messages", "inter-node", "bytes"]);
                for (name, tr) in &report.trace_phases {
                    tt.row([
                        name.clone(),
                        tr.total_messages().to_string(),
                        tr.internode_messages(args.cores).to_string(),
                        fmt_bytes(tr.total_bytes() as usize),
                    ]);
                }
                tt.print();
            }
            if all_ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
    }
}
