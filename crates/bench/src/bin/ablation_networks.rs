//! Ablation — network dependence of the node-merging decision (τm).
//!
//! §2.3's argument is that node merging is a *network-dependent* choice:
//! on a slow, high-overhead network merging pays much longer (larger τm),
//! on a fast NIC it stops paying almost immediately. We rerun the Fig. 5a
//! sweep under the Edison model and under a slow-commodity-cluster model
//! and compare crossovers — the adaptive τm rule is only justified if the
//! crossover actually moves.

use bench::{by_scale, fmt_bytes, fmt_time, header, model, verdict, Table};
use mpisim::{NetModel, World};
use sdssort::node_merge::node_merge;
use sdssort::partition::{cuts_to_counts, fast_cuts};
use workloads::uniform_u64;

const CORES: usize = 24;
const NODES: usize = 4;

fn exchange_time(n_rank: usize, merge: bool, net: NetModel) -> f64 {
    let p = CORES * NODES;
    let m = model();
    let world = World::new(p)
        .cores_per_node(CORES)
        .net(net)
        .compute_scale(0.0);
    let report = world.run(|comm| {
        let mut data = uniform_u64(n_rank, 5, comm.rank());
        data.sort_unstable();
        comm.barrier();
        let t0 = comm.clock().now();
        if merge {
            let (cg, cl) = comm.refine_comm();
            let node_n = cl.allreduce(data.len(), |a, b| a + b);
            let merged = node_merge(&cl, &data);
            if cl.rank() == 0 {
                comm.clock().charge(m.kway_merge_cost(node_n, cl.size()));
            }
            if let (Some(cg), Some(merged)) = (cg, merged) {
                let pl = cg.size();
                let pivots: Vec<u64> = (1..pl as u64).map(|i| i * (u64::MAX / pl as u64)).collect();
                let cuts = fast_cuts(&merged, &pivots, None);
                cg.alltoallv(&merged, &cuts_to_counts(&cuts));
            }
        } else {
            let pivots: Vec<u64> = (1..p as u64).map(|i| i * (u64::MAX / p as u64)).collect();
            let cuts = fast_cuts(&data, &pivots, None);
            comm.alltoallv(&data, &cuts_to_counts(&cuts));
        }
        comm.clock().now() - t0
    });
    report.results.into_iter().fold(0.0f64, f64::max)
}

fn crossover(sizes: &[usize], net: NetModel) -> (Option<usize>, Vec<(f64, f64)>) {
    let mut rows = Vec::new();
    let mut cross = None;
    for &per_node in sizes {
        let n_rank = per_node / CORES / 8;
        let t_merge = exchange_time(n_rank, true, net.clone());
        let t_direct = exchange_time(n_rank, false, net.clone());
        if cross.is_none() && t_direct < t_merge {
            cross = Some(per_node);
        }
        rows.push((t_merge, t_direct));
    }
    (cross, rows)
}

fn main() {
    header(
        "Ablation — τm crossover under fast (Aries) vs slow (ethernet) networks",
        "node merging is the low-throughput-network optimization (§2.3)",
    );
    let sizes: Vec<usize> = by_scale(
        vec![16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20],
        vec![16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20],
    );
    let (cross_fast, rows_fast) = crossover(&sizes, NetModel::edison());
    let (cross_slow, rows_slow) = crossover(&sizes, NetModel::slow_ethernet());

    let mut table = Table::new([
        "per-node size",
        "aries merge",
        "aries direct",
        "ethernet merge",
        "ethernet direct",
    ]);
    for (i, &sz) in sizes.iter().enumerate() {
        table.row([
            fmt_bytes(sz),
            fmt_time(rows_fast[i].0),
            fmt_time(rows_fast[i].1),
            fmt_time(rows_slow[i].0),
            fmt_time(rows_slow[i].1),
        ]);
    }
    table.print();
    println!(
        "\ncrossover — aries: {}, ethernet: {}",
        cross_fast.map_or("never".into(), fmt_bytes),
        cross_slow.map_or("beyond sweep".into(), fmt_bytes)
    );
    let moved = match (cross_fast, cross_slow) {
        (Some(f), Some(s)) => s > f,
        (Some(_), None) => true, // merging never stops paying on ethernet in-sweep
        _ => false,
    };
    verdict(
        moved,
        "the slow network extends the regime where node merging pays off",
    );
}
