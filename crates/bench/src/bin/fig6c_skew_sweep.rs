//! Fig. 6c — end-to-end sort time vs replication ratio δ, under a memory
//! budget.
//!
//! Paper result: SDS-Sort and SDS-Sort/stable deliver stable times across
//! δ = 0.2 %–6.4 % (α = 0.4–0.9, Table 2), while HykSort only completes
//! when δ < ~1 % and dies with OOM beyond — duplicate concentration
//! overflows a rank's memory. The per-rank budget here is set between
//! SDS-Sort's `O(4N/p)`-bounded footprint and HykSort's `δ·N + N/p`
//! concentration, exactly the regime of the paper's 64 GB nodes.
//!
//! The AMS-sort and HSS peers (`crates/algos`) ride along as context
//! columns; the full 4-way comparison lives in `shootout_pr10`.

use bench::{by_scale, fmt_opt_time, header, model, run_sorter, verdict, Sorter, Table};
use workloads::{zipf_keys, PAPER_ALPHA_DELTA_TABLE2};

fn main() {
    header(
        "Fig 6c — sort time vs replication ratio δ under memory budget",
        "SDS variants stable across δ; HykSort OOMs once δ > ~1%",
    );
    let p: usize = 256;
    let n_rank: usize = by_scale(1500, 8000);
    // Budget: 3.2× the per-rank input. SDS-Sort's receive buffers stay
    // below ~2.7× (Table 3 RDFA ≤ 2.68); HykSort's popular-value bucket
    // holds ~δ·p shares of a rank's input and blows through the budget
    // once δ·p > 3.2 — i.e. between δ = 1 % and δ = 2 % at p = 256,
    // matching the paper's observed failure point.
    let budget = n_rank * 8 * 16 / 5;
    println!(
        "p = {p}, {n_rank} u64/rank, budget = {} per rank\n",
        bench::fmt_bytes(budget)
    );
    let m = model();

    let mut table = Table::new([
        "δ (%)",
        "alpha",
        "HykSort",
        "SDS-Sort",
        "SDS-Sort/stable",
        "AMS-sort",
        "HSS",
    ]);
    let mut hyk_fails_high = false;
    let mut hyk_ok_low = false;
    let mut sds_all_ok = true;
    for &(alpha, delta) in &PAPER_ALPHA_DELTA_TABLE2 {
        // AMS and HSS (crates/algos) ride along as context columns: both
        // split ties by position, so like the SDS variants they should
        // survive every δ — the verdict still hinges on HykSort vs SDS.
        let times: Vec<Option<f64>> = [
            Sorter::HykSort,
            Sorter::Sds,
            Sorter::SdsStable,
            Sorter::Ams,
            Sorter::Hss,
        ]
        .into_iter()
        .map(|s| {
            run_sorter(s, p, Some(budget), m, move |r| {
                zipf_keys(n_rank, alpha, 0x6C, r)
            })
            .time_s
        })
        .collect();
        if times[0].is_some() && delta <= 0.5 {
            hyk_ok_low = true;
        }
        if times[0].is_none() && delta >= 2.0 {
            hyk_fails_high = true;
        }
        if times[1].is_none() || times[2].is_none() {
            sds_all_ok = false;
        }
        table.row([
            format!("{delta:.1}"),
            format!("{alpha:.1}"),
            fmt_opt_time(times[0]),
            fmt_opt_time(times[1]),
            fmt_opt_time(times[2]),
            fmt_opt_time(times[3]),
            fmt_opt_time(times[4]),
        ]);
    }
    table.print();
    verdict(
        hyk_ok_low && hyk_fails_high && sds_all_ok,
        "SDS variants complete at every δ; HykSort completes only at low δ and OOMs at high δ",
    );
}
