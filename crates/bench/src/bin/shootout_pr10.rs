//! `shootout_pr10` — the 4-way skew shoot-out: SDS-Sort (fast + stable),
//! HykSort, AMS-sort, and Histogram Sort with Sampling head to head.
//!
//! Two sections, all on the virtual-time simulator with modeled compute
//! (so every cell is deterministic and machine-independent):
//!
//! 1. **Skew sweep** at fixed `p`: Uniform, low/high-α Zipf, and the
//!    staircase of duplication levels — the regimes where the partition
//!    strategies genuinely differ. RDFA (receive-data factor average)
//!    exposes who balances under duplicate mass; HSS must stay within its
//!    `(1+ε)` guarantee on *every* workload.
//! 2. **Weak scaling** on Uniform at `p/4`, `p/2`, `p`.
//!
//! `--ranks <p>` overrides the sweep width (CI runs `--ranks 4` as a
//! smoke); `BENCH_SCALE=full` enlarges inputs. Emits `BENCH_pr10.json`
//! via `--metrics-out <dir>` / `BENCH_METRICS_OUT`, then reads the
//! document back and asserts the meta and all five sorter columns are
//! present, so CI fails loudly on a malformed emission.

use bench::{
    by_scale, fmt_opt_time, fmt_rdfa, header, model, run_sorter, verdict, Emitter, Sorter, Table,
};
use mpisim::telemetry::Json;
use workloads::keys_by_name;

/// Every sorter in the shoot-out, in column order.
const SORTERS: [Sorter; 5] = [
    Sorter::Sds,
    Sorter::SdsStable,
    Sorter::HykSort,
    Sorter::Ams,
    Sorter::Hss,
];

/// The skew matrix: no duplication, mild and heavy Zipf (α per the
/// paper's Table 2 calibration), and two staircase grades.
const WORKLOADS: [&str; 5] = [
    "uniform",
    "zipf:0.4",
    "zipf:0.9",
    "staircase:8",
    "staircase:4",
];

/// HSS guarantees every part ≤ (1+ε)·N/p with the default ε = 0.1, so its
/// RDFA (max/avg load) must stay below this on every workload — a little
/// slack covers integer rounding at small N/p.
const HSS_RDFA_BOUND: f64 = 1.15;

fn parse_ranks() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--ranks" {
            return Some(
                args.next()
                    .and_then(|v| v.parse().ok())
                    .expect("--ranks takes a positive integer"),
            );
        }
    }
    None
}

fn main() {
    header(
        "PR10 — 4-way skew shoot-out: SDS (fast/stable) vs HykSort vs AMS-sort vs HSS",
        "skew-aware partitioning keeps every competitor honest: who balances, who concentrates",
    );
    let p = parse_ranks().unwrap_or_else(|| by_scale(32, 256));
    let n_rank: usize = by_scale(1500, 8000);
    let m = model();
    let mut em = Emitter::from_env("pr10");
    em.meta("p", p);
    em.meta("n_rank", n_rank as u64);

    println!("p = {p}, {n_rank} u64/rank, no memory budget (OOM regimes are fig6c's job)\n");
    println!("— skew sweep (time, RDFA) —");
    let mut t = Table::new([
        "workload".to_string(),
        format!("{} t/rdfa", Sorter::Sds.label()),
        format!("{} t/rdfa", Sorter::SdsStable.label()),
        format!("{} t/rdfa", Sorter::HykSort.label()),
        format!("{} t/rdfa", Sorter::Ams.label()),
        format!("{} t/rdfa", Sorter::Hss.label()),
    ]);
    let mut all_complete = true;
    let mut hss_balanced = true;
    for name in WORKLOADS {
        let mut row = vec![name.to_string()];
        for s in SORTERS {
            let o = run_sorter(s, p, None, m, move |r| {
                keys_by_name(name, n_rank, 0xA1, r).expect("workload from the fixed matrix")
            });
            all_complete &= o.time_s.is_some();
            if s == Sorter::Hss && o.rdfa() > HSS_RDFA_BOUND {
                hss_balanced = false;
            }
            em.point(
                s.label(),
                &[("workload", Json::from(name)), ("p", Json::from(p))],
                &bench::emit::outcome_values(&o),
            );
            row.push(format!("{}/{}", fmt_opt_time(o.time_s), fmt_rdfa(o.rdfa())));
        }
        t.row(row);
    }
    t.print();

    println!("\n— weak scaling, uniform (time) —");
    let ps: Vec<usize> = [p / 4, p / 2, p]
        .into_iter()
        .filter(|&q| q > 0)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut t = Table::new([
        "p",
        Sorter::Sds.label(),
        Sorter::SdsStable.label(),
        Sorter::HykSort.label(),
        Sorter::Ams.label(),
        Sorter::Hss.label(),
    ]);
    for &q in &ps {
        let mut row = vec![q.to_string()];
        for s in SORTERS {
            let o = run_sorter(s, q, None, m, move |r| {
                keys_by_name("uniform", n_rank, 0xA1, r).expect("uniform is valid")
            });
            all_complete &= o.time_s.is_some();
            em.point(
                s.label(),
                &[("workload", Json::from("uniform")), ("p", Json::from(q))],
                &bench::emit::outcome_values(&o),
            );
            row.push(fmt_opt_time(o.time_s));
        }
        t.row(row);
    }
    t.print();

    verdict(
        all_complete && hss_balanced,
        "all five sorters complete every cell; HSS honours its (1+eps) balance bound",
    );

    if let Some(path) = em.finish().expect("write metrics") {
        let text = std::fs::read_to_string(&path).expect("read back emitted metrics");
        let doc = Json::parse(&text).expect("emitted metrics must parse");
        let meta = doc.get("meta").expect("emitted metrics must carry meta");
        for key in ["git_rev", "backend"] {
            assert!(
                meta.get(key).and_then(Json::as_str).is_some(),
                "emitted metrics must carry meta.{key}"
            );
        }
        let series = doc.get("series").and_then(Json::as_arr).expect("series");
        for s in SORTERS {
            let found = series
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(s.label()))
                .unwrap_or_else(|| panic!("emitted metrics must carry a {} series", s.label()));
            let points = found.get("points").and_then(Json::as_arr).expect("points");
            assert_eq!(
                points.len(),
                WORKLOADS.len() + ps.len(),
                "{} series must cover the full sweep",
                s.label()
            );
        }
        println!("metrics validated: {}", path.display());
    }
    assert!(all_complete && hss_balanced, "shoot-out verdict must hold");
}
