//! Fig. 6b — time to partition sorted local data for the exchange, by
//! method: full sequential scan, HykSort-style per-pivot binary search,
//! and SDS-Sort's local-pivot two-level search.
//!
//! Paper result: the local-pivot partition reduces partition time "to
//! almost zero" relative to the scan, across process counts. All three
//! methods produce identical cuts (asserted here before timing).

use baselines::{binary_cuts, full_scan_cuts};
use bench::{by_scale, fmt_time, header, verdict, Table};
use sdssort::partition::fast_cuts;
use sdssort::sampling::regular_sample;
use sdssort::search::LocalPivotIndex;
use std::time::Instant;
use workloads::uniform_u64;

fn time_best_of<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    header(
        "Fig 6b — partition time: full scan vs binary (HykSort) vs local-pivot",
        "local-pivot partition reduces partition cost to ~0 at every p",
    );
    let n: usize = by_scale(1 << 21, 1 << 24);
    println!("records per rank: {n} (paper: 2 GB per process)\n");
    let ps: Vec<usize> = vec![10, 100, 500];
    let mut table = Table::new([
        "p",
        "sequential scan",
        "binary (HykSort)",
        "local-pivot (SDS)",
    ]);
    let mut sds_fastest = true;
    for &p in &ps {
        let mut data = uniform_u64(n, 0x6B, 0);
        data.sort_unstable();
        // Global pivots: regular sample of the data itself (what pivot
        // selection would produce for a single-rank value distribution).
        let pivots = regular_sample(&data, p - 1);
        let index = LocalPivotIndex::build(&data, p - 1);

        // All three methods must agree before we time anything.
        let scan = full_scan_cuts(&data, &pivots);
        let binary = binary_cuts(&data, &pivots);
        let local = fast_cuts(&data, &pivots, Some(&index));
        assert_eq!(scan, binary, "scan vs binary disagree");
        assert_eq!(binary, local, "binary vs local-pivot disagree");

        let t_scan = time_best_of(3, || full_scan_cuts(&data, &pivots)[p / 2]);
        let t_bin = time_best_of(5, || binary_cuts(&data, &pivots)[p / 2]);
        let t_sds = time_best_of(5, || fast_cuts(&data, &pivots, Some(&index))[p / 2]);
        if t_sds > t_scan {
            sds_fastest = false;
        }
        table.row([
            p.to_string(),
            fmt_time(t_scan),
            fmt_time(t_bin),
            fmt_time(t_sds),
        ]);
    }
    table.print();
    verdict(
        sds_fastest,
        "local-pivot partition is far cheaper than the full scan at every p",
    );
}
