//! `svc_bench` — load generator for the resident [`service::SortService`].
//!
//! ```text
//! Usage: svc_bench [OPTIONS]
//!
//!   --ranks     <p>          resident sort ranks       (default 4)
//!   --workload  <name>       key distribution per job  (default zipf:0.8)
//!   --records   <n>          minimum records per rank  (default 20000)
//!   --jobs      <n>          jobs to submit            (default 64)
//!   --clients   <n>          concurrent client handles (default 4)
//!   --size-alpha <a>         Zipf exponent of the job-size distribution
//!                            (default 1.1)
//!   --size-max  <m>          largest size multiplier   (default 64)
//!   --seed      <u64>        base seed                 (default 42)
//!   --metrics-out <path>     write a BENCH_svc.json experiment document
//!                            (also honours BENCH_METRICS_OUT)
//! ```
//!
//! Submits `--jobs` jobs with Zipf-distributed sizes from `--clients`
//! concurrent client handles (blocking submits, so a full queue applies
//! backpressure instead of dropping), waits for every ticket, and reports
//! jobs/sec plus latency and queue-wait percentiles.

use bench::emit::Emitter;
use bench::experiments::{drive_service, print_service_report, service_values};
use mpisim::telemetry::Json;
use service::{LoadGen, ServiceConfig};
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Args {
    ranks: usize,
    workload: String,
    records: usize,
    jobs: u64,
    clients: usize,
    size_alpha: f64,
    size_max: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ranks: 4,
        workload: "zipf:0.8".into(),
        records: 20_000,
        jobs: 64,
        clients: 4,
        size_alpha: 1.1,
        size_max: 64,
        seed: 42,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--ranks" => args.ranks = take(&mut i)?.parse().map_err(|e| format!("--ranks: {e}"))?,
            "--workload" => args.workload = take(&mut i)?,
            "--records" => {
                args.records = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--records: {e}"))?;
            }
            "--jobs" => args.jobs = take(&mut i)?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--clients" => {
                args.clients = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--size-alpha" => {
                args.size_alpha = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--size-alpha: {e}"))?;
            }
            "--size-max" => {
                args.size_max = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--size-max: {e}"))?;
            }
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            // Consumed by `metrics_out_path` inside the Emitter.
            "--metrics-out" => {
                take(&mut i)?;
            }
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    if args.clients == 0 {
        return Err("--clients must be at least 1".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!("see the module docs at the top of svc_bench.rs for usage");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = workloads::keys_by_name(&args.workload, 1, 0, 0) {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }

    println!(
        "svc_bench: {} on {} resident ranks | {} jobs from {} clients, \
         sizes Zipf({:.2}) x {}..{} records/rank",
        args.workload,
        args.ranks,
        args.jobs,
        args.clients,
        args.size_alpha,
        args.records,
        args.records * args.size_max,
    );

    let cfg = ServiceConfig::new(args.ranks);
    let load = LoadGen::new(args.workload.clone(), args.records, args.seed)
        .with_size_skew(args.size_alpha, args.size_max);
    let report = drive_service(cfg, &load, args.jobs, args.clients);
    print_service_report(&report);

    let mut em = Emitter::from_env("svc");
    em.meta("backend", "threads");
    em.meta("workload", args.workload.clone());
    em.meta("ranks", args.ranks);
    em.meta("min_records_per_rank", args.records);
    em.meta("clients", args.clients);
    em.meta("size_alpha", args.size_alpha);
    em.meta("size_max", args.size_max);
    em.point(
        "SortService",
        &[("jobs", Json::from(args.jobs))],
        &service_values(&report),
    );
    if let Err(e) = em.finish() {
        eprintln!("error writing metrics: {e}");
        return ExitCode::from(1);
    }

    if report.counters.failed == 0 && report.counters.balanced() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "error: {} jobs failed, counters balanced: {}",
            report.counters.failed,
            report.counters.balanced()
        );
        ExitCode::from(1)
    }
}
