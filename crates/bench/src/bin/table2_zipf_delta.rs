//! Table 2 — the relationship between the Zipf exponent α and the maximum
//! replication ratio δ.
//!
//! Paper values: α 0.4→0.2 %, 0.5→0.5 %, 0.6→1.0 %, 0.7→2.0 %, 0.8→3.7 %,
//! 0.9→6.4 %. Our generator solves the key-universe size so the *expected*
//! δ matches; this harness reports the analytic and empirically sampled δ
//! next to the paper's.

use bench::{by_scale, header, verdict, Table};
use workloads::{replication_ratio_pct, ZipfGen, PAPER_ALPHA_DELTA_TABLE2};

fn main() {
    header(
        "Table 2 — δ (max replication ratio) vs Zipf exponent α",
        "α: 0.4 0.5 0.6 0.7 0.8 0.9 → δ%: 0.2 0.5 1.0 2.0 3.7 6.4",
    );
    let n: usize = by_scale(300_000, 3_000_000);
    let mut table = Table::new([
        "alpha",
        "paper δ%",
        "model δ%",
        "empirical δ%",
        "key universe",
    ]);
    let mut all_close = true;
    for &(alpha, paper_delta) in &PAPER_ALPHA_DELTA_TABLE2 {
        let gen = ZipfGen::with_delta_target(alpha, paper_delta);
        let analytic = gen.expected_delta_pct();
        let empirical = replication_ratio_pct(gen.keys(n, 0x7AB2, 0));
        if (empirical - paper_delta).abs() / paper_delta > 0.25 {
            all_close = false;
        }
        table.row([
            format!("{alpha:.1}"),
            format!("{paper_delta:.1}"),
            format!("{analytic:.2}"),
            format!("{empirical:.2}"),
            gen.universe().to_string(),
        ]);
    }
    table.print();
    verdict(
        all_close,
        "empirical δ matches Table 2 within 25% at every α",
    );
}
