//! Fig. 5c — final local ordering by k-way *merging* vs adaptive
//! *sorting*, sweeping the number of received chunks (= processes).
//!
//! Paper result: merging p sorted chunks costs O(n·log p) and rises
//! sharply with p, while re-sorting the partially ordered concatenation
//! stays nearly flat (adaptive sorts exploit the presorted runs); the two
//! cross near p ≈ 4000 on Edison. This is a pure shared-memory kernel
//! experiment — we time both options on identical inputs.

use bench::{by_scale, fmt_time, header, verdict, Table};
use sdssort::merge::kway_merge;
use std::time::Instant;
use workloads::interleaved_runs;

fn time_best_of<F: FnMut() -> u64>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let sink = f();
        best = best.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(sink);
    }
    best
}

fn main() {
    header(
        "Fig 5c — final local ordering: merging vs sorting, by chunk count p",
        "merging rises with p, sorting stays flat; crossover ~4000 (Edison)",
    );
    let n: usize = by_scale(1 << 19, 1 << 22);
    let ps: Vec<usize> = by_scale(
        vec![2, 4, 8, 32, 128, 512, 2048, 8192],
        vec![2, 4, 8, 32, 128, 512, 2048, 8192, 32768],
    );
    let reps = 3;
    let mut table = Table::new(["p (chunks)", "using merge", "using sort", "winner"]);
    let mut merge_grows = Vec::new();
    let mut sort_times = Vec::new();
    let mut crossover = None;
    for &p in &ps {
        // The post-exchange buffer: p sorted runs concatenated.
        let data = interleaved_runs(n, p, 0x5C, 0);
        let bounds: Vec<usize> = {
            // recover run boundaries (generator makes ceil(n/p)-sized runs)
            let run = n.div_ceil(p);
            let mut b: Vec<usize> = (0..=p).map(|i| (i * run).min(n)).collect();
            b.dedup();
            b
        };
        let runs: Vec<&[u64]> = bounds.windows(2).map(|w| &data[w[0]..w[1]]).collect();
        let t_merge = time_best_of(reps, || kway_merge(&runs)[n / 2]);
        let t_sort = time_best_of(reps, || {
            let mut buf = data.clone();
            buf.sort_unstable();
            buf[n / 2]
        });
        merge_grows.push(t_merge);
        sort_times.push(t_sort);
        if crossover.is_none() && t_sort < t_merge {
            crossover = Some(p);
        }
        let winner = if t_merge < t_sort { "merge" } else { "sort" };
        table.row([
            p.to_string(),
            fmt_time(t_merge),
            fmt_time(t_sort),
            winner.to_string(),
        ]);
    }
    table.print();
    if let Some(c) = crossover {
        println!("crossover: sorting overtakes merging near p = {c} (paper: ~4000 on Edison)");
    }
    let merge_rose = merge_grows.last() > merge_grows.first();
    let sort_flat = sort_times.last().unwrap() < &(sort_times.first().unwrap() * 3.0);
    verdict(
        merge_rose && sort_flat && crossover.is_some(),
        "merge time rises with p, sort time stays flat, curves cross",
    );
}
