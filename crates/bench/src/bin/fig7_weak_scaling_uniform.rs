//! Fig. 7 — weak scaling on the Uniform workload: SDS-Sort vs
//! SDS-Sort/stable vs HykSort, fixed records per rank, sweeping p.
//!
//! Paper result (0.5K–128K cores, 400 MB/rank): all three scale; SDS-Sort
//! is ~51 % faster than HykSort at the top end; SDS-Sort/stable is the
//! slowest of the three (extra pivot-selection and ordering work).

use bench::experiments::{
    emit_scaling_cells, print_threads_scaling, weak_scaling_uniform, weak_scaling_uniform_threads,
};
use bench::{
    backend, by_scale, fmt_opt_time, header, model, verdict, Backend, Emitter, Sorter, Table,
};

fn main() {
    header(
        "Fig 7 — weak scaling, Uniform workload",
        "SDS-Sort fastest (51% over HykSort at 128K); stable slowest",
    );
    let ps: Vec<usize> = by_scale(vec![8, 16, 32, 64, 128], vec![8, 16, 32, 64, 128, 256, 512]);
    let n_rank: usize = by_scale(20_000, 50_000);
    println!("records/rank: {n_rank} u64 (paper: 100M = 400 MB)\n");
    if backend() == Backend::Threads {
        // Real execution: wall-clock seconds from crates/shmem, SDS
        // variants only (the baselines are simulator-only).
        println!("backend: threads — measured wall-clock, sds variants only\n");
        let ps: Vec<usize> = ps.into_iter().filter(|&p| p <= 64).collect();
        let cells = weak_scaling_uniform_threads(&ps, n_rank);
        let mut em = Emitter::from_env("fig7");
        em.meta("workload", "uniform_u64");
        em.meta("n_rank", n_rank as u64);
        em.meta("backend", "threads");
        emit_scaling_cells(&mut em, &cells, &[]);
        let all_ok = print_threads_scaling(&ps, n_rank, &cells);
        verdict(all_ok, "both SDS variants complete at every p (wall-clock)");
        em.finish().expect("write metrics");
        return;
    }
    let cells = weak_scaling_uniform(&ps, n_rank, model());
    let mut em = Emitter::from_env("fig7");
    em.meta("workload", "uniform_u64");
    em.meta("n_rank", n_rank as u64);
    em.meta("backend", "sim");
    emit_scaling_cells(&mut em, &cells, &[]);

    let mut table = Table::new([
        "p",
        "HykSort",
        "SDS-Sort",
        "SDS-Sort/stable",
        "SDS throughput",
    ]);
    let mut sds_beats_hyk_top = false;
    let mut stable_slowest_top = false;
    for &p in &ps {
        let get = |s: Sorter| {
            cells
                .iter()
                .find(|c| c.p == p && c.sorter == s)
                .and_then(|c| c.outcome.time_s)
        };
        let (hyk, sds, stb) = (
            get(Sorter::HykSort),
            get(Sorter::Sds),
            get(Sorter::SdsStable),
        );
        if p == *ps.last().expect("non-empty sweep") {
            if let (Some(h), Some(s), Some(st)) = (hyk, sds, stb) {
                sds_beats_hyk_top = s < h;
                stable_slowest_top = st >= s;
                println!(
                    "at p = {p}: SDS-Sort is {:.0}% faster than HykSort (paper: 51%)",
                    (h / s - 1.0) * 100.0
                );
            }
        }
        // The paper's headline metric: bytes sorted per minute (it reports
        // 111-117 TB/min at 128K cores on 52.4 TB).
        let throughput = sds.map_or_else(
            || "-".into(),
            |t| {
                let bytes = (p * n_rank * 8) as f64;
                format!("{:.2} GB/min", bytes / t * 60.0 / 1e9)
            },
        );
        table.row([
            p.to_string(),
            fmt_opt_time(hyk),
            fmt_opt_time(sds),
            fmt_opt_time(stb),
            throughput,
        ]);
    }
    table.print();
    verdict(
        sds_beats_hyk_top && stable_slowest_top,
        "SDS-Sort beats HykSort at the largest p; stable variant trails the fast one",
    );
    em.finish().expect("write metrics");
}
