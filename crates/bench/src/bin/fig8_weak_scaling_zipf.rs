//! Fig. 8 — weak scaling on the Zipf workload under per-rank memory
//! budgets.
//!
//! Paper result: HykSort fails with out-of-memory at every scale (the
//! histogram partition concentrates the duplicated values), while
//! SDS-Sort and SDS-Sort/stable deliver times similar to the uniform
//! workload. We use α = 1.4 (δ ≈ 32 %) from the paper's Zipf(0.7–2.0)
//! band and a 3.5×-input budget per rank.

use bench::experiments::{
    emit_scaling_cells, print_threads_scaling, weak_scaling_zipf, weak_scaling_zipf_threads,
};
use bench::{
    backend, by_scale, fmt_opt_time, header, model, verdict, Backend, Emitter, Sorter, Table,
};

fn main() {
    header(
        "Fig 8 — weak scaling, Zipf workload (memory budget enforced)",
        "HykSort OOMs at every p; SDS variants run at uniform-like speed",
    );
    // The sweep starts at p = 16: duplicate concentration is proportional
    // to δ·p, and below that the budget still fits HykSort's imbalance
    // (the paper's sweep starts at 512 ranks, far past this point).
    let ps: Vec<usize> = by_scale(vec![16, 32, 64, 128], vec![16, 32, 64, 128, 256, 512]);
    let n_rank: usize = by_scale(20_000, 50_000);
    println!("records/rank: {n_rank} u64, α = 1.4 (δ ≈ 32%), budget = 3.5× input/rank\n");
    if backend() == Backend::Threads {
        // Real execution: wall-clock seconds from crates/shmem, SDS
        // variants only, no simulated memory budget (host RAM is real).
        println!("backend: threads — measured wall-clock, sds variants only, no budget\n");
        let ps: Vec<usize> = ps.into_iter().filter(|&p| p <= 64).collect();
        let cells = weak_scaling_zipf_threads(&ps, n_rank);
        let mut em = Emitter::from_env("fig8");
        em.meta("workload", "zipf_keys");
        em.meta("alpha", 1.4);
        em.meta("n_rank", n_rank as u64);
        em.meta("backend", "threads");
        emit_scaling_cells(&mut em, &cells, &[]);
        let all_ok = print_threads_scaling(&ps, n_rank, &cells);
        verdict(all_ok, "both SDS variants complete at every p (wall-clock)");
        em.finish().expect("write metrics");
        return;
    }
    let cells = weak_scaling_zipf(&ps, n_rank, model());
    let mut em = Emitter::from_env("fig8");
    em.meta("workload", "zipf_keys");
    em.meta("alpha", 1.4);
    em.meta("n_rank", n_rank as u64);
    em.meta("backend", "sim");
    emit_scaling_cells(&mut em, &cells, &[]);

    let mut table = Table::new([
        "p",
        "HykSort",
        "SDS-Sort",
        "SDS-Sort/stable",
        "SDS throughput",
    ]);
    let mut hyk_all_oom = true;
    let mut sds_all_ok = true;
    for &p in &ps {
        let get = |s: Sorter| {
            cells
                .iter()
                .find(|c| c.p == p && c.sorter == s)
                .and_then(|c| c.outcome.time_s)
        };
        let (hyk, sds, stb) = (
            get(Sorter::HykSort),
            get(Sorter::Sds),
            get(Sorter::SdsStable),
        );
        if hyk.is_some() {
            hyk_all_oom = false;
        }
        if sds.is_none() || stb.is_none() {
            sds_all_ok = false;
        }
        let throughput = sds.map_or_else(
            || "-".into(),
            |t| {
                let bytes = (p * n_rank * 8) as f64;
                format!("{:.2} GB/min", bytes / t * 60.0 / 1e9)
            },
        );
        table.row([
            p.to_string(),
            fmt_opt_time(hyk),
            fmt_opt_time(sds),
            fmt_opt_time(stb),
            throughput,
        ]);
    }
    table.print();
    verdict(
        hyk_all_oom && sds_all_ok,
        "HykSort out-of-memory at every scale; both SDS variants complete",
    );
    em.finish().expect("write metrics");
}
