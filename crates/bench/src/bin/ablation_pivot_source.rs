//! Ablation — pivot *source* × partition *rule* on skewed data.
//!
//! §2.4 argues histogram-based selection "might need secondary sorting
//! keys" for skewed data. This harness decomposes that claim: the failure
//! is not in the selection but in pairing any selection with a
//! duplicate-blind partition. Four combinations on δ ≈ 32 % Zipf under a
//! memory budget:
//!
//! * sampling + skew-aware  (SDS-Sort)            → survives
//! * histogram + skew-aware (SDS with HykSort's selector) → survives
//! * sampling + classic     (classical PSRS)      → OOM
//! * histogram + classic    (HykSort's pairing)   → OOM

use bench::{by_scale, fmt_opt_time, fmt_rdfa, header, model, verdict, Table};
use mpisim::World;
use sdssort::{rdfa, sds_sort, PartitionStrategy, PivotSource, SdsConfig};
use workloads::zipf_keys;

fn run(
    p: usize,
    n_rank: usize,
    source: PivotSource,
    partition: PartitionStrategy,
    budget: usize,
) -> (Option<f64>, f64) {
    let m = model();
    let mut cfg = SdsConfig::modeled(m);
    cfg.tau_m_bytes = 0;
    cfg.tau_o = 0;
    cfg.pivot_source = source;
    cfg.partition = partition;
    let world = World::new(p)
        .cores_per_node(24)
        .compute_scale(0.0)
        .memory_budget(budget);
    let report = world.run(|comm| {
        let data = zipf_keys(n_rank, 1.4, 0xAB5, comm.rank());
        sds_sort(comm, data, &cfg).map(|o| o.data.len())
    });
    if report.results.iter().any(Result::is_err) {
        return (None, f64::INFINITY);
    }
    let loads: Vec<usize> = report.results.into_iter().map(|r| r.expect("ok")).collect();
    (Some(report.makespan), rdfa(&loads))
}

fn main() {
    header(
        "Ablation — pivot source x partition rule on Zipf α=1.4 (δ ≈ 32%)",
        "§2.4: histogram selection is only unsafe when paired with a duplicate-blind partition",
    );
    let p = 64;
    let n_rank: usize = by_scale(2000, 10_000);
    let budget = n_rank * 8 * 7 / 2;
    println!("p = {p}, {n_rank} u64/rank, budget = 3.5x input\n");

    let combos = [
        (
            "sampling + skew-aware",
            PivotSource::Sampling,
            PartitionStrategy::SkewAware,
        ),
        (
            "histogram + skew-aware",
            PivotSource::Histogram,
            PartitionStrategy::SkewAware,
        ),
        (
            "sampling + classic",
            PivotSource::Sampling,
            PartitionStrategy::Classic,
        ),
        (
            "histogram + classic",
            PivotSource::Histogram,
            PartitionStrategy::Classic,
        ),
    ];
    let mut table = Table::new(["combination", "time", "RDFA"]);
    let mut outcomes = Vec::new();
    for (label, src, part) in combos {
        let (t, r) = run(p, n_rank, src, part, budget);
        outcomes.push(t.is_some());
        table.row([label.to_string(), fmt_opt_time(t), fmt_rdfa(r)]);
    }
    table.print();
    verdict(
        outcomes == [true, true, false, false],
        "both skew-aware pairings survive; both classic pairings OOM — the partition is the fix",
    );
}
