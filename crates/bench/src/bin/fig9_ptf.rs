//! Fig. 9 — sorting Palomar Transient Factory data (δ ≈ 28 %) on 192
//! ranks, with per-phase breakdown.
//!
//! Paper result: HykSort finishes (the 27 GB dataset fits in one node's
//! memory despite RDFA ≈ 33) but is 3.4× slower than SDS-Sort and 2.2×
//! slower than SDS-Sort/stable; the slowdown is concentrated in HykSort's
//! exchange+ordering phase, which one overloaded rank serializes. Note the
//! paper's footnote: HykSort's exchange bar *contains* its local ordering
//! (overlapped), and ours does the same.

use bench::experiments::{emit_outcome_rows, ptf_experiment};
use bench::{by_scale, fmt_time, header, model, verdict, Emitter, Sorter, Table};

fn main() {
    header(
        "Fig 9 — PTF real-bogus scores (δ ≈ 28%), 192 ranks, phase breakdown",
        "SDS-Sort 3.4x over HykSort; SDS/stable 2.2x; HykSort RDFA ≈ 33",
    );
    let p = 192;
    let n_rank: usize = by_scale(4000, 40_000);
    println!("records/rank: {n_rank} (f32 score key + u64 object id)\n");
    let rows = ptf_experiment(p, n_rank, model());
    let mut em = Emitter::from_env("fig9");
    em.meta("workload", "ptf_scores");
    em.meta("n_rank", n_rank as u64);
    emit_outcome_rows(&mut em, p, &rows, &[]);

    let mut table = Table::new([
        "sorter",
        "pivot selection",
        "exchange",
        "local-ordering",
        "other",
        "total",
    ]);
    let mut totals = std::collections::HashMap::new();
    for (sorter, outcome) in &rows {
        let ph = outcome.phases;
        let total = outcome.time_s.expect("no budget in the PTF experiment");
        totals.insert(*sorter, total);
        table.row([
            sorter.label().to_string(),
            fmt_time(ph.pivot_s),
            fmt_time(ph.exchange_s),
            fmt_time(ph.local_order_s),
            fmt_time(ph.other_s),
            fmt_time(total),
        ]);
    }
    table.print();
    let hyk = totals[&Sorter::HykSort];
    let sds = totals[&Sorter::Sds];
    let stb = totals[&Sorter::SdsStable];
    println!(
        "\nspeedup over HykSort — SDS-Sort: {:.2}x (paper 3.4x), SDS-Sort/stable: {:.2}x (paper 2.2x)",
        hyk / sds,
        hyk / stb
    );
    for (sorter, outcome) in &rows {
        println!("RDFA {}: {:.4}", sorter.label(), outcome.rdfa());
    }
    let hyk_rdfa = rows
        .iter()
        .find(|(s, _)| *s == Sorter::HykSort)
        .map(|(_, o)| o.rdfa())
        .expect("hyksort row");
    let sds_rdfa = rows
        .iter()
        .find(|(s, _)| *s == Sorter::Sds)
        .map(|(_, o)| o.rdfa())
        .expect("sds row");
    verdict(
        hyk / sds > 1.5 && hyk / stb > 1.2 && hyk_rdfa > 5.0 * sds_rdfa,
        "both SDS variants beat HykSort substantially; HykSort's RDFA is an order worse",
    );
    em.finish().expect("write metrics");
}
