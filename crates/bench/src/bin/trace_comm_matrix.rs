//! Communication-structure analysis: what node-level merging does to the
//! message matrix.
//!
//! §2.3's argument quantified: without merging, an all-to-all between
//! `NODES` nodes of `c` cores each crosses the network with up to
//! `c² · NODES·(NODES-1)` messages; with merging, only the leaders talk
//! across nodes (`NODES·(NODES-1)` messages), at the price of the
//! node-local gather. This harness runs the full SDS-Sort pipeline with
//! tracing enabled and prints the per-phase traffic, inter-node vs
//! intra-node.

use bench::{header, verdict, Table};
use mpisim::{NetModel, World};
use sdssort::{sds_sort, SdsConfig};
use workloads::uniform_u64;

const CORES: usize = 6;
const NODES: usize = 4;

fn traffic(tau_m: usize) -> Vec<(String, u64, u64, u64)> {
    let p = CORES * NODES;
    let world = World::new(p)
        .cores_per_node(CORES)
        .net(NetModel::edison())
        .trace(true);
    let mut cfg = SdsConfig::default();
    cfg.tau_m_bytes = tau_m;
    cfg.tau_o = 0;
    let report = world.run(|comm| {
        let data = uniform_u64(2000, 0x7C, comm.rank());
        sds_sort(comm, data, &cfg).expect("no budget").data.len()
    });
    report
        .trace_phases
        .iter()
        .map(|(name, t)| {
            let inter = t.internode_messages(&report.topology);
            (name.clone(), t.total_messages(), inter, t.total_bytes())
        })
        .collect()
}

fn main() {
    header(
        "Trace — communication matrix with and without node merging",
        "merging collapses the cross-node all-to-all onto node leaders (§2.3)",
    );
    println!("{NODES} nodes x {CORES} cores, 2000 u64/rank\n");

    let merged = traffic(usize::MAX);
    let direct = traffic(0);

    println!("with node merging (τm = ∞):");
    let mut t1 = Table::new(["phase", "messages", "inter-node", "bytes"]);
    for (name, msgs, inter, bytes) in &merged {
        t1.row([
            name.clone(),
            msgs.to_string(),
            inter.to_string(),
            bytes.to_string(),
        ]);
    }
    t1.print();

    println!("\nwithout node merging (τm = 0):");
    let mut t2 = Table::new(["phase", "messages", "inter-node", "bytes"]);
    for (name, msgs, inter, bytes) in &direct {
        t2.row([
            name.clone(),
            msgs.to_string(),
            inter.to_string(),
            bytes.to_string(),
        ]);
    }
    t2.print();

    let inter_of = |rows: &[(String, u64, u64, u64)], phase: &str| {
        rows.iter()
            .find(|(n, ..)| n == phase)
            .map_or(0, |&(_, _, i, _)| i)
    };
    let exch_merged = inter_of(&merged, "exchange");
    let exch_direct = inter_of(&direct, "exchange");
    println!(
        "\ninter-node exchange messages: merged {exch_merged} vs direct {exch_direct} \
         ({}x reduction; structural bound: c^2 = {})",
        exch_direct.checked_div(exch_merged).unwrap_or(0),
        CORES * CORES
    );
    verdict(
        exch_merged * 2 < exch_direct,
        "node merging cuts inter-node exchange messages by a large factor",
    );
}
