//! Fig. 5a — all-to-all exchange time with vs without node-level merging,
//! sweeping the data size per node.
//!
//! Paper result (Edison): merging the node's data onto its leader before
//! the exchange wins while the per-node volume is small (< ~160 MB,
//! amortizing per-message overhead), and loses for large volumes (a single
//! leader core cannot saturate the network that 24 cores can). We sweep
//! per-node volume at our reduced scale and report the modelled exchange
//! time for both strategies; the reproduced *shape* is "merging wins left
//! of a crossover, loses right of it".

use bench::{by_scale, fmt_bytes, fmt_time, header, model, modeled_world, verdict, Table};
use sdssort::node_merge::node_merge;
use sdssort::partition::{cuts_to_counts, fast_cuts};
use workloads::uniform_u64;

const CORES: usize = 24;
const NODES: usize = 4;

/// Modelled time of the exchange phase over `NODES` nodes of `CORES`
/// ranks, with `n_rank` u64 records per rank.
fn exchange_time(n_rank: usize, merge: bool) -> f64 {
    let p = CORES * NODES;
    let m = model();
    let world = modeled_world(p);
    let report = world.run(|comm| {
        let mut data = uniform_u64(n_rank, 5, comm.rank());
        data.sort_unstable();
        comm.barrier(); // measure from a common start
        let t0 = comm.clock().now();
        if merge {
            let (cg, cl) = comm.refine_comm();
            let node_n = cl.allreduce(data.len(), |a, b| a + b);
            let merged = node_merge(&cl, &data);
            if cl.rank() == 0 {
                comm.clock().charge(m.kway_merge_cost(node_n, cl.size()));
            }
            if let (Some(cg), Some(merged)) = (cg, merged) {
                let pl = cg.size();
                let pivots: Vec<u64> = (1..pl as u64).map(|i| i * (u64::MAX / pl as u64)).collect();
                let cuts = fast_cuts(&merged, &pivots, None);
                cg.alltoallv(&merged, &cuts_to_counts(&cuts));
            }
        } else {
            let pivots: Vec<u64> = (1..p as u64).map(|i| i * (u64::MAX / p as u64)).collect();
            let cuts = fast_cuts(&data, &pivots, None);
            comm.alltoallv(&data, &cuts_to_counts(&cuts));
        }
        comm.clock().now() - t0
    });
    report.results.into_iter().fold(0.0f64, f64::max)
}

fn main() {
    header(
        "Fig 5a — exchange time, node merging vs direct, by per-node size",
        "merging wins below ~160 MB/node on Edison, loses above",
    );
    // Per-node volumes, scaled from the paper's 4 MB – 4 GB sweep.
    let sizes: Vec<usize> = by_scale(
        vec![16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20],
        vec![
            16 << 10,
            64 << 10,
            256 << 10,
            1 << 20,
            4 << 20,
            16 << 20,
            64 << 20,
            256 << 20,
        ],
    );
    let mut table = Table::new(["per-node size", "merging", "no-merging", "winner"]);
    let mut crossover: Option<usize> = None;
    let mut merge_won_small = false;
    let mut direct_won_large = false;
    for (i, &per_node) in sizes.iter().enumerate() {
        let n_rank = per_node / CORES / 8;
        let t_merge = exchange_time(n_rank, true);
        let t_direct = exchange_time(n_rank, false);
        let winner = if t_merge < t_direct {
            "merging"
        } else {
            "no-merging"
        };
        if i == 0 && t_merge < t_direct {
            merge_won_small = true;
        }
        if i == sizes.len() - 1 && t_direct < t_merge {
            direct_won_large = true;
        }
        if crossover.is_none() && t_direct < t_merge {
            crossover = Some(per_node);
        }
        table.row([
            fmt_bytes(per_node),
            fmt_time(t_merge),
            fmt_time(t_direct),
            winner.to_string(),
        ]);
    }
    table.print();
    if let Some(c) = crossover {
        println!(
            "crossover: merging stops paying off near {} per node (paper: ~160 MB on Edison)",
            fmt_bytes(c)
        );
    }
    verdict(
        merge_won_small && direct_won_large,
        "merging wins for small per-node volumes and loses for large ones",
    );
}
