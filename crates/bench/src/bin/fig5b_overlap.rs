//! Fig. 5b — overlapping the all-to-all exchange with local ordering vs
//! not overlapping, sweeping the process count.
//!
//! Paper result (Edison): overlapping is faster below ~4096 processes
//! (merging arrived chunks hides network time) and slower above (the
//! progress engine for thousands of outstanding asynchronous requests
//! competes with the computation). Our runtime charges an
//! `MPI_Test`-sweep cost per completion (`NetModel::async_test_overhead`),
//! which grows quadratically with p and reproduces the crossover.

use bench::{by_scale, fmt_time, header, model, verdict, Table};
use mpisim::World;
use sdssort::{sds_sort, ComputeModel, SdsConfig};
use workloads::uniform_u64;

fn run(p: usize, n_rank: usize, overlap: bool, m: ComputeModel) -> f64 {
    let mut cfg = SdsConfig::modeled(m);
    cfg.tau_m_bytes = 0;
    cfg.tau_o = if overlap { usize::MAX } else { 0 };
    // One rank per node: the exchange crosses the network at every p
    // (the paper likewise spreads ranks across nodes as p grows).
    let world = World::new(p).cores_per_node(1).compute_scale(0.0);
    let report = world.run(|comm| {
        let data = uniform_u64(n_rank, 0x5B, comm.rank());
        sds_sort(comm, data, &cfg)
            .expect("no budget")
            .stats
            .total_s()
    });
    report.makespan
}

fn main() {
    header(
        "Fig 5b — overlap vs no-overlap of exchange and local ordering, by p",
        "overlap faster below ~4K processes, slower above (Edison)",
    );
    let ps: Vec<usize> = by_scale(
        vec![4, 8, 16, 32, 64, 128],
        vec![4, 8, 16, 32, 64, 128, 256, 512],
    );
    let n_rank = by_scale(20_000, 50_000);
    // One calibration for the whole sweep: the modelled makespans are then
    // fully deterministic and comparable across cells.
    let m = model();
    let mut table = Table::new(["p", "overlapping", "no-overlapping", "winner"]);
    let mut overlap_wins_small = false;
    let mut sync_wins_large = false;
    let mut crossover = None;
    for (i, &p) in ps.iter().enumerate() {
        let t_over = run(p, n_rank, true, m);
        let t_sync = run(p, n_rank, false, m);
        let winner = if t_over < t_sync {
            "overlapping"
        } else {
            "no-overlapping"
        };
        if i == 0 {
            overlap_wins_small = t_over < t_sync;
        }
        if i == ps.len() - 1 {
            sync_wins_large = t_sync < t_over;
        }
        if crossover.is_none() && t_sync < t_over {
            crossover = Some(p);
        }
        table.row([
            p.to_string(),
            fmt_time(t_over),
            fmt_time(t_sync),
            winner.to_string(),
        ]);
    }
    table.print();
    if let Some(c) = crossover {
        println!("crossover: overlapping stops paying off near p = {c} (paper: ~4096 on Edison)");
    }
    verdict(
        overlap_wins_small && sync_wins_large,
        "overlap wins at small p, synchronous wins at large p",
    );
}
