//! Table 3 — RDFA (max partition / average partition) of every sorter in
//! the weak-scaling sweeps, Uniform and Zipf.
//!
//! Paper result: on Uniform all sorters sit near 1.0 (HykSort marginally
//! better at mid scales, SDS slightly rising with p but ≤ ~1.06); on Zipf
//! HykSort is ∞ (OOM) everywhere while the SDS variants stay below ~2.7,
//! and the fast and stable variants report (near-)identical RDFA.

use bench::experiments::{
    emit_scaling_cells, weak_scaling_uniform, weak_scaling_zipf, ScalingCell,
};
use bench::{by_scale, fmt_rdfa, header, model, verdict, Emitter, Sorter, Table};

fn print_block(name: &str, ps: &[usize], cells: &[ScalingCell]) -> (bool, Vec<f64>) {
    println!("\n{name}:");
    let mut table = Table::new(["p", "HykSort", "SDS-Sort", "SDS-Sort/stable"]);
    let mut hyk_inf_everywhere = true;
    let mut sds_rdfa = Vec::new();
    for &p in ps {
        let get = |s: Sorter| {
            cells
                .iter()
                .find(|c| c.p == p && c.sorter == s)
                .map_or(f64::NAN, |c| c.outcome.rdfa())
        };
        let (h, s, st) = (
            get(Sorter::HykSort),
            get(Sorter::Sds),
            get(Sorter::SdsStable),
        );
        if h.is_finite() {
            hyk_inf_everywhere = false;
        }
        sds_rdfa.push(s);
        sds_rdfa.push(st);
        table.row([p.to_string(), fmt_rdfa(h), fmt_rdfa(s), fmt_rdfa(st)]);
    }
    table.print();
    (hyk_inf_everywhere, sds_rdfa)
}

fn main() {
    header(
        "Table 3 — RDFA of the scaling tests (Uniform and Zipf)",
        "Uniform: all ≈1; Zipf: HykSort = inf (OOM), SDS ≤ ~2.7",
    );
    // p ≥ 16 so the Zipf budget regime matches Fig. 8 (see that harness).
    let ps: Vec<usize> = by_scale(vec![16, 32, 64, 128], vec![16, 32, 64, 128, 256]);
    let n_rank: usize = by_scale(20_000, 50_000);
    let m = model();

    let uni = weak_scaling_uniform(&ps, n_rank, m);
    let (_, uni_rdfa) = print_block("Uniform", &ps, &uni);
    let zipf = weak_scaling_zipf(&ps, n_rank, m);
    let (hyk_inf, zipf_rdfa) = print_block("Zipf (α = 1.4)", &ps, &zipf);

    let mut em = Emitter::from_env("table3");
    em.meta("n_rank", n_rank as u64);
    emit_scaling_cells(&mut em, &uni, &[("workload", "uniform".into())]);
    emit_scaling_cells(&mut em, &zipf, &[("workload", "zipf".into())]);

    let uni_near_one = uni_rdfa.iter().all(|&r| r.is_finite() && r < 1.3);
    let zipf_bounded = zipf_rdfa.iter().all(|&r| r.is_finite() && r <= 4.0);
    verdict(
        uni_near_one && hyk_inf && zipf_bounded,
        "Uniform RDFA ≈ 1 for SDS; Zipf RDFA: HykSort = inf, SDS bounded (Theorem 1)",
    );
    em.finish().expect("write metrics");
}
