//! Fig. 6a — shared-memory parallel merge: SDS-Sort's skew-aware
//! partitioned merge vs the HykSort-style sampling merge, on uniform and
//! Zipf data, sweeping data size.
//!
//! Paper result: the sampling-based merge degrades on Zipf data (one core
//! inherits all the duplicates) while the skew-aware merge delivers the
//! same time on both workloads.
//!
//! Method note: this host has too few cores to surface a 24-way imbalance
//! in wall-clock time, so we report the parallel *critical path* — the
//! maximum over parts of the measured sequential merge time of that part —
//! which is the parallel merge time on an unloaded 24-core node (the
//! paper's Edison node). Part boundaries come from the real
//! `merge_cuts` partitioner for each strategy.

use bench::{by_scale, fmt_time, header, verdict, Table};
use sdssort::local_sort::merge_cuts;
use sdssort::merge::kway_merge;
use sdssort::MergeStrategy;
use std::time::Instant;
use workloads::uniform_u64;

/// Parts = cores of an Edison node.
const PARTS: usize = 24;

fn chunks_of(data: &[u64], c: usize) -> Vec<Vec<u64>> {
    let len = data.len().div_ceil(c);
    data.chunks(len)
        .map(|ch| {
            let mut v = ch.to_vec();
            v.sort_unstable();
            v
        })
        .collect()
}

/// Critical-path time of the partitioned parallel merge: max over parts of
/// that part's sequential k-way merge time (best of `reps`).
fn critical_path(chunks: &[Vec<u64>], strategy: MergeStrategy, reps: usize) -> f64 {
    let refs: Vec<&[u64]> = chunks.iter().map(Vec::as_slice).collect();
    let cuts = merge_cuts(&refs, PARTS, strategy);
    let mut worst = 0.0f64;
    for part in 0..PARTS {
        let runs: Vec<&[u64]> = refs
            .iter()
            .zip(cuts.iter())
            .map(|(chunk, c)| &chunk[c[part]..c[part + 1]])
            .collect();
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let out = kway_merge(&runs);
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(out.len());
        }
        worst = worst.max(best);
    }
    worst
}

fn main() {
    header(
        "Fig 6a — parallel merge critical path: skew-aware vs sampling merge",
        "sampling merge degrades on Zipf; skew-aware stays flat on both",
    );
    println!("parts (node cores): {PARTS}; chunks merged: {PARTS}\n");
    let sizes: Vec<usize> = by_scale(
        vec![1 << 20, 1 << 21, 1 << 22],
        vec![1 << 21, 1 << 22, 1 << 23, 1 << 24],
    );
    let mut table = Table::new([
        "records",
        "SDS + Uniform",
        "SDS + Zipf",
        "HykStyle + Uniform",
        "HykStyle + Zipf",
    ]);
    let mut hyk_penalty = Vec::new();
    let mut sds_ratio = Vec::new();
    for &n in &sizes {
        let uni = chunks_of(&uniform_u64(n, 0x6A, 0), PARTS);
        // α = 2.1 → δ ≈ 63 %: Table 1's heaviest-duplication setting.
        let zip = chunks_of(
            &workloads::ZipfGen::with_delta_target(2.1, 63.0).keys(n, 0x6A, 0),
            PARTS,
        );
        let sds_u = critical_path(&uni, MergeStrategy::SkewAware, 2);
        let sds_z = critical_path(&zip, MergeStrategy::SkewAware, 2);
        let hyk_u = critical_path(&uni, MergeStrategy::Classic, 2);
        let hyk_z = critical_path(&zip, MergeStrategy::Classic, 2);
        hyk_penalty.push(hyk_z / hyk_u);
        sds_ratio.push(sds_z / sds_u.max(1e-9));
        table.row([
            n.to_string(),
            fmt_time(sds_u),
            fmt_time(sds_z),
            fmt_time(hyk_u),
            fmt_time(hyk_z),
        ]);
    }
    table.print();
    let hyk_avg = hyk_penalty.iter().sum::<f64>() / hyk_penalty.len() as f64;
    let sds_avg = sds_ratio.iter().sum::<f64>() / sds_ratio.len() as f64;
    println!(
        "\nZipf/Uniform critical-path ratio — sampling: {hyk_avg:.2}x, skew-aware: {sds_avg:.2}x"
    );
    verdict(
        hyk_avg > 2.0 && sds_avg < 1.6,
        "sampling merge degrades on skewed data, skew-aware merge does not",
    );
}
