//! Table 4 — RDFA on the two science datasets.
//!
//! Paper values: PTF — HykSort 32.68, SDS-Sort 1.9908, SDS-Sort/stable
//! 1.6908; Cosmology — HykSort ∞ (OOM), both SDS variants 1.3962.

use bench::experiments::{cosmology_experiment, emit_outcome_rows, ptf_experiment};
use bench::{by_scale, fmt_rdfa, header, model, verdict, Emitter, Sorter, Table};

fn main() {
    header(
        "Table 4 — RDFA on PTF and Cosmology data",
        "PTF: HykSort 32.7 vs SDS ~2; Cosmology: HykSort inf vs SDS 1.40",
    );
    let m = model();
    let ptf = ptf_experiment(192, by_scale(4000, 40_000), m);
    let cosmo = cosmology_experiment(512, by_scale(2000, 10_000), m);

    let mut em = Emitter::from_env("table4");
    emit_outcome_rows(&mut em, 192, &ptf, &[("dataset", "ptf".into())]);
    emit_outcome_rows(&mut em, 512, &cosmo, &[("dataset", "cosmology".into())]);

    let mut table = Table::new(["dataset", "HykSort", "SDS-Sort", "SDS-Sort/stable"]);
    let get = |rows: &[(Sorter, bench::RunOutcome)], s: Sorter| {
        rows.iter()
            .find(|(x, _)| *x == s)
            .map(|(_, o)| o.rdfa())
            .expect("row")
    };
    table.row([
        "PTF".to_string(),
        fmt_rdfa(get(&ptf, Sorter::HykSort)),
        fmt_rdfa(get(&ptf, Sorter::Sds)),
        fmt_rdfa(get(&ptf, Sorter::SdsStable)),
    ]);
    table.row([
        "Cosmology".to_string(),
        fmt_rdfa(get(&cosmo, Sorter::HykSort)),
        fmt_rdfa(get(&cosmo, Sorter::Sds)),
        fmt_rdfa(get(&cosmo, Sorter::SdsStable)),
    ]);
    table.print();

    let ptf_ok = get(&ptf, Sorter::HykSort) > 10.0
        && get(&ptf, Sorter::Sds) < 3.0
        && get(&ptf, Sorter::SdsStable) < 3.0;
    let cosmo_ok = get(&cosmo, Sorter::HykSort).is_infinite()
        && get(&cosmo, Sorter::Sds) < 2.0
        && get(&cosmo, Sorter::SdsStable) < 2.0;
    verdict(
        ptf_ok && cosmo_ok,
        "PTF: HykSort order-of-magnitude imbalance, SDS small; Cosmology: HykSort inf, SDS ~1.4",
    );
    em.finish().expect("write metrics");
}
