//! Ablation — pivot-selection machinery.
//!
//! §2.4 argues for a distributed (bitonic) sort of the pooled samples over
//! gathering them on one rank. This harness times both paths on the same
//! sample sets across p, verifies they produce identical pivots, and shows
//! where the gather path's O(p²) root bottleneck overtakes the distributed
//! sort's log-round exchanges.

use bench::{by_scale, fmt_time, header, model, verdict, Table};
use mpisim::World;
use sdssort::pivots::{select_global_pivots, PivotMethod};
use sdssort::sampling::regular_sample;
use workloads::uniform_u64;

fn time_method(p: usize, method: PivotMethod) -> (f64, Vec<u64>) {
    let m = model();
    let _ = m;
    let world = World::new(p).cores_per_node(24).compute_scale(0.0);
    let report = world.run(|comm| {
        let mut data = uniform_u64(4096, 0xAB2, comm.rank());
        data.sort_unstable();
        let samples = regular_sample(&data, p - 1);
        comm.barrier();
        let t0 = comm.clock().now();
        let pivots = select_global_pivots(comm, &samples, method);
        (comm.clock().now() - t0, pivots)
    });
    let t = report.results.iter().map(|r| r.0).fold(0.0f64, f64::max);
    let pivots = report.results.into_iter().next().expect("non-empty").1;
    (t, pivots)
}

fn main() {
    header(
        "Ablation — distributed vs gather-based global pivot selection",
        "§2.4: avoid gathering p(p-1) samples on one rank at large p",
    );
    let ps: Vec<usize> = by_scale(vec![8, 16, 32, 64, 128], vec![8, 16, 32, 64, 128, 256]);
    let mut table = Table::new([
        "p",
        "samples pooled",
        "distributed",
        "gather",
        "identical pivots",
    ]);
    let mut agree_everywhere = true;
    let mut dist_wins_large = false;
    for &p in &ps {
        let (t_dist, piv_dist) = time_method(p, PivotMethod::Distributed);
        let (t_gath, piv_gath) = time_method(p, PivotMethod::Gather);
        let same = piv_dist == piv_gath;
        agree_everywhere &= same;
        if p == *ps.last().expect("non-empty") {
            dist_wins_large = t_dist < t_gath;
        }
        table.row([
            p.to_string(),
            (p * (p - 1)).to_string(),
            fmt_time(t_dist),
            fmt_time(t_gath),
            same.to_string(),
        ]);
    }
    table.print();
    verdict(
        agree_everywhere && dist_wins_large,
        "methods agree exactly; the distributed sorter wins at the largest p",
    );
}
