//! Table 1 — sequential `std::sort` vs `std::stable_sort` on 1 GB of
//! floats, uniform and Zipf-skewed.
//!
//! Paper observations: (a) the unstable sort is faster than the stable
//! sort everywhere; (b) sorting skewed data is *faster* than uniform, and
//! gets faster as the replication ratio δ rises (duplicate-heavy inputs
//! hit the equal-element fast paths). We use Rust's `sort_unstable`
//! (ipnsort) and `sort` (driftsort) on `OrderedF32` keys, scaled from the
//! paper's 268M floats.

use bench::{by_scale, fmt_time, header, verdict, Table};
use sdssort::OrderedF32;
use std::time::Instant;
use workloads::{uniform_f32, zipf_keys};

fn time_sort(data: &[OrderedF32], stable: bool) -> f64 {
    let mut buf = data.to_vec();
    let t0 = Instant::now();
    if stable {
        buf.sort();
    } else {
        buf.sort_unstable();
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(&buf);
    dt
}

fn main() {
    header(
        "Table 1 — std::sort vs std::stable_sort, uniform + Zipf floats",
        "unstable < stable everywhere; higher skew (δ) sorts faster",
    );
    let n: usize = by_scale(1 << 22, 1 << 24);
    println!("records: {n} f32 keys (paper: 268M = 1 GB)\n");

    // (label, α, paper δ%) — Table 1's columns.
    let workloads: Vec<(String, Option<f64>, &str)> = vec![
        ("Uniform".to_string(), None, "~0"),
        ("Zipf 0.7".to_string(), Some(0.7), "2"),
        ("Zipf 1.4".to_string(), Some(1.4), "32"),
        ("Zipf 2.1".to_string(), Some(2.1), "63"),
    ];

    let mut table = Table::new(["workload", "δ (paper %)", "std::sort", "std::stable_sort"]);
    let mut unstable_times = Vec::new();
    let mut stable_slower_everywhere = true;
    for (label, alpha, delta) in &workloads {
        let data: Vec<OrderedF32> = match alpha {
            None => uniform_f32(n, 0x7AB1, 0)
                .into_iter()
                .map(OrderedF32::new)
                .collect(),
            Some(a) => {
                // Table 1 cites α = 1.4 → δ 32 %, 2.1 → 63 %; those need
                // explicit universes (see workloads::zipf).
                let keys = match *a {
                    a if (a - 1.4).abs() < 1e-9 => {
                        workloads::ZipfGen::with_delta_target(1.4, 32.0).keys(n, 0x7AB1, 0)
                    }
                    a if (a - 2.1).abs() < 1e-9 => {
                        workloads::ZipfGen::with_delta_target(2.1, 63.0).keys(n, 0x7AB1, 0)
                    }
                    a => zipf_keys(n, a, 0x7AB1, 0),
                };
                keys.into_iter()
                    .map(|k| OrderedF32::new(k as f32))
                    .collect()
            }
        };
        let t_unstable = time_sort(&data, false);
        let t_stable = time_sort(&data, true);
        if t_stable < t_unstable {
            stable_slower_everywhere = false;
        }
        unstable_times.push(t_unstable);
        table.row([
            label.clone(),
            delta.to_string(),
            fmt_time(t_unstable),
            fmt_time(t_stable),
        ]);
    }
    table.print();
    let skew_faster = unstable_times[3] < unstable_times[0];
    let monotone_with_skew =
        unstable_times[1] >= unstable_times[2] && unstable_times[2] >= unstable_times[3] * 0.8;
    verdict(
        stable_slower_everywhere && skew_faster,
        "stable sort slower than unstable; high-skew data sorts faster than uniform",
    );
    if !monotone_with_skew {
        println!("note: per-α monotonicity is noisier at this scale than in the paper");
    }
}
