//! Structured result emission shared by every harness binary.
//!
//! Each harness records its series through an [`Emitter`] — one named
//! series per sorter/variant, one point per parameter setting — instead of
//! hand-rolling `println!` output. When the process was given
//! `--metrics-out <path>` (or `BENCH_METRICS_OUT` is set), `finish`
//! additionally writes the run as canonical JSON: a file named
//! `BENCH_<experiment>.json` when the path is a directory, or the path
//! itself when it ends in `.json`.
//!
//! The JSON shape (schema version [`EXPERIMENT_SCHEMA_VERSION`]):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "kind": "experiment",
//!   "experiment": "fig7",
//!   "meta": { "n_rank": 20000, ... },
//!   "series": [
//!     { "name": "SDS-Sort",
//!       "points": [ { "params": {"p": 8}, "values": {"time_s": 0.81, ...} } ] }
//!   ]
//! }
//! ```

use crate::RunOutcome;
use mpisim::telemetry::Json;
use std::path::{Path, PathBuf};

/// Version of the experiment JSON schema written by [`Emitter::finish`].
pub const EXPERIMENT_SCHEMA_VERSION: u64 = 1;

/// Parse the metrics output destination from the process arguments
/// (`--metrics-out <path>` or `--metrics-out=<path>`), falling back to the
/// `BENCH_METRICS_OUT` environment variable.
pub fn metrics_out_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(v) = a.strip_prefix("--metrics-out=") {
            return Some(PathBuf::from(v));
        }
    }
    std::env::var_os("BENCH_METRICS_OUT").map(PathBuf::from)
}

struct SeriesData {
    name: String,
    points: Vec<Json>,
}

/// Collects one experiment's series and writes them as canonical JSON.
pub struct Emitter {
    experiment: String,
    meta: Vec<(String, Json)>,
    series: Vec<SeriesData>,
    out: Option<PathBuf>,
}

impl Emitter {
    /// An emitter for `experiment`, with the output destination taken from
    /// the process arguments / environment (see [`metrics_out_path`]).
    pub fn from_env(experiment: &str) -> Self {
        Self::with_out(experiment, metrics_out_path())
    }

    /// An emitter writing to an explicit destination (`None` = print only).
    ///
    /// Every document starts self-describing: `git_rev` and `backend`
    /// meta entries are filled in automatically (harnesses can still
    /// override them via [`Emitter::meta`]).
    pub fn with_out(experiment: &str, out: Option<PathBuf>) -> Self {
        let mut em = Self {
            experiment: experiment.to_string(),
            meta: Vec::new(),
            series: Vec::new(),
            out,
        };
        em.meta("git_rev", crate::git_rev());
        em.meta("backend", crate::backend().label());
        em
    }

    /// Attach an experiment-level metadata entry (sizes, workload, scale).
    /// Setting an existing key replaces its value.
    pub fn meta(&mut self, key: &str, value: impl Into<Json>) {
        let value = value.into();
        match self.meta.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.meta.push((key.to_string(), value)),
        }
    }

    /// Record one data point of `series`: the parameter setting it was
    /// measured at plus the measured values.
    pub fn point(&mut self, series: &str, params: &[(&str, Json)], values: &[(&str, Json)]) {
        let to_obj = |kv: &[(&str, Json)]| {
            Json::Obj(kv.iter().map(|(k, v)| (k.to_string(), v.clone())).collect())
        };
        let point = Json::obj(vec![("params", to_obj(params)), ("values", to_obj(values))]);
        match self.series.iter_mut().find(|s| s.name == series) {
            Some(s) => s.points.push(point),
            None => self.series.push(SeriesData {
                name: series.to_string(),
                points: vec![point],
            }),
        }
    }

    /// The full experiment document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::from(EXPERIMENT_SCHEMA_VERSION)),
            ("kind", Json::from("experiment")),
            ("experiment", Json::from(self.experiment.clone())),
            ("meta", Json::Obj(self.meta.clone())),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("name", Json::from(s.name.clone())),
                                ("points", Json::Arr(s.points.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Write the document if a destination was configured. Prints the
    /// output path so harness logs record where the metrics went.
    pub fn finish(self) -> std::io::Result<Option<PathBuf>> {
        let Some(out) = &self.out else {
            return Ok(None);
        };
        let path = resolve_out(out, &self.experiment);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&path, self.to_json().to_string_pretty() + "\n")?;
        println!("metrics: wrote {}", path.display());
        Ok(Some(path))
    }
}

/// A `.json` path is used as-is; anything else is treated as a directory
/// receiving `BENCH_<experiment>.json`.
fn resolve_out(out: &Path, experiment: &str) -> PathBuf {
    if out.extension().is_some_and(|e| e == "json") {
        out.to_path_buf()
    } else {
        out.join(format!("BENCH_{experiment}.json"))
    }
}

/// The standard value set recorded for one [`RunOutcome`] — shared so
/// every harness reports the same keys.
pub fn outcome_values(o: &RunOutcome) -> Vec<(&'static str, Json)> {
    vec![
        ("time_s", Json::from(o.time_s)),
        ("rdfa", Json::from(o.rdfa())),
        ("wall_s", Json::from(o.wall_s)),
        ("pivot_s", Json::from(o.phases.pivot_s)),
        ("exchange_s", Json::from(o.phases.exchange_s)),
        ("local_order_s", Json::from(o.phases.local_order_s)),
        ("other_s", Json::from(o.phases.other_s)),
        ("recv_count_max", Json::from(o.phases.recv_count as u64)),
        ("node_merged", Json::from(o.phases.node_merged)),
        ("overlapped", Json::from(o.phases.overlapped)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_shape_and_roundtrip() {
        let mut em = Emitter::with_out("figX", None);
        em.meta("n_rank", 1000u64);
        em.point(
            "SDS-Sort",
            &[("p", Json::from(8u64))],
            &[("time_s", Json::from(0.5))],
        );
        em.point(
            "SDS-Sort",
            &[("p", Json::from(16u64))],
            &[("time_s", Json::from(0.75))],
        );
        em.point(
            "HykSort",
            &[("p", Json::from(8u64))],
            &[("time_s", Json::Null)],
        );
        let doc = em.to_json();
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("experiment"));
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("figX"));
        let series = doc.get("series").and_then(Json::as_arr).expect("series");
        assert_eq!(series.len(), 2);
        assert_eq!(
            series[0]
                .get("points")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
        let reparsed = Json::parse(&doc.to_string_pretty()).expect("canonical JSON parses");
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn documents_are_self_describing() {
        let mut em = Emitter::with_out("figY", None);
        let doc = em.to_json();
        let meta = doc.get("meta").expect("meta object");
        let rev = meta.get("git_rev").and_then(Json::as_str).expect("git_rev");
        assert!(!rev.is_empty());
        assert!(meta.get("backend").and_then(Json::as_str).is_some());
        // Overriding replaces rather than duplicating the key.
        em.meta("backend", "threads");
        let meta = em.to_json();
        let meta = meta.get("meta").expect("meta object");
        assert_eq!(meta.get("backend").and_then(Json::as_str), Some("threads"));
        assert_eq!(em.meta.iter().filter(|(k, _)| k == "backend").count(), 1);
    }

    #[test]
    fn out_path_resolution() {
        assert_eq!(
            resolve_out(Path::new("out/metrics"), "fig7"),
            PathBuf::from("out/metrics/BENCH_fig7.json")
        );
        assert_eq!(
            resolve_out(Path::new("run.json"), "fig7"),
            PathBuf::from("run.json")
        );
    }
}
