//! Reusable experiment drivers shared by the figure/table binaries.
//!
//! The weak-scaling sweeps feed both the time figures (Figs. 7/8) and the
//! RDFA table (Table 3); the science-data runs feed both the breakdown
//! figures (Figs. 9/10) and Table 4. Centralizing them keeps every harness
//! reporting from the *same* runs it prints.

use crate::emit::{outcome_values, Emitter};
use crate::{run_sorter, RunOutcome, Sorter};
use mpisim::telemetry::Json;
use sdssort::ComputeModel;
use workloads::{cosmology_particles, ptf_scores, uniform_u64, zipf_keys};

/// One (sorter, p) cell of a weak-scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingCell {
    /// Process count.
    pub p: usize,
    /// Which sorter.
    pub sorter: Sorter,
    /// Run outcome (time `None` on OOM).
    pub outcome: RunOutcome,
}

/// Weak-scaling sweep over `ps` with `n_rank` uniform `u64` keys per rank
/// (Fig. 7 / Table 3 "Uniform").
pub fn weak_scaling_uniform(ps: &[usize], n_rank: usize, model: ComputeModel) -> Vec<ScalingCell> {
    sweep(ps, model, None, move |r| uniform_u64(n_rank, 0xF167, r))
}

/// Weak-scaling sweep with Zipf keys and a per-rank memory budget tight
/// enough that duplicate concentration kills the duplicate-blind sorters
/// (Fig. 8 / Table 3 "Zipf"). `alpha` follows the paper's "Zipf(0.7–2.0)"
/// band; we use α = 1.4 (δ ≈ 32 %).
pub fn weak_scaling_zipf(ps: &[usize], n_rank: usize, model: ComputeModel) -> Vec<ScalingCell> {
    // 3.5× the per-rank input: comfortably above SDS-Sort's observed RDFA
    // (< 2.7, Table 3) and far below an all-duplicates-on-one-rank
    // concentration (1 + δ·p shares).
    let budget = n_rank * 8 * 7 / 2;
    sweep(ps, model, Some(budget), move |r| {
        zipf_keys(n_rank, 1.4, 0xF168, r)
    })
}

/// Weak-scaling sweep on the real threads backend with `n_rank` uniform
/// `u64` keys per rank: `time_s` is measured wall clock, not a model. SDS
/// variants only — the baselines are simulator-only.
pub fn weak_scaling_uniform_threads(ps: &[usize], n_rank: usize) -> Vec<ScalingCell> {
    sweep_threads(ps, move |r| uniform_u64(n_rank, 0xF167, r))
}

/// Threads-backend weak scaling with Zipf(1.4) keys (same workload as
/// [`weak_scaling_zipf`], same seed). No memory budget: the simulator's
/// budget is a *model*; on the real backend host RAM is the budget.
pub fn weak_scaling_zipf_threads(ps: &[usize], n_rank: usize) -> Vec<ScalingCell> {
    sweep_threads(ps, move |r| zipf_keys(n_rank, 1.4, 0xF168, r))
}

/// Sockets-backend weak scaling: same uniform workload and seed as
/// [`weak_scaling_uniform_threads`], but every rank is a separate OS
/// process (`crates/sockcomm`). The calling binary must invoke
/// [`crate::sockets_bench_child`] at the top of `main`.
pub fn weak_scaling_uniform_sockets(ps: &[usize], n_rank: usize) -> Vec<ScalingCell> {
    let mut cells = Vec::new();
    for &p in ps {
        for sorter in [Sorter::Sds, Sorter::SdsStable] {
            let outcome = crate::run_sorter_sockets(sorter, p, n_rank);
            cells.push(ScalingCell { p, sorter, outcome });
        }
    }
    cells
}

fn sweep_threads<T, G>(ps: &[usize], gen: G) -> Vec<ScalingCell>
where
    T: sdssort::Sortable,
    G: Fn(usize) -> Vec<T> + Send + Sync + Copy,
{
    let mut cells = Vec::new();
    for &p in ps {
        for sorter in [Sorter::Sds, Sorter::SdsStable] {
            let outcome = crate::run_sorter_threads(sorter, p, gen);
            cells.push(ScalingCell { p, sorter, outcome });
        }
    }
    cells
}

/// Print a threads-backend weak-scaling table (wall-clock seconds, SDS
/// variants only) and return whether every cell completed — the harness
/// verdict for real-execution sweeps.
pub fn print_threads_scaling(ps: &[usize], n_rank: usize, cells: &[ScalingCell]) -> bool {
    let mut table = crate::Table::new(["p", "SDS-Sort", "SDS-Sort/stable", "SDS throughput"]);
    let mut all_ok = true;
    for &p in ps {
        let get = |s: Sorter| {
            cells
                .iter()
                .find(|c| c.p == p && c.sorter == s)
                .and_then(|c| c.outcome.time_s)
        };
        let (sds, stb) = (get(Sorter::Sds), get(Sorter::SdsStable));
        if sds.is_none() || stb.is_none() {
            all_ok = false;
        }
        let throughput = sds.map_or_else(
            || "-".into(),
            |t| {
                let bytes = (p * n_rank * 8) as f64;
                format!("{:.2} GB/min", bytes / t * 60.0 / 1e9)
            },
        );
        table.row([
            p.to_string(),
            crate::fmt_opt_time(sds),
            crate::fmt_opt_time(stb),
            throughput,
        ]);
    }
    table.print();
    all_ok
}

/// Drive a resident [`service::SortService`] with `jobs` Zipf-sized jobs
/// submitted concurrently from `clients` client handles (jobs are dealt
/// round-robin across clients, so the stream is deterministic given
/// `load`). Blocking submits exercise the queue's backpressure; every
/// ticket is awaited before shutdown, so the returned report accounts for
/// every job.
pub fn drive_service(
    cfg: service::ServiceConfig,
    load: &service::LoadGen,
    jobs: u64,
    clients: usize,
) -> service::ServiceReport {
    let clients = clients.max(1);
    let svc = service::SortService::start(cfg);
    std::thread::scope(|scope| {
        for c in 0..clients as u64 {
            let client = svc.client();
            let load = load.clone();
            scope.spawn(move || {
                let tickets: Vec<_> = (c..jobs)
                    .step_by(clients)
                    .map(|i| client.submit(load.spec(i)).expect("service accepting"))
                    .collect();
                for t in tickets {
                    t.wait();
                }
            });
        }
    });
    svc.shutdown()
}

/// The standard value set recorded for one [`service::ServiceReport`] —
/// shared by every harness that emits service-load points.
pub fn service_values(r: &service::ServiceReport) -> Vec<(&'static str, Json)> {
    vec![
        ("jobs_per_sec", Json::from(r.jobs_per_sec)),
        ("wall_s", Json::from(r.wall_s)),
        ("latency_p50_s", Json::from(r.latency_p50_s)),
        ("latency_p99_s", Json::from(r.latency_p99_s)),
        ("queue_wait_p50_s", Json::from(r.queue_wait_p50_s)),
        ("queue_wait_p99_s", Json::from(r.queue_wait_p99_s)),
        ("completed", Json::from(r.counters.completed)),
        ("shed", Json::from(r.counters.shed)),
        ("failed", Json::from(r.counters.failed)),
        ("spilled", Json::from(r.counters.spilled)),
        ("queue_full", Json::from(r.counters.queue_full)),
        ("arena_hits", Json::from(r.counters.arena_hits)),
        ("arena_misses", Json::from(r.counters.arena_misses)),
    ]
}

/// Print a service-load report as a metric/value table.
pub fn print_service_report(r: &service::ServiceReport) {
    let mut t = crate::Table::new(["metric", "value"]);
    t.row(["jobs/sec".to_string(), format!("{:.2}", r.jobs_per_sec)]);
    t.row(["wall clock".to_string(), crate::fmt_time(r.wall_s)]);
    t.row(["latency p50".to_string(), crate::fmt_time(r.latency_p50_s)]);
    t.row(["latency p99".to_string(), crate::fmt_time(r.latency_p99_s)]);
    t.row([
        "queue wait p50".to_string(),
        crate::fmt_time(r.queue_wait_p50_s),
    ]);
    t.row([
        "queue wait p99".to_string(),
        crate::fmt_time(r.queue_wait_p99_s),
    ]);
    t.row(["completed".to_string(), r.counters.completed.to_string()]);
    t.row(["shed".to_string(), r.counters.shed.to_string()]);
    t.row(["failed".to_string(), r.counters.failed.to_string()]);
    t.row(["spilled".to_string(), r.counters.spilled.to_string()]);
    t.row([
        "arena hits/misses".to_string(),
        format!("{}/{}", r.counters.arena_hits, r.counters.arena_misses),
    ]);
    t.print();
}

fn sweep<T, G>(ps: &[usize], model: ComputeModel, budget: Option<usize>, gen: G) -> Vec<ScalingCell>
where
    T: sdssort::Sortable,
    G: Fn(usize) -> Vec<T> + Send + Sync + Copy,
{
    let mut cells = Vec::new();
    for &p in ps {
        for sorter in [Sorter::HykSort, Sorter::Sds, Sorter::SdsStable] {
            let outcome = run_sorter(sorter, p, budget, model, gen);
            cells.push(ScalingCell { p, sorter, outcome });
        }
    }
    cells
}

/// Emit every cell of a weak-scaling sweep: one series per sorter, one
/// point per process count, with the shared [`outcome_values`] keys.
/// `extra` params are appended to every point (e.g. a workload tag when a
/// harness emits several sweeps).
pub fn emit_scaling_cells(em: &mut Emitter, cells: &[ScalingCell], extra: &[(&str, Json)]) {
    for c in cells {
        let mut params = vec![("p", Json::from(c.p as u64))];
        params.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
        em.point(c.sorter.label(), &params, &outcome_values(&c.outcome));
    }
}

/// Emit one row per sorter of a fixed-`p` experiment (Figs. 9/10,
/// Table 4), appending `extra` params to every point.
pub fn emit_outcome_rows(
    em: &mut Emitter,
    p: usize,
    rows: &[(Sorter, RunOutcome)],
    extra: &[(&str, Json)],
) {
    for (sorter, outcome) in rows {
        let mut params = vec![("p", Json::from(p as u64))];
        params.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
        em.point(sorter.label(), &params, &outcome_values(outcome));
    }
}

/// The PTF experiment (Fig. 9 / Table 4): `p` ranks sorting synthetic
/// real-bogus scores (δ ≈ 28 %). No memory budget — the paper notes the
/// whole 27 GB dataset fits on one 64 GB node, so HykSort finishes despite
/// RDFA ≈ 33.
pub fn ptf_experiment(p: usize, n_rank: usize, model: ComputeModel) -> Vec<(Sorter, RunOutcome)> {
    [Sorter::HykSort, Sorter::Sds, Sorter::SdsStable]
        .into_iter()
        .map(|s| {
            (
                s,
                run_sorter(s, p, None, model, move |r| ptf_scores(n_rank, 0x97F, r)),
            )
        })
        .collect()
}

/// The cosmology experiment (Fig. 10 / Table 4): particle records with
/// 24-byte payload, δ ≈ 0.73 %, under a per-rank budget of 2.5× the input
/// — enough for SDS-Sort's balanced partitions (RDFA < 2), fatal for
/// HykSort's duplicate concentration of ~`δ·p` input-shares on one rank
/// once `p` is large (the paper hits the same wall at 16K ranks with
/// δ·p ≈ 120).
pub fn cosmology_experiment(
    p: usize,
    n_rank: usize,
    model: ComputeModel,
) -> Vec<(Sorter, RunOutcome)> {
    let budget = n_rank * std::mem::size_of::<workloads::Particle>() * 5 / 2;
    [Sorter::HykSort, Sorter::Sds, Sorter::SdsStable]
        .into_iter()
        .map(|s| {
            (
                s,
                run_sorter(s, p, Some(budget), model, move |r| {
                    cosmology_particles(n_rank, 0xC05, r)
                }),
            )
        })
        .collect()
}
