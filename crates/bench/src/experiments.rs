//! Reusable experiment drivers shared by the figure/table binaries.
//!
//! The weak-scaling sweeps feed both the time figures (Figs. 7/8) and the
//! RDFA table (Table 3); the science-data runs feed both the breakdown
//! figures (Figs. 9/10) and Table 4. Centralizing them keeps every harness
//! reporting from the *same* runs it prints.

use crate::emit::{outcome_values, Emitter};
use crate::{run_sorter, RunOutcome, Sorter};
use mpisim::telemetry::Json;
use sdssort::ComputeModel;
use workloads::{cosmology_particles, ptf_scores, uniform_u64, zipf_keys};

/// One (sorter, p) cell of a weak-scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingCell {
    /// Process count.
    pub p: usize,
    /// Which sorter.
    pub sorter: Sorter,
    /// Run outcome (time `None` on OOM).
    pub outcome: RunOutcome,
}

/// Weak-scaling sweep over `ps` with `n_rank` uniform `u64` keys per rank
/// (Fig. 7 / Table 3 "Uniform").
pub fn weak_scaling_uniform(ps: &[usize], n_rank: usize, model: ComputeModel) -> Vec<ScalingCell> {
    sweep(ps, model, None, move |r| uniform_u64(n_rank, 0xF167, r))
}

/// Weak-scaling sweep with Zipf keys and a per-rank memory budget tight
/// enough that duplicate concentration kills the duplicate-blind sorters
/// (Fig. 8 / Table 3 "Zipf"). `alpha` follows the paper's "Zipf(0.7–2.0)"
/// band; we use α = 1.4 (δ ≈ 32 %).
pub fn weak_scaling_zipf(ps: &[usize], n_rank: usize, model: ComputeModel) -> Vec<ScalingCell> {
    // 3.5× the per-rank input: comfortably above SDS-Sort's observed RDFA
    // (< 2.7, Table 3) and far below an all-duplicates-on-one-rank
    // concentration (1 + δ·p shares).
    let budget = n_rank * 8 * 7 / 2;
    sweep(ps, model, Some(budget), move |r| {
        zipf_keys(n_rank, 1.4, 0xF168, r)
    })
}

/// Weak-scaling sweep on the real threads backend with `n_rank` uniform
/// `u64` keys per rank: `time_s` is measured wall clock, not a model. SDS
/// variants only — the baselines are simulator-only.
pub fn weak_scaling_uniform_threads(ps: &[usize], n_rank: usize) -> Vec<ScalingCell> {
    sweep_threads(ps, move |r| uniform_u64(n_rank, 0xF167, r))
}

/// Threads-backend weak scaling with Zipf(1.4) keys (same workload as
/// [`weak_scaling_zipf`], same seed). No memory budget: the simulator's
/// budget is a *model*; on the real backend host RAM is the budget.
pub fn weak_scaling_zipf_threads(ps: &[usize], n_rank: usize) -> Vec<ScalingCell> {
    sweep_threads(ps, move |r| zipf_keys(n_rank, 1.4, 0xF168, r))
}

fn sweep_threads<T, G>(ps: &[usize], gen: G) -> Vec<ScalingCell>
where
    T: sdssort::Sortable,
    G: Fn(usize) -> Vec<T> + Send + Sync + Copy,
{
    let mut cells = Vec::new();
    for &p in ps {
        for sorter in [Sorter::Sds, Sorter::SdsStable] {
            let outcome = crate::run_sorter_threads(sorter, p, gen);
            cells.push(ScalingCell { p, sorter, outcome });
        }
    }
    cells
}

/// Print a threads-backend weak-scaling table (wall-clock seconds, SDS
/// variants only) and return whether every cell completed — the harness
/// verdict for real-execution sweeps.
pub fn print_threads_scaling(ps: &[usize], n_rank: usize, cells: &[ScalingCell]) -> bool {
    let mut table = crate::Table::new(["p", "SDS-Sort", "SDS-Sort/stable", "SDS throughput"]);
    let mut all_ok = true;
    for &p in ps {
        let get = |s: Sorter| {
            cells
                .iter()
                .find(|c| c.p == p && c.sorter == s)
                .and_then(|c| c.outcome.time_s)
        };
        let (sds, stb) = (get(Sorter::Sds), get(Sorter::SdsStable));
        if sds.is_none() || stb.is_none() {
            all_ok = false;
        }
        let throughput = sds.map_or_else(
            || "-".into(),
            |t| {
                let bytes = (p * n_rank * 8) as f64;
                format!("{:.2} GB/min", bytes / t * 60.0 / 1e9)
            },
        );
        table.row([
            p.to_string(),
            crate::fmt_opt_time(sds),
            crate::fmt_opt_time(stb),
            throughput,
        ]);
    }
    table.print();
    all_ok
}

fn sweep<T, G>(ps: &[usize], model: ComputeModel, budget: Option<usize>, gen: G) -> Vec<ScalingCell>
where
    T: sdssort::Sortable,
    G: Fn(usize) -> Vec<T> + Send + Sync + Copy,
{
    let mut cells = Vec::new();
    for &p in ps {
        for sorter in [Sorter::HykSort, Sorter::Sds, Sorter::SdsStable] {
            let outcome = run_sorter(sorter, p, budget, model, gen);
            cells.push(ScalingCell { p, sorter, outcome });
        }
    }
    cells
}

/// Emit every cell of a weak-scaling sweep: one series per sorter, one
/// point per process count, with the shared [`outcome_values`] keys.
/// `extra` params are appended to every point (e.g. a workload tag when a
/// harness emits several sweeps).
pub fn emit_scaling_cells(em: &mut Emitter, cells: &[ScalingCell], extra: &[(&str, Json)]) {
    for c in cells {
        let mut params = vec![("p", Json::from(c.p as u64))];
        params.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
        em.point(c.sorter.label(), &params, &outcome_values(&c.outcome));
    }
}

/// Emit one row per sorter of a fixed-`p` experiment (Figs. 9/10,
/// Table 4), appending `extra` params to every point.
pub fn emit_outcome_rows(
    em: &mut Emitter,
    p: usize,
    rows: &[(Sorter, RunOutcome)],
    extra: &[(&str, Json)],
) {
    for (sorter, outcome) in rows {
        let mut params = vec![("p", Json::from(p as u64))];
        params.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
        em.point(sorter.label(), &params, &outcome_values(outcome));
    }
}

/// The PTF experiment (Fig. 9 / Table 4): `p` ranks sorting synthetic
/// real-bogus scores (δ ≈ 28 %). No memory budget — the paper notes the
/// whole 27 GB dataset fits on one 64 GB node, so HykSort finishes despite
/// RDFA ≈ 33.
pub fn ptf_experiment(p: usize, n_rank: usize, model: ComputeModel) -> Vec<(Sorter, RunOutcome)> {
    [Sorter::HykSort, Sorter::Sds, Sorter::SdsStable]
        .into_iter()
        .map(|s| {
            (
                s,
                run_sorter(s, p, None, model, move |r| ptf_scores(n_rank, 0x97F, r)),
            )
        })
        .collect()
}

/// The cosmology experiment (Fig. 10 / Table 4): particle records with
/// 24-byte payload, δ ≈ 0.73 %, under a per-rank budget of 2.5× the input
/// — enough for SDS-Sort's balanced partitions (RDFA < 2), fatal for
/// HykSort's duplicate concentration of ~`δ·p` input-shares on one rank
/// once `p` is large (the paper hits the same wall at 16K ranks with
/// δ·p ≈ 120).
pub fn cosmology_experiment(
    p: usize,
    n_rank: usize,
    model: ComputeModel,
) -> Vec<(Sorter, RunOutcome)> {
    let budget = n_rank * std::mem::size_of::<workloads::Particle>() * 5 / 2;
    [Sorter::HykSort, Sorter::Sds, Sorter::SdsStable]
        .into_iter()
        .map(|s| {
            (
                s,
                run_sorter(s, p, Some(budget), model, move |r| {
                    cosmology_particles(n_rank, 0xC05, r)
                }),
            )
        })
        .collect()
}
