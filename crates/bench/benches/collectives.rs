//! Criterion: mpisim collective primitives — barrier, allgather,
//! alltoallv at several message sizes, async vs sync all-to-all.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpisim::{NetModel, World};

const P: usize = 8;

fn world() -> World {
    World::new(P).cores_per_node(4).net(NetModel::zero())
}

fn bench_barrier(c: &mut Criterion) {
    c.bench_function("collectives/barrier_x10", |b| {
        b.iter(|| {
            world().run(|comm| {
                for _ in 0..10 {
                    comm.barrier();
                }
            })
        });
    });
}

fn bench_allgather(c: &mut Criterion) {
    c.bench_function("collectives/allgather_1k", |b| {
        b.iter(|| {
            world().run(|comm| {
                let data = vec![comm.rank() as u64; 1024];
                comm.allgather(&data).len()
            })
        });
    });
}

fn bench_alltoallv(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives/alltoallv");
    for per_peer in [64usize, 1024, 16 * 1024] {
        group.throughput(Throughput::Bytes((per_peer * P * P * 8) as u64));
        group.bench_with_input(BenchmarkId::new("sync", per_peer), &per_peer, |b, &n| {
            b.iter(|| {
                world().run(move |comm| {
                    let data = vec![comm.rank() as u64; n * P];
                    let counts = vec![n; P];
                    comm.alltoallv(&data, &counts).0.len()
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("async", per_peer), &per_peer, |b, &n| {
            b.iter(|| {
                world().run(move |comm| {
                    let data = vec![comm.rank() as u64; n * P];
                    let counts = vec![n; P];
                    let mut pending = comm.alltoallv_async(&data, &counts);
                    let mut total = 0usize;
                    while let Some((_src, chunk)) = pending.wait_any(comm) {
                        total += chunk.len();
                    }
                    total
                })
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_barrier, bench_allgather, bench_alltoallv
}
criterion_main!(benches);
