//! Criterion: end-to-end distributed sorts on a small world — SDS-Sort
//! (fast + stable), HykSort, classical sample sort, bitonic.

use baselines::{bitonic_sort, hyksort, sample_sort, HykSortConfig, SampleSortConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpisim::{NetModel, World};
use sdssort::{sds_sort, SdsConfig};
use workloads::{uniform_u64, zipf_keys};

const P: usize = 8;
const N_RANK: usize = 20_000;

fn world() -> World {
    World::new(P).cores_per_node(4).net(NetModel::zero())
}

fn bench_sorters(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.throughput(Throughput::Elements((P * N_RANK) as u64));

    for (workload, alpha) in [("uniform", None::<f64>), ("zipf_0.9", Some(0.9))] {
        let gen = move |r: usize| -> Vec<u64> {
            match alpha {
                None => uniform_u64(N_RANK, 9, r),
                Some(a) => zipf_keys(N_RANK, a, 9, r),
            }
        };
        group.bench_with_input(BenchmarkId::new("sds_fast", workload), &(), |b, ()| {
            let mut cfg = SdsConfig::default();
            cfg.tau_m_bytes = 0;
            b.iter(|| {
                world().run(|comm| {
                    sds_sort(comm, gen(comm.rank()), &cfg)
                        .expect("no budget")
                        .data
                        .len()
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("sds_stable", workload), &(), |b, ()| {
            let mut cfg = SdsConfig::stable();
            cfg.tau_m_bytes = 0;
            b.iter(|| {
                world().run(|comm| {
                    sds_sort(comm, gen(comm.rank()), &cfg)
                        .expect("no budget")
                        .data
                        .len()
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("hyksort", workload), &(), |b, ()| {
            let cfg = HykSortConfig::default();
            b.iter(|| {
                world().run(|comm| {
                    hyksort(comm, gen(comm.rank()), &cfg)
                        .expect("no budget")
                        .data
                        .len()
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("samplesort", workload), &(), |b, ()| {
            let cfg = SampleSortConfig::default();
            b.iter(|| {
                world().run(|comm| {
                    sample_sort(comm, gen(comm.rank()), &cfg)
                        .expect("no budget")
                        .data
                        .len()
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("bitonic", workload), &(), |b, ()| {
            b.iter(|| world().run(|comm| bitonic_sort(comm, gen(comm.rank())).len()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sorters
}
criterion_main!(benches);
