//! Criterion: merge kernels — two-way, and loser-tree vs cascade vs heap
//! k-way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdssort::merge::{kway_merge, kway_merge_cascade, kway_merge_heap, merge_two};
use workloads::uniform_u64;

fn sorted_runs(n_total: usize, k: usize, seed: u64) -> Vec<Vec<u64>> {
    let per = n_total / k;
    (0..k)
        .map(|i| {
            let mut v = uniform_u64(per, seed, i);
            v.sort_unstable();
            v
        })
        .collect()
}

fn bench_merge_two(c: &mut Criterion) {
    let n = 1 << 18;
    let runs = sorted_runs(n, 2, 7);
    let mut group = c.benchmark_group("merge_two");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("branchless", |b| b.iter(|| merge_two(&runs[0], &runs[1])));
    group.finish();
}

fn bench_kway(c: &mut Criterion) {
    let n = 1 << 18;
    let mut group = c.benchmark_group("kway_merge");
    group.throughput(Throughput::Elements(n as u64));
    for k in [4usize, 16, 64, 256] {
        let runs = sorted_runs(n, k, 11);
        let refs: Vec<&[u64]> = runs.iter().map(Vec::as_slice).collect();
        group.bench_with_input(BenchmarkId::new("loser_tree", k), &k, |b, _| {
            b.iter(|| kway_merge(&refs));
        });
        group.bench_with_input(BenchmarkId::new("cascade", k), &k, |b, _| {
            b.iter(|| kway_merge_cascade(&refs));
        });
        group.bench_with_input(BenchmarkId::new("heap", k), &k, |b, _| {
            b.iter(|| kway_merge_heap(&refs));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_merge_two, bench_kway
}
criterion_main!(benches);
