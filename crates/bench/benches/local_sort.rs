//! Criterion: `SdssLocalSort` kernels — sequential vs parallel, fast vs
//! stable, uniform vs skewed input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdssort::local_sort::local_sort;
use workloads::{uniform_u64, zipf_keys};

fn bench_local_sort(c: &mut Criterion) {
    let n = 1 << 18;
    let mut group = c.benchmark_group("local_sort");
    group.throughput(Throughput::Elements(n as u64));

    let uniform = uniform_u64(n, 1, 0);
    let zipf = zipf_keys(n, 1.4, 1, 0);

    for (workload, data) in [("uniform", &uniform), ("zipf_1.4", &zipf)] {
        for threads in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("fast/{workload}"), threads),
                &threads,
                |b, &t| {
                    b.iter(|| {
                        let mut buf = data.clone();
                        local_sort(&mut buf, t, false);
                        buf
                    });
                },
            );
        }
        group.bench_with_input(
            BenchmarkId::new(format!("stable/{workload}"), 2),
            &2usize,
            |b, &t| {
                b.iter(|| {
                    let mut buf = data.clone();
                    local_sort(&mut buf, t, true);
                    buf
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_local_sort
}
criterion_main!(benches);
