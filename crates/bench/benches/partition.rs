//! Criterion: partition kernels — full scan vs binary vs local-pivot
//! two-level search, and fast vs stable skew-aware cuts.

use baselines::{binary_cuts, full_scan_cuts};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdssort::partition::{fast_cuts, local_dup_counts, replicated_runs, stable_cuts, DupShare};
use sdssort::sampling::regular_sample;
use sdssort::search::LocalPivotIndex;
use workloads::{uniform_u64, zipf_keys};

fn bench_cut_methods(c: &mut Criterion) {
    let n = 1 << 20;
    let mut data = uniform_u64(n, 3, 0);
    data.sort_unstable();
    let mut group = c.benchmark_group("partition_method");
    for p in [16usize, 128, 512] {
        let pivots = regular_sample(&data, p - 1);
        let index = LocalPivotIndex::build(&data, p - 1);
        group.bench_with_input(BenchmarkId::new("full_scan", p), &p, |b, _| {
            b.iter(|| full_scan_cuts(&data, &pivots));
        });
        group.bench_with_input(BenchmarkId::new("binary", p), &p, |b, _| {
            b.iter(|| binary_cuts(&data, &pivots));
        });
        group.bench_with_input(BenchmarkId::new("local_pivot", p), &p, |b, _| {
            b.iter(|| fast_cuts(&data, &pivots, Some(&index)));
        });
    }
    group.finish();
}

fn bench_skew_aware(c: &mut Criterion) {
    let n = 1 << 20;
    let p = 128usize;
    let mut data = zipf_keys(n, 1.4, 5, 0);
    data.sort_unstable();
    let pivots = regular_sample(&data, p - 1);
    let runs = replicated_runs(&pivots);
    let counts = local_dup_counts(&data, &runs);
    let shares: Vec<DupShare> = counts
        .iter()
        .map(|&c| DupShare {
            total: c * 4,
            before_me: c,
        })
        .collect();
    let mut group = c.benchmark_group("skew_aware_cuts");
    group.bench_function("replicated_runs", |b| b.iter(|| replicated_runs(&pivots)));
    group.bench_function("fast", |b| b.iter(|| fast_cuts(&data, &pivots, None)));
    group.bench_function("stable", |b| {
        b.iter(|| stable_cuts(&data, &pivots, None, &shares));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cut_methods, bench_skew_aware
}
criterion_main!(benches);
