//! Integration tests for the threads backend: collectives, splits, async
//! exchange, panic propagation, wall-clock timing, and a sort smoke test.

use comm::{AsyncExchange, Communicator};
use shmem::{ThreadComm, ThreadWorld};

const TAG_PING: u64 = 100;
const TAG_PONG: u64 = 101;

#[test]
fn point_to_point_ring() {
    let p = 5;
    let rep = ThreadWorld::new(p).run(|comm| {
        let me = comm.rank();
        let nxt = (me + 1) % comm.size();
        let prv = (me + comm.size() - 1) % comm.size();
        comm.send_val(nxt, TAG_PING, me as u64);
        let got: u64 = comm.recv_val(prv, TAG_PING);
        comm.send_vec(prv, TAG_PONG, vec![got; 3]);
        let back: Vec<u64> = comm.recv_vec(nxt, TAG_PONG);
        (got, back)
    });
    for (me, (got, back)) in rep.results.iter().enumerate() {
        let prv = (me + p - 1) % p;
        assert_eq!(*got, prv as u64);
        assert_eq!(*back, vec![me as u64; 3]);
    }
    assert!(rep.messages >= 2 * p as u64);
    assert!(rep.bytes > 0);
}

#[test]
fn bcast_from_every_root() {
    for p in [1, 2, 3, 4, 7, 8] {
        let rep = ThreadWorld::new(p).run(|comm| {
            let mut seen = Vec::new();
            for root in 0..comm.size() {
                let payload =
                    (comm.rank() == root).then(|| vec![root as u64 * 10, root as u64 * 10 + 1]);
                seen.push(comm.bcast(root, payload));
            }
            seen
        });
        for seen in rep.results {
            for (root, v) in seen.iter().enumerate() {
                assert_eq!(v, &[root as u64 * 10, root as u64 * 10 + 1], "p={p}");
            }
        }
    }
}

#[test]
fn gather_allgather_and_friends() {
    let p = 6;
    let rep = ThreadWorld::new(p).run(|comm| {
        let me = comm.rank() as u64;
        // Uneven contribution sizes: rank r sends r+1 copies of r.
        let mine = vec![me; comm.rank() + 1];
        let gat = comm.gatherv(2, &mine);
        let (flat, counts) = comm.allgatherv(&mine);
        let ag = comm.allgather(&[me * 2]);
        let red = comm.reduce(0, me, |a, b| a + b);
        let all = comm.allreduce(me, |a, b| a + b);
        let ex = comm.exscan(me, |a, b| a + b);
        let sc = comm.scan(me, |a, b| a + b);
        (gat, flat, counts, ag, red, all, ex, sc)
    });
    let total: u64 = (0..p as u64).sum();
    for (r, (gat, flat, counts, ag, red, all, ex, sc)) in rep.results.into_iter().enumerate() {
        if r == 2 {
            let gat = gat.expect("root gets the gather");
            for (src, chunk) in gat.iter().enumerate() {
                assert_eq!(chunk, &vec![src as u64; src + 1]);
            }
        } else {
            assert!(gat.is_none());
        }
        let want_flat: Vec<u64> = (0..p as u64)
            .flat_map(|s| vec![s; s as usize + 1])
            .collect();
        assert_eq!(flat, want_flat);
        assert_eq!(counts, (1..=p).collect::<Vec<_>>());
        assert_eq!(ag, (0..p as u64).map(|s| s * 2).collect::<Vec<_>>());
        assert_eq!(red, (r == 0).then_some(total));
        assert_eq!(all, total);
        assert_eq!(ex, (r > 0).then(|| (0..r as u64).sum()));
        assert_eq!(sc, (0..=r as u64).sum());
    }
}

#[test]
fn scatter_and_scatterv() {
    let p = 4;
    let rep = ThreadWorld::new(p).run(|comm| {
        let chunks = (comm.rank() == 1).then(|| {
            (0..comm.size())
                .map(|dst| vec![dst as u64; dst])
                .collect::<Vec<_>>()
        });
        let vpart = comm.scatterv(1, chunks);
        let flat = (comm.rank() == 3).then(|| (0..2 * comm.size() as u64).collect::<Vec<_>>());
        let part = comm.scatter(3, flat.as_deref());
        (vpart, part)
    });
    for (r, (vpart, part)) in rep.results.into_iter().enumerate() {
        assert_eq!(vpart, vec![r as u64; r]);
        assert_eq!(part, vec![2 * r as u64, 2 * r as u64 + 1]);
    }
}

#[test]
fn alltoallv_uneven_counts() {
    let p = 5;
    let rep = ThreadWorld::new(p).run(|comm| {
        let me = comm.rank();
        // Rank r sends (r + dst) % 3 items tagged (r, dst).
        let counts: Vec<usize> = (0..comm.size()).map(|dst| (me + dst) % 3).collect();
        let data: Vec<(u64, u64)> = (0..comm.size())
            .flat_map(|dst| vec![(me as u64, dst as u64); (me + dst) % 3])
            .collect();
        comm.alltoallv(&data, &counts)
    });
    for (r, (out, recv_counts)) in rep.results.into_iter().enumerate() {
        let want: Vec<(u64, u64)> = (0..p)
            .flat_map(|src| vec![(src as u64, r as u64); (src + r) % 3])
            .collect();
        assert_eq!(out, want, "rank {r}");
        assert_eq!(
            recv_counts,
            (0..p).map(|src| (src + r) % 3).collect::<Vec<_>>()
        );
    }
}

#[test]
fn async_alltoallv_delivers_self_first_then_all() {
    let p = 4;
    let rep = ThreadWorld::new(p).run(|comm| {
        let me = comm.rank();
        let counts = vec![2usize; comm.size()];
        let data: Vec<u64> = (0..comm.size())
            .flat_map(|dst| [me as u64, dst as u64])
            .collect();
        let mut pending = comm.alltoallv_async(&data, &counts);
        assert_eq!(pending.total_recv(), 2 * comm.size());
        let first = pending.wait_any(comm).expect("self chunk first");
        assert_eq!(first.0, me);
        assert_eq!(first.1, vec![me as u64, me as u64]);
        let mut rest = Vec::new();
        while let Some((src, chunk)) = pending.wait_any(comm) {
            assert_eq!(chunk, vec![src as u64, me as u64]);
            rest.push(src);
        }
        assert_eq!(pending.remaining(), 0);
        rest.sort_unstable();
        rest
    });
    for (r, rest) in rep.results.into_iter().enumerate() {
        let want: Vec<usize> = (0..p).filter(|&s| s != r).collect();
        assert_eq!(rest, want, "rank {r}");
    }
}

#[test]
fn split_reorders_by_key_and_drops_none() {
    let p = 6;
    let rep = ThreadWorld::new(p).run(|comm| {
        // Ranks 0,2,4 -> color 0 keyed descending; rank 5 opts out.
        let me = comm.rank();
        let color = if me == 5 { None } else { Some((me % 2) as i64) };
        let key = -(me as i64);
        let sub = comm.split(color, key);
        sub.map(|s| {
            (
                s.rank(),
                s.size(),
                s.world_rank(),
                s.allgather(&[me as u64]),
            )
        })
    });
    let mut results = rep.results;
    assert!(results[5].is_none());
    // color 0: world ranks {0,2,4} keyed -0,-2,-4 -> order [4,2,0]
    let (r0, s0, w0, ag0) = results[0].take().expect("rank 0 split");
    assert_eq!((r0, s0, w0), (2, 3, 0));
    assert_eq!(ag0, vec![4, 2, 0]);
    // color 1: world ranks {1,3} keyed -1,-3 -> order [3,1]
    let (r3, s3, w3, ag3) = results[3].take().expect("rank 3 split");
    assert_eq!((r3, s3, w3), (0, 2, 3));
    assert_eq!(ag3, vec![3, 1]);
}

#[test]
fn node_splits_follow_cores_per_node() {
    let rep = ThreadWorld::new(8).cores_per_node(4).run(|comm| {
        let local = comm.split_shared_node();
        let leaders = comm.split_node_leaders();
        (
            comm.node(),
            local.rank(),
            local.size(),
            leaders.map(|l| (l.rank(), l.size())),
        )
    });
    for (r, (node, lr, ls, lead)) in rep.results.into_iter().enumerate() {
        assert_eq!(node, r / 4);
        assert_eq!(lr, r % 4);
        assert_eq!(ls, 4);
        if r % 4 == 0 {
            assert_eq!(lead, Some((r / 4, 2)));
        } else {
            assert_eq!(lead, None);
        }
    }
}

#[test]
fn nested_split_contexts_do_not_cross_talk() {
    let rep = ThreadWorld::new(8).run(|comm| {
        let half = comm
            .split(Some((comm.rank() / 4) as i64), comm.rank() as i64)
            .expect("everyone has a color");
        // Same-tag traffic on sibling communicators must not mix.
        let sum = half.allreduce(comm.rank() as u64, |a, b| a + b);
        let quarter = half
            .split(Some((half.rank() / 2) as i64), half.rank() as i64)
            .expect("everyone has a color");
        let qsum = quarter.allreduce(comm.rank() as u64, |a, b| a + b);
        (sum, qsum)
    });
    let want_half = [6u64, 6, 6, 6, 22, 22, 22, 22];
    let want_quarter = [1u64, 1, 5, 5, 9, 9, 13, 13];
    for (r, (sum, qsum)) in rep.results.into_iter().enumerate() {
        assert_eq!(sum, want_half[r], "half sum, rank {r}");
        assert_eq!(qsum, want_quarter[r], "quarter sum, rank {r}");
    }
}

#[test]
fn wall_clock_advances_and_is_reported() {
    let rep = ThreadWorld::new(3).telemetry(true).run(|comm| {
        let t0 = comm.now();
        let sp = comm.span_begin("spin");
        let x = comm.compute(|| (0..200_000u64).sum::<u64>());
        comm.span_end(sp);
        comm.barrier();
        let t1 = comm.now();
        assert!(t1 >= t0);
        (x, t1 - t0)
    });
    assert!(rep.wall_s > 0.0);
    assert_eq!(rep.per_rank_wall.len(), 3);
    for &w in &rep.per_rank_wall {
        assert!(w > 0.0 && w <= rep.wall_s + 1e-9);
    }
    let snap = rep.telemetry.expect("telemetry enabled");
    assert!(
        snap.spans.iter().any(|s| s.name == "spin"),
        "span recorded with wall-clock times"
    );
    let compute_total: f64 = snap.compute_v.iter().sum();
    assert!(compute_total > 0.0, "compute ledger charged from wall time");
}

#[test]
fn panic_on_one_rank_aborts_the_world_with_original_payload() {
    let caught = std::panic::catch_unwind(|| {
        ThreadWorld::new(4).run(|comm: &ThreadComm| {
            if comm.rank() == 2 {
                panic!("rank 2 exploded");
            }
            // Everyone else blocks on a message that never comes.
            let _: Vec<u64> = comm.recv_vec((comm.rank() + 1) % comm.size(), TAG_PING);
        })
    });
    let payload = caught.expect_err("world must propagate the panic");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .expect("original panic payload, not the abort marker");
    assert!(msg.contains("rank 2 exploded"), "got: {msg}");
}

#[test]
fn sds_sort_smoke_on_threads() {
    use sdssort::{sds_sort, SdsConfig};
    let p = 4;
    let n_rank = 5_000u64;
    let rep = ThreadWorld::new(p)
        .cores_per_node(2)
        .telemetry(true)
        .run(|comm| {
            let r = comm.rank() as u64;
            // Skewed: lots of duplicates, interleaved across ranks.
            let data: Vec<u64> = (0..n_rank).map(|i| (i * 31 + r * 7) % 97).collect();
            sds_sort(comm, data, &SdsConfig::default()).expect("no memory budget set")
        });
    let all: Vec<u64> = rep.results.iter().flat_map(|o| o.data.clone()).collect();
    assert_eq!(all.len(), p * n_rank as usize);
    assert!(all.windows(2).all(|w| w[0] <= w[1]), "globally sorted");
    assert!(rep.wall_s > 0.0);
    let snap = rep.telemetry.expect("telemetry enabled");
    assert!(!snap.spans.is_empty(), "sort phases recorded as spans");
}
