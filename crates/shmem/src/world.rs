//! World builder and runtime: spawns one OS thread per rank, runs the
//! user's rank function on each, and joins the results in rank order.

use crate::comm::{ShmemAborted, ThreadComm};
use crate::universe::Universe;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Instant;
use telemetry::Snapshot;

/// Builder for a threads-backend world.
///
/// ```
/// use shmem::ThreadWorld;
/// use comm::Communicator;
///
/// let report = ThreadWorld::new(4).run(|comm| {
///     comm.allreduce(comm.rank() as u64, |a, b| a + b)
/// });
/// assert_eq!(report.results, vec![6, 6, 6, 6]);
/// ```
pub struct ThreadWorld {
    size: usize,
    cores_per_node: usize,
    mailbox_capacity: usize,
    telemetry: bool,
}

/// What a completed threads-backend run produced.
#[derive(Debug)]
pub struct ThreadReport<R> {
    /// Each rank's return value, in rank order.
    pub results: Vec<R>,
    /// Wall-clock seconds from world start to last rank finishing.
    pub wall_s: f64,
    /// Per-rank wall-clock seconds (world start to that rank finishing).
    pub per_rank_wall: Vec<f64>,
    /// Total point-to-point messages (self-sends excluded).
    pub messages: u64,
    /// Total payload bytes moved through mailboxes.
    pub bytes: u64,
    /// Telemetry snapshot, if telemetry was enabled on the builder.
    pub telemetry: Option<Snapshot>,
}

impl ThreadWorld {
    /// A world of `size` ranks, one core per node by default (so `node()`
    /// == `rank()` unless [`Self::cores_per_node`] is raised).
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world must have at least one rank");
        Self {
            size,
            cores_per_node: 1,
            mailbox_capacity: (8 * size).max(256),
            telemetry: false,
        }
    }

    /// Group ranks into nodes of this many cores (affects `node()` and the
    /// node-merge stage of the sort, not thread placement).
    pub fn cores_per_node(mut self, c: usize) -> Self {
        assert!(c > 0, "cores_per_node must be positive");
        self.cores_per_node = c;
        self
    }

    /// Per-rank mailbox capacity in envelopes. A full mailbox blocks the
    /// sender (real backpressure); the default `max(256, 8·p)` leaves a
    /// wide margin over the `p − 1` undrained envelopes a correct
    /// collective can park in one mailbox.
    pub fn mailbox_capacity(mut self, cap: usize) -> Self {
        self.mailbox_capacity = cap;
        self
    }

    /// Enable telemetry recording (spans, events, per-rank ledgers). The
    /// report then carries a [`telemetry::Snapshot`] with wall-clock span
    /// times.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Convert the builder into a [`crate::ResidentWorld`]: the rank
    /// threads spawn now, park between jobs, and serve gang-scheduled
    /// closures until the world is dropped. This is the substrate of
    /// `crates/service`'s long-lived `SortService`.
    pub fn resident(&self) -> crate::ResidentWorld {
        let uni = Arc::new(Universe::new(
            self.size,
            self.cores_per_node,
            self.mailbox_capacity,
            self.telemetry,
        ));
        crate::ResidentWorld::start(uni)
    }

    /// Run `f` on every rank concurrently and collect the results.
    ///
    /// Each rank runs on its own OS thread (named `shmem-rank-{r}`). If a
    /// rank panics, the world aborts: every blocked send/receive wakes and
    /// unwinds, and the *original* panic payload is re-raised here (the
    /// secondary `ShmemAborted` unwinds of interrupted ranks are
    /// swallowed).
    pub fn run<R, F>(&self, f: F) -> ThreadReport<R>
    where
        R: Send,
        F: Fn(&ThreadComm) -> R + Sync,
    {
        let uni = Arc::new(Universe::new(
            self.size,
            self.cores_per_node,
            self.mailbox_capacity,
            self.telemetry,
        ));
        let members: Arc<[usize]> = (0..self.size).collect();
        let f = &f;

        let t0 = Instant::now();
        let outcomes: Vec<RankOutcome<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.size)
                .map(|r| {
                    let uni = Arc::clone(&uni);
                    let members = Arc::clone(&members);
                    std::thread::Builder::new()
                        .name(format!("shmem-rank-{r}"))
                        .spawn_scoped(scope, move || {
                            let comm = ThreadComm::new(Arc::clone(&uni), 0, members, r);
                            let res = std::panic::catch_unwind(AssertUnwindSafe(|| f(&comm)));
                            let wall = uni.start.elapsed().as_secs_f64();
                            match res {
                                Ok(v) => RankOutcome::Done(v, wall),
                                Err(payload) => {
                                    // First failure wins; wake everyone so
                                    // blocked ranks can unwind too.
                                    uni.abort();
                                    RankOutcome::Panicked(payload)
                                }
                            }
                        })
                        .expect("spawn rank thread")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(outcome) => outcome,
                    Err(payload) => RankOutcome::Panicked(payload),
                })
                .collect()
        });
        let wall_s = t0.elapsed().as_secs_f64();

        // Re-raise the original failure, preferring a payload that is NOT
        // the secondary abort marker; fall back to any payload.
        let mut secondary = None;
        let mut results = Vec::with_capacity(self.size);
        let mut per_rank_wall = Vec::with_capacity(self.size);
        for outcome in outcomes {
            match outcome {
                RankOutcome::Done(v, w) => {
                    results.push(v);
                    per_rank_wall.push(w);
                }
                RankOutcome::Panicked(payload) => {
                    if payload.is::<ShmemAborted>() {
                        secondary = Some(payload);
                    } else {
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        if let Some(payload) = secondary {
            std::panic::resume_unwind(payload);
        }

        ThreadReport {
            results,
            wall_s,
            per_rank_wall,
            messages: uni.stats().messages(),
            bytes: uni.stats().bytes(),
            telemetry: self.telemetry.then(|| uni.recorder().snapshot()),
        }
    }
}

enum RankOutcome<R> {
    Done(R, f64),
    Panicked(Box<dyn std::any::Any + Send>),
}
