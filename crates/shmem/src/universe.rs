//! Shared state of one threads-backend world: mailboxes, topology labels,
//! traffic stats, the wall-clock epoch, and the abort flag.

use crate::mailbox::Mailbox;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use telemetry::Recorder;

/// Traffic statistics accumulated over a run (whole world).
#[derive(Debug, Default)]
pub struct NetStats {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl NetStats {
    pub(crate) fn record(&self, bytes: usize) {
        self.messages.fetch_add(1, Ordering::SeqCst);
        self.bytes.fetch_add(bytes as u64, Ordering::SeqCst);
    }

    /// Total point-to-point messages sent (self-sends excluded: local
    /// chunks never enter a mailbox on this backend).
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::SeqCst)
    }

    /// Total payload bytes sent.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::SeqCst)
    }
}

/// Shared immutable/concurrent state for all ranks of a threads world.
pub struct Universe {
    pub(crate) size: usize,
    pub(crate) cores_per_node: usize,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) aborted: AtomicBool,
    pub(crate) stats: NetStats,
    pub(crate) recorder: Recorder,
    /// Wall-clock epoch: `Communicator::now` reports seconds since this.
    pub(crate) start: Instant,
    /// Deterministic context-id registry for communicator splits: all
    /// ranks performing the same (parent ctx, split sequence, color) split
    /// must agree on the child context id regardless of arrival order.
    contexts: Mutex<HashMap<(u64, u64, i64), u64>>,
    next_ctx: AtomicU64,
}

impl Universe {
    pub(crate) fn new(
        size: usize,
        cores_per_node: usize,
        mailbox_capacity: usize,
        telemetry: bool,
    ) -> Self {
        let node_of: Vec<usize> = (0..size).map(|r| r / cores_per_node).collect();
        Self {
            size,
            cores_per_node,
            mailboxes: (0..size).map(|_| Mailbox::new(mailbox_capacity)).collect(),
            aborted: AtomicBool::new(false),
            stats: NetStats::default(),
            recorder: Recorder::new(node_of, telemetry),
            start: Instant::now(),
            contexts: Mutex::new(HashMap::new()),
            // ctx 0 is the world communicator.
            next_ctx: AtomicU64::new(1),
        }
    }

    /// Look up (or allocate) the context id for a split of `parent_ctx`
    /// identified by `(split_seq, color)`. First arrival allocates; later
    /// ranks read the same id.
    pub(crate) fn context_for_split(&self, parent_ctx: u64, split_seq: u64, color: i64) -> u64 {
        let mut map = self.contexts.lock().expect("context registry poisoned");
        *map.entry((parent_ctx, split_seq, color))
            .or_insert_with(|| self.next_ctx.fetch_add(1, Ordering::SeqCst))
    }

    /// Mark the world as aborted and wake every blocked sender/receiver.
    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        for mb in &self.mailboxes {
            mb.interrupt();
        }
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether a rank has panicked.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Run statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The telemetry recorder (no-op unless enabled at world build).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_registry_is_deterministic() {
        let u = Universe::new(4, 2, 64, false);
        let a = u.context_for_split(0, 0, 7);
        assert_eq!(a, u.context_for_split(0, 0, 7));
        assert_ne!(a, u.context_for_split(0, 0, 8));
        assert_ne!(a, u.context_for_split(0, 1, 7));
        assert_ne!(a, 0, "world ctx 0 is never handed out");
    }

    #[test]
    fn stats_accumulate() {
        let u = Universe::new(2, 1, 64, false);
        u.stats.record(100);
        u.stats.record(50);
        assert_eq!(u.stats().messages(), 2);
        assert_eq!(u.stats().bytes(), 150);
    }
}
