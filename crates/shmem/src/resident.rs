//! Resident worlds: a persistent rank pool for long-lived services.
//!
//! [`crate::ThreadWorld::run`] spawns one OS thread per rank, runs one
//! closure, and joins everything — the right shape for a single sort, and
//! exactly the wrong shape for a sort *service*, where thread creation and
//! teardown per job would dominate small jobs and defeat buffer reuse.
//!
//! [`ResidentWorld`] keeps the rank threads alive between jobs. Each rank
//! thread builds its [`ThreadComm`] once and then parks on a channel; a
//! gang-scheduled job is one closure dispatched to every rank, and
//! [`ResidentWorld::run`] blocks until the whole gang finishes. `run` takes
//! `&mut self`, so at most one gang is in flight — overlapping gangs on the
//! same communicator would interleave collectives and deadlock.
//!
//! Failure semantics are fail-fast-forever: if any rank's closure panics,
//! the universe aborts (waking every blocked send/receive, which unwind
//! with [`ShmemAborted`]), the gang completes with an error, and the world
//! is poisoned — every later [`ResidentWorld::run`] returns the same error
//! without dispatching. A poisoned universe cannot be revived because
//! in-flight envelopes from the failed gang may still sit in mailboxes.

use crate::comm::{ShmemAborted, ThreadComm};
use crate::universe::Universe;
use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One rank's share of a gang job, type-erased so differently typed jobs
/// can flow through the same long-lived channel.
type RankJob = Box<dyn FnOnce(&ThreadComm) + Send>;

struct GangTask {
    job: RankJob,
    latch: Arc<Latch>,
}

/// Counts rank completions for one gang and carries the first panic.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    poison: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(ranks: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining: ranks,
                poison: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, payload: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().expect("latch mutex poisoned");
        if let Some(p) = payload {
            // Keep the original failure: a real payload beats the
            // secondary ShmemAborted unwinds of interrupted ranks.
            if st.poison.is_none() || st.poison.as_ref().is_some_and(|q| q.is::<ShmemAborted>()) {
                st.poison = Some(p);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = self.state.lock().expect("latch mutex poisoned");
        while st.remaining > 0 {
            st = self
                .done
                .wait(st)
                .expect("latch mutex poisoned while waiting");
        }
        st.poison.take()
    }
}

/// A gang job failed — some rank's closure panicked — and the world is now
/// permanently poisoned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GangError {
    /// Human-readable panic message of the first failing rank.
    pub message: String,
}

impl std::fmt::Display for GangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "resident world poisoned: {}", self.message)
    }
}

impl std::error::Error for GangError {}

fn describe_panic(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(a) = payload.downcast_ref::<ShmemAborted>() {
        format!("rank {} interrupted by a peer failure", a.rank)
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A pool of persistent rank threads executing gang-scheduled jobs.
///
/// Built via [`crate::ThreadWorld::resident`]; dropped worlds shut their
/// rank threads down cleanly.
///
/// ```
/// use comm::Communicator;
/// use shmem::ThreadWorld;
///
/// let mut world = ThreadWorld::new(4).resident();
/// for round in 0u64..3 {
///     let sums = world
///         .run(move |comm| comm.allreduce(round + comm.rank() as u64, |a, b| a + b))
///         .expect("healthy world");
///     assert_eq!(sums, vec![6 + 4 * round; 4]);
/// }
/// ```
pub struct ResidentWorld {
    uni: Arc<Universe>,
    senders: Vec<mpsc::Sender<GangTask>>,
    handles: Vec<JoinHandle<()>>,
    poisoned: Option<GangError>,
}

impl ResidentWorld {
    pub(crate) fn start(uni: Arc<Universe>) -> Self {
        let size = uni.size();
        let members: Arc<[usize]> = (0..size).collect();
        let mut senders = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        for r in 0..size {
            let (tx, rx) = mpsc::channel::<GangTask>();
            let uni = Arc::clone(&uni);
            let members = Arc::clone(&members);
            let handle = std::thread::Builder::new()
                .name(format!("shmem-resident-{r}"))
                .spawn(move || {
                    // The communicator is built once and survives across
                    // jobs: collective sequence numbers keep advancing, so
                    // consecutive jobs can never collide on tags.
                    let comm = ThreadComm::new(uni, 0, members, r);
                    while let Ok(task) = rx.recv() {
                        let res = std::panic::catch_unwind(AssertUnwindSafe(|| (task.job)(&comm)));
                        match res {
                            Ok(()) => task.latch.complete(None),
                            Err(payload) => {
                                comm.universe().abort();
                                task.latch.complete(Some(payload));
                            }
                        }
                    }
                })
                .expect("spawn resident rank thread");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            uni,
            senders,
            handles,
            poisoned: None,
        }
    }

    /// Number of ranks in the pool.
    pub fn size(&self) -> usize {
        self.uni.size()
    }

    /// The shared world state (stats, telemetry recorder, epoch).
    pub fn universe(&self) -> &Arc<Universe> {
        &self.uni
    }

    /// Whether an earlier gang poisoned the world.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Run `f` on every resident rank concurrently and collect the results
    /// in rank order. Blocks until the whole gang finishes. `&mut self`
    /// keeps gangs strictly sequential on this communicator.
    ///
    /// Returns [`GangError`] — immediately, without dispatching — once the
    /// world is poisoned by an earlier panic.
    pub fn run<R, F>(&mut self, f: F) -> Result<Vec<R>, GangError>
    where
        R: Send + 'static,
        F: Fn(&ThreadComm) -> R + Send + Sync + 'static,
    {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        let size = self.size();
        let latch = Arc::new(Latch::new(size));
        let f = Arc::new(f);
        let results: Arc<Mutex<Vec<Option<R>>>> =
            Arc::new(Mutex::new((0..size).map(|_| None).collect()));
        for (r, tx) in self.senders.iter().enumerate() {
            let f = Arc::clone(&f);
            let results = Arc::clone(&results);
            let job: RankJob = Box::new(move |comm| {
                let out = f(comm);
                results.lock().expect("gang results mutex poisoned")[r] = Some(out);
            });
            tx.send(GangTask {
                job,
                latch: Arc::clone(&latch),
            })
            .expect("resident rank thread alive");
        }
        if let Some(payload) = latch.wait() {
            let err = GangError {
                message: describe_panic(payload.as_ref()),
            };
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        let collected = Arc::into_inner(results)
            .expect("gang done: no outstanding result handles")
            .into_inner()
            .expect("gang results mutex poisoned");
        Ok(collected
            .into_iter()
            .map(|slot| slot.expect("every rank completed without panic"))
            .collect())
    }
}

impl Drop for ResidentWorld {
    fn drop(&mut self) {
        // Closing the channels lets each rank thread fall out of its loop.
        self.senders.clear();
        for h in self.handles.drain(..) {
            // A rank thread only panics if a job's latch mutex was
            // poisoned; there is nothing useful to do with that here.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ThreadWorld;
    use comm::Communicator;

    #[test]
    fn gangs_reuse_the_same_threads() {
        let mut world = ThreadWorld::new(3).resident();
        let first: Vec<String> = world
            .run(|_comm| {
                std::thread::current()
                    .name()
                    .expect("resident threads are named")
                    .to_owned()
            })
            .expect("healthy");
        for _ in 0..5 {
            let again = world
                .run(|comm| {
                    let _ = comm.allreduce(1u64, |a, b| a + b);
                    std::thread::current()
                        .name()
                        .expect("resident threads are named")
                        .to_owned()
                })
                .expect("healthy");
            assert_eq!(first, again, "jobs must run on the persistent threads");
        }
    }

    #[test]
    fn collectives_work_across_consecutive_gangs() {
        let mut world = ThreadWorld::new(4).resident();
        for round in 0u64..4 {
            let got = world
                .run(move |comm| comm.allreduce(round * 10 + comm.rank() as u64, |a, b| a + b))
                .expect("healthy");
            assert_eq!(got, vec![40 * round + 6; 4]);
        }
    }

    #[test]
    fn panic_poisons_the_world_permanently() {
        let mut world = ThreadWorld::new(2).resident();
        let err = world
            .run(|comm| {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                // Rank 0 blocks on a receive that can only be released by
                // the abort — proving interrupted peers unwind cleanly.
                let _: Vec<u8> = comm.recv_vec(1, 7);
            })
            .expect_err("gang must fail");
        assert!(err.message.contains("rank 1 exploded"), "{err}");
        let err2 = world
            .run(|_comm| ())
            .expect_err("poisoned world rejects new gangs");
        assert_eq!(err, err2);
        assert!(world.is_poisoned());
    }
}
