//! Bounded `(ctx, src, tag)`-matched mailboxes.
//!
//! The implementation moved to [`comm::mailbox`] so the distributed
//! sockets backend (`crates/sockcomm`) can feed the same matching
//! discipline from its socket reader threads; this module re-exports it
//! under the historical `shmem::mailbox` path for existing consumers
//! (notably `crates/service`, which builds its submission queue on
//! [`Mailbox`]).

pub use comm::mailbox::{Envelope, Mailbox, SrcSel};
