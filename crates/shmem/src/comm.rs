//! The threads-backend communicator: [`ThreadComm`] implements
//! [`comm::Communicator`] over bounded mailboxes and real wall-clock time.
//!
//! The collective primitives reproduce the simulator's algorithms and wire
//! patterns exactly — dissemination barrier, binomial broadcast, rank-order
//! gatherv, staggered `alltoallv` — and the composed collectives come from
//! the trait's provided defaults, which mirror the simulator's
//! decompositions. Together with the identical reserved-tag scheme this
//! keeps the two backends' collective *results* (including deterministic
//! rank-order reduction folds) bit-identical; only arrival timing differs.

use crate::mailbox::{Envelope, SrcSel};
use crate::universe::Universe;
use ::comm::{AsyncExchange, Communicator, OomError, MAX_USER_TAG};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

/// Panic payload used when a rank unwinds *because another rank panicked*
/// (the world was aborted). The runtime filters these out so the original
/// failure is the one re-raised to the caller.
#[derive(Debug)]
pub struct ShmemAborted {
    /// Communicator rank that was interrupted.
    pub rank: usize,
}

/// A rank-local handle to a threads-backend communicator. `!Send` by
/// construction (collective sequence counters are `Cell`s): a rank's
/// communicator lives on that rank's thread.
pub struct ThreadComm {
    uni: Arc<Universe>,
    /// Context id distinguishing this communicator's traffic.
    ctx: u64,
    /// World ranks of the members, ordered by communicator rank.
    members: Arc<[usize]>,
    /// Map from world rank to communicator rank for members.
    world_to_comm: Arc<HashMap<usize, usize>>,
    /// This rank's position within `members`.
    my_index: usize,
    /// Number of splits performed (for deterministic child context ids).
    split_seq: Cell<u64>,
    /// Number of collective operations performed (for tag isolation).
    coll_seq: Cell<u64>,
}

impl ThreadComm {
    pub(crate) fn new(
        uni: Arc<Universe>,
        ctx: u64,
        members: Arc<[usize]>,
        my_index: usize,
    ) -> Self {
        let world_to_comm = Arc::new(
            members
                .iter()
                .enumerate()
                .map(|(i, &w)| (w, i))
                .collect::<HashMap<_, _>>(),
        );
        Self {
            uni,
            ctx,
            members,
            world_to_comm,
            my_index,
            split_seq: Cell::new(0),
            coll_seq: Cell::new(0),
        }
    }

    /// The shared world state.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.uni
    }

    fn check_alive(&self) {
        if self.uni.is_aborted() {
            std::panic::panic_any(ShmemAborted {
                rank: self.my_index,
            });
        }
    }

    fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        debug_assert!(
            seq < (1 << 15),
            "collective sequence number overflow risk (seq {seq})"
        );
        // Same reservation as the simulator: the space above MAX_USER_TAG,
        // with round numbers (< 4096) added by the caller.
        MAX_USER_TAG + (seq << 12)
    }

    #[track_caller]
    fn assert_user_tag(tag: u64) {
        assert!(
            tag < MAX_USER_TAG,
            "tag {tag} is outside the user tag space: tags at or above \
             MAX_USER_TAG (2^48) are reserved for collective operations"
        );
    }

    /// Internal send without the user-tag check: collectives and the async
    /// exchange send on reserved tags through this path.
    fn send_raw<T: Clone + Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        self.check_alive();
        let bytes = std::mem::size_of::<T>() * data.len();
        let src_w = self.members[self.my_index];
        let dst_w = self.members[dst];
        self.uni.stats.record(bytes);
        self.uni.recorder.on_send(src_w, dst_w, bytes);
        let delivered = self.uni.mailboxes[dst_w].push(
            Envelope {
                ctx: self.ctx,
                src: src_w,
                tag,
                data: Box::new(data),
                bytes,
            },
            &self.uni.aborted,
        );
        if !delivered {
            std::panic::panic_any(ShmemAborted {
                rank: self.my_index,
            });
        }
    }

    fn send_slice_raw<T: Clone + Send + 'static>(&self, dst: usize, tag: u64, data: &[T]) {
        self.send_raw(dst, tag, data.to_vec());
    }

    fn open_envelope<T: Send + 'static>(&self, env: Envelope) -> (usize, Vec<T>) {
        let src_comm = self
            .world_to_comm
            .get(&env.src)
            .copied()
            .expect("sender is a member of this communicator");
        let data = env
            .data
            .downcast::<Vec<T>>()
            .unwrap_or_else(|_| panic!("type mismatch on recv (tag {})", env.tag));
        debug_assert_eq!(env.bytes, std::mem::size_of::<T>() * data.len());
        (src_comm, *data)
    }

    fn recv_raw<T: Send + 'static>(&self, src: SrcSel, tag: u64) -> (usize, Vec<T>) {
        self.check_alive();
        let me_w = self.members[self.my_index];
        match self.uni.mailboxes[me_w].take(self.ctx, src, tag, &self.uni.aborted) {
            Some(env) => self.open_envelope(env),
            None => std::panic::panic_any(ShmemAborted {
                rank: self.my_index,
            }),
        }
    }

    fn try_recv_raw<T: Send + 'static>(&self, src: SrcSel, tag: u64) -> Option<(usize, Vec<T>)> {
        self.check_alive();
        let me_w = self.members[self.my_index];
        self.uni.mailboxes[me_w]
            .try_take(self.ctx, src, tag)
            .map(|env| self.open_envelope(env))
    }

    fn recv_vec_raw<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        self.recv_raw(SrcSel::Exact(self.members[src]), tag).1
    }

    fn recv_val_raw<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        let v = self.recv_vec_raw::<T>(src, tag);
        debug_assert_eq!(v.len(), 1, "recv_val expects single-element message");
        v.into_iter().next().expect("non-empty message")
    }

    fn next_split_seq(&self) -> u64 {
        let s = self.split_seq.get();
        self.split_seq.set(s + 1);
        s
    }
}

impl std::fmt::Debug for ThreadComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadComm")
            .field("ctx", &self.ctx)
            .field("rank", &self.my_index)
            .field("size", &self.members.len())
            .field("world_rank", &self.members[self.my_index])
            .finish()
    }
}

/// Handle to an in-flight asynchronous `alltoallv` on the threads backend.
/// Same protocol as the simulator's: the self chunk is delivered first,
/// then remote chunks in true arrival order, keyed by source with a hard
/// duplicate check.
pub struct ShmemAsync<T> {
    tag: u64,
    pending: Vec<bool>,
    recv_counts: Vec<usize>,
    self_chunk: Option<Vec<T>>,
    remaining: usize,
}

impl<T: Send + 'static> AsyncExchange<T, ThreadComm> for ShmemAsync<T> {
    fn wait_any(&mut self, comm: &ThreadComm) -> Option<(usize, Vec<T>)> {
        if self.remaining == 0 {
            return None;
        }
        if let Some(chunk) = self.self_chunk.take() {
            self.remaining -= 1;
            return Some((comm.rank(), chunk));
        }
        // Prefer a chunk that already arrived; otherwise block for any.
        let (src, data) = match comm.try_recv_raw::<T>(SrcSel::Any, self.tag) {
            Some(hit) => hit,
            None => comm.recv_raw::<T>(SrcSel::Any, self.tag),
        };
        // A hard check, not a debug assert: a duplicate or foreign chunk
        // here means the exchange protocol was violated (e.g. a tag
        // collision) and would otherwise corrupt the output silently.
        assert!(
            self.pending[src],
            "async alltoallv protocol violation: unexpected chunk from rank {src} \
             on tag {} ({} records); bookkeeping already marked it delivered",
            self.tag,
            data.len()
        );
        self.pending[src] = false;
        self.remaining -= 1;
        Some((src, data))
    }

    fn remaining(&self) -> usize {
        self.remaining
    }

    fn recv_counts(&self) -> &[usize] {
        &self.recv_counts
    }
}

impl Communicator for ThreadComm {
    type Async<T: Clone + Send + 'static> = ShmemAsync<T>;

    fn size(&self) -> usize {
        self.members.len()
    }

    fn rank(&self) -> usize {
        self.my_index
    }

    fn world_rank(&self) -> usize {
        self.members[self.my_index]
    }

    fn world_rank_of(&self, r: usize) -> usize {
        self.members[r]
    }

    fn cores_per_node(&self) -> usize {
        self.uni.cores_per_node
    }

    fn node(&self) -> usize {
        self.world_rank() / self.uni.cores_per_node
    }

    fn now(&self) -> f64 {
        self.uni.start.elapsed().as_secs_f64()
    }

    fn compute<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = self.now();
        let r = f();
        self.uni
            .recorder
            .add_compute(self.world_rank(), self.now() - t0);
        r
    }

    fn charge_compute(&self, seconds: f64) {
        // Modeled charges shape *virtual* time; on a wall-clock backend the
        // work takes the time it takes, so the charge is recorded for the
        // ledger but the thread is not stalled.
        self.uni.recorder.add_compute(self.world_rank(), seconds);
    }

    fn trace_phase(&self, name: &str) {
        self.uni.recorder.set_phase(name);
    }

    fn recorder(&self) -> &telemetry::Recorder {
        &self.uni.recorder
    }

    fn try_alloc(&self, _bytes: usize) -> Result<(), OomError> {
        // No simulated budget on the real backend: host RAM is the budget.
        Ok(())
    }

    fn free(&self, _bytes: usize) {}

    fn memory_pressure_with(&self, _extra: usize) -> f64 {
        0.0
    }

    fn send_vec<T: Clone + Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        Self::assert_user_tag(tag);
        self.send_raw(dst, tag, data);
    }

    fn recv_vec<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        Self::assert_user_tag(tag);
        self.recv_vec_raw(src, tag)
    }

    fn barrier(&self) {
        self.count("coll.barrier", 1);
        let p = self.size();
        if p == 1 {
            return;
        }
        let base = self.next_coll_tag();
        let r = self.rank();
        let mut k = 0u32;
        while (1usize << k) < p {
            let d = 1usize << k;
            let dst = (r + d) % p;
            let src = (r + p - d) % p;
            self.send_raw::<u8>(dst, base + u64::from(k), Vec::new());
            let _ = self.recv_vec_raw::<u8>(src, base + u64::from(k));
            k += 1;
        }
    }

    fn bcast<T: Clone + Send + 'static>(&self, root: usize, data: Option<Vec<T>>) -> Vec<T> {
        self.count("coll.bcast", 1);
        let p = self.size();
        let tag = self.next_coll_tag();
        if p == 1 {
            return data.expect("root must supply data");
        }
        let vr = (self.rank() + p - root) % p; // virtual rank, root = 0
        let mut buf: Option<Vec<T>> = if vr == 0 {
            Some(data.expect("root must supply data"))
        } else {
            None
        };
        let rounds = (usize::BITS - (p - 1).leading_zeros()) as usize;
        for k in 0..rounds {
            let d = 1usize << k;
            if buf.is_none() && vr >= d && vr < 2 * d {
                let parent_vr = vr - d;
                let parent = (parent_vr + root) % p;
                buf = Some(self.recv_vec_raw::<T>(parent, tag + k as u64));
            } else if buf.is_some() && vr < d {
                let child_vr = vr + d;
                if child_vr < p {
                    let child = (child_vr + root) % p;
                    self.send_slice_raw(child, tag + k as u64, buf.as_ref().expect("buffered"));
                }
            }
        }
        buf.expect("broadcast reached every rank")
    }

    fn gatherv<T: Clone + Send + 'static>(&self, root: usize, data: &[T]) -> Option<Vec<Vec<T>>> {
        self.count("coll.gatherv", 1);
        let p = self.size();
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut out: Vec<Vec<T>> = Vec::with_capacity(p);
            for src in 0..p {
                if src == root {
                    out.push(data.to_vec());
                } else {
                    out.push(self.recv_vec_raw::<T>(src, tag));
                }
            }
            Some(out)
        } else {
            self.send_slice_raw(root, tag, data);
            None
        }
    }

    fn alltoall<T: Clone + Send + 'static>(&self, data: &[T]) -> Vec<T> {
        self.count("coll.alltoall", 1);
        let p = self.size();
        assert_eq!(data.len(), p, "alltoall requires one item per rank");
        let tag = self.next_coll_tag();
        let me = self.rank();
        for (dst, item) in data.iter().enumerate() {
            if dst != me {
                self.send_raw(dst, tag, vec![item.clone()]);
            }
        }
        let mut out: Vec<T> = Vec::with_capacity(p);
        for src in 0..p {
            if src == me {
                out.push(data[me].clone());
            } else {
                out.push(self.recv_val_raw::<T>(src, tag));
            }
        }
        out
    }

    fn alltoallv_given_counts<T: Clone + Send + 'static>(
        &self,
        data: &[T],
        send_counts: &[usize],
        recv_counts: &[usize],
    ) -> Vec<T> {
        self.count("coll.alltoallv", 1);
        let p = self.size();
        assert_eq!(send_counts.len(), p, "one send count per rank");
        assert_eq!(recv_counts.len(), p, "one recv count per rank");
        let total: usize = send_counts.iter().sum();
        assert_eq!(total, data.len(), "send counts must cover the data");
        let tag = self.next_coll_tag();
        let me = self.rank();

        let mut offsets = Vec::with_capacity(p + 1);
        offsets.push(0usize);
        for &c in send_counts {
            offsets.push(offsets.last().copied().expect("non-empty") + c);
        }
        // Staggered send order (start at me+1, wrap), exactly as the
        // simulator and real MPI all-to-alls do, to spread arrivals.
        for i in 1..p {
            let dst = (me + i) % p;
            if send_counts[dst] > 0 {
                self.send_slice_raw(dst, tag, &data[offsets[dst]..offsets[dst + 1]]);
            }
        }
        let mut out: Vec<T> = Vec::with_capacity(recv_counts.iter().sum());
        for (src, &rc) in recv_counts.iter().enumerate() {
            if src == me {
                out.extend_from_slice(&data[offsets[me]..offsets[me + 1]]);
            } else if rc > 0 {
                let chunk = self.recv_vec_raw::<T>(src, tag);
                assert_eq!(chunk.len(), rc, "alltoallv count mismatch from {src}");
                out.extend(chunk);
            }
        }
        out
    }

    fn alltoallv_async_given_counts<T: Clone + Send + 'static>(
        &self,
        data: &[T],
        send_counts: &[usize],
        recv_counts: Vec<usize>,
    ) -> ShmemAsync<T> {
        self.count("coll.alltoallv_async", 1);
        let p = self.size();
        assert_eq!(send_counts.len(), p);
        assert_eq!(send_counts.iter().sum::<usize>(), data.len());
        let tag = self.next_coll_tag();
        let me = self.rank();

        let mut offsets = Vec::with_capacity(p + 1);
        offsets.push(0usize);
        for &c in send_counts {
            offsets.push(offsets.last().copied().expect("non-empty") + c);
        }
        let self_slice = &data[offsets[me]..offsets[me + 1]];
        let self_chunk = (!self_slice.is_empty()).then(|| self_slice.to_vec());
        for i in 1..p {
            let dst = (me + i) % p;
            let chunk = &data[offsets[dst]..offsets[dst + 1]];
            if !chunk.is_empty() {
                self.send_slice_raw(dst, tag, chunk);
            }
        }

        let mut pending = vec![false; p];
        let mut remaining = 0usize;
        for (src, item) in pending.iter_mut().enumerate() {
            if src != me && recv_counts[src] > 0 {
                *item = true;
                remaining += 1;
            }
        }
        let has_self = self_chunk.is_some();
        ShmemAsync {
            tag,
            pending,
            recv_counts,
            self_chunk,
            remaining: remaining + usize::from(has_self),
        }
    }

    fn scatterv<T: Clone + Send + 'static>(
        &self,
        root: usize,
        chunks: Option<Vec<Vec<T>>>,
    ) -> Vec<T> {
        self.count("coll.scatterv", 1);
        let p = self.size();
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let chunks = chunks.expect("root must supply chunks");
            assert_eq!(chunks.len(), p, "one chunk per rank");
            let mut mine = Vec::new();
            for (dst, chunk) in chunks.into_iter().enumerate() {
                if dst == root {
                    mine = chunk;
                } else {
                    self.send_raw(dst, tag, chunk);
                }
            }
            mine
        } else {
            self.recv_vec_raw(root, tag)
        }
    }

    fn split(&self, color: Option<i64>, key: i64) -> Option<ThreadComm> {
        // (color, key) for every member, in this-comm rank order; `None`
        // encoded as an i64::MIN sentinel paired with a validity flag —
        // identical to the simulator's split.
        let mine = [(color.unwrap_or(i64::MIN), i64::from(color.is_some()), key)];
        let all = self.allgather(&mine[..]);
        let split_seq = self.next_split_seq();
        let my_color = color?;

        let mut group: Vec<(i64, usize)> = all
            .iter()
            .enumerate()
            .filter(|(_, &(c, valid, _))| valid == 1 && c == my_color)
            .map(|(old_rank, &(_, _, k))| (k, old_rank))
            .collect();
        group.sort_unstable();
        let members: Arc<[usize]> = group
            .iter()
            .map(|&(_, old)| self.world_rank_of(old))
            .collect();
        let my_index = group
            .iter()
            .position(|&(_, old)| old == self.rank())
            .expect("calling rank is in its own color group");

        let ctx = self.uni.context_for_split(self.ctx, split_seq, my_color);
        Some(ThreadComm::new(
            Arc::clone(&self.uni),
            ctx,
            members,
            my_index,
        ))
    }
}
