//! # shmem — real shared-memory execution backend
//!
//! Runs a "distributed" program for real on one machine: each rank is an
//! OS thread, point-to-point messages travel through bounded per-rank
//! mailboxes (full mailbox = sender blocks, i.e. genuine backpressure),
//! and `now()` is wall-clock seconds from a shared [`std::time::Instant`]
//! epoch — so telemetry spans and the resulting `RunReport`s carry *real*
//! times, not modeled ones.
//!
//! This is the second implementation of the [`comm::Communicator`]
//! transport trait; the first is `mpisim`, the deterministic virtual-time
//! simulator. The sort in `sdssort` is generic over the trait, so the same
//! algorithm code runs on both:
//!
//! - **mpisim** answers *"what would this cost on a modeled Cray XC30?"* —
//!   single-threaded, reproducible to the tick, with invariant checking.
//! - **shmem** (this crate) answers *"does it actually run, scale, and
//!   stay correct under true concurrency?"* — real threads, real races on
//!   arrival order, real seconds.
//!
//! The collectives reproduce the simulator's algorithms and deterministic
//! reduction orders (rank-order folds), so for a given seed both backends
//! produce bit-identical sorted output; see the workspace's
//! `backend_equivalence` tests.
//!
//! ## Quick start
//!
//! ```
//! use comm::Communicator;
//! use sdssort::{sds_sort, SdsConfig};
//! use shmem::ThreadWorld;
//!
//! let report = ThreadWorld::new(4).run(|comm| {
//!     let r = comm.rank() as u64;
//!     let data: Vec<u64> = (0..100).map(|i| (i * 7 + r) % 13).collect();
//!     sds_sort(comm, data, &SdsConfig::default()).expect("no memory budget set")
//! });
//! let all: Vec<u64> = report.results.iter().flat_map(|o| o.data.clone()).collect();
//! assert!(all.windows(2).all(|w| w[0] <= w[1]));
//! assert!(report.wall_s > 0.0);
//! ```

#![warn(missing_docs)]

mod comm;
pub mod mailbox;
mod resident;
mod universe;
mod world;

pub use crate::comm::{ShmemAborted, ShmemAsync, ThreadComm};
pub use resident::{GangError, ResidentWorld};
pub use universe::{NetStats, Universe};
pub use world::{ThreadReport, ThreadWorld};
