//! Graceful degradation under memory pressure: the resilient exchange.
//!
//! The paper treats a receive buffer that exceeds the memory budget as a
//! whole-job crash (step 5 of Fig. 1) — that is what [`crate::sds_sort`]
//! faithfully reproduces and what the skew experiments of Fig. 8 measure.
//! This module adds the pragmatic alternative an operator would actually
//! want: when a rank's projected memory high-water crosses a configurable
//! pressure threshold mid-exchange, the rank *spills* received chunks
//! through [`crate::external`]'s run/merge machinery instead of aborting,
//! and the job completes (slower, but correctly and stably).
//!
//! The key interoperability property: the synchronous and asynchronous
//! exchanges consume exactly one collective tag with an identical staggered
//! wire format, so in resilient mode **all** ranks run the asynchronous
//! exchange and each rank independently decides in-memory vs. spill —
//! mixed decisions across ranks need no extra coordination. One allreduce
//! classifies ranks as `0` (in memory), `1` (spilling) or `2` (cannot even
//! stage a single chunk); only a `2` anywhere aborts the collective sort,
//! preserving the paper's crash semantics for truly hopeless budgets.
//!
//! Simulated-memory accounting on the spill path reserves only the staging
//! buffer (the largest incoming chunk): received chunks are written to disk
//! and dropped one at a time, and the final merge is modelled as streaming
//! to the consumer. Disk traffic is charged to the virtual clock through a
//! simple seek + bandwidth model.

use crate::config::SdsConfig;
use crate::external::{remove_run, write_run, PlainData, RunFile, RunMerger};
use crate::merge::kway_merge;
use crate::record::Sortable;
use crate::sort::{charged, sds_sort_impl, ExchangeBackend, SortError, SortOutput};
use crate::stats::SortStats;
use comm::{AsyncExchange, Communicator};
use std::io;
use std::path::PathBuf;

/// Knobs for the resilient exchange.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Fraction of the effective memory budget above which a rank degrades
    /// to spilling even if the full receive buffer would still fit.
    pub pressure_threshold: f64,
    /// Directory for spilled run files (a `rank{NNNN}` subdirectory is
    /// created per rank).
    pub spill_dir: PathBuf,
    /// Maximum records per spilled run file; large incoming chunks are
    /// split into consecutive runs of at most this size.
    pub spill_chunk_records: usize,
    /// Modelled disk streaming bandwidth in bytes/second.
    pub disk_bw: f64,
    /// Modelled per-file seek/open latency in seconds.
    pub disk_seek_s: f64,
}

impl ResilienceConfig {
    /// Defaults: degrade at 80% pressure, 64 Ki records per run, 500 MB/s
    /// disk with 100 µs seeks.
    pub fn new(spill_dir: impl Into<PathBuf>) -> Self {
        Self {
            pressure_threshold: 0.8,
            spill_dir: spill_dir.into(),
            spill_chunk_records: 1 << 16,
            disk_bw: 5e8,
            disk_seek_s: 1e-4,
        }
    }
}

/// [`crate::sds_sort`] with graceful degradation: ranks whose receive
/// buffer would breach the memory-pressure threshold spill incoming chunks
/// to disk and stream-merge them instead of failing the whole job.
///
/// Requires [`PlainData`] records (they round-trip through disk). Output
/// and stability guarantees are identical to `sds_sort`; ranks that
/// degraded report it in [`SortStats::spilled`] / `spill_records`.
pub fn sds_sort_resilient<T: Sortable + PlainData, C: Communicator>(
    comm: &C,
    data: Vec<T>,
    cfg: &SdsConfig,
    rcfg: &ResilienceConfig,
) -> Result<SortOutput<T>, SortError> {
    sds_sort_impl(comm, data, cfg, &SpillExchange { rcfg })
}

/// Exchange backend that degrades to disk spilling under memory pressure.
struct SpillExchange<'a> {
    rcfg: &'a ResilienceConfig,
}

/// Per-rank exchange strategy, ordered by severity for the allreduce.
const IN_MEMORY: u8 = 0;
const SPILL: u8 = 1;
const HARD_OOM: u8 = 2;

impl<T: Sortable + PlainData, C: Communicator> ExchangeBackend<T, C> for SpillExchange<'_> {
    fn exchange(
        &self,
        comm: &C,
        data: Vec<T>,
        scounts: &[usize],
        cfg: &SdsConfig,
        stats: &mut SortStats,
        t1: f64,
        sp_ex: telemetry::SpanId,
    ) -> Result<Vec<T>, SortError> {
        let p = comm.size();
        let rec = std::mem::size_of::<T>();
        let rcounts = comm.alltoall(scounts);
        let m: usize = rcounts.iter().sum();
        let bytes = m * rec;
        // Spilling stages one chunk at a time; the largest incoming chunk
        // bounds the resident set.
        let chunk_bytes = rcounts.iter().copied().max().unwrap_or(0) * rec;

        let pressure = comm.memory_pressure_with(bytes);
        let mut reserved = 0usize;
        let mut hard_oom = None;
        let code = if pressure <= self.rcfg.pressure_threshold && comm.try_alloc(bytes).is_ok() {
            reserved = bytes;
            IN_MEMORY
        } else {
            match comm.try_alloc(chunk_bytes) {
                Ok(()) => {
                    reserved = chunk_bytes;
                    SPILL
                }
                Err(e) => {
                    hard_oom = Some(e);
                    HARD_OOM
                }
            }
        };
        let worst = comm.allreduce(code, |a, b| a.max(b));
        if worst == HARD_OOM {
            if reserved > 0 {
                comm.free(reserved);
            }
            comm.span_end(sp_ex);
            return Err(match hard_oom {
                Some(e) => SortError::Oom(e),
                None => SortError::PeerOom,
            });
        }
        stats.recv_count = m;

        // All ranks take the asynchronous exchange (one collective tag,
        // wire-compatible with the synchronous path), so per-rank
        // in-memory/spill decisions interoperate freely.
        let mut pending = comm.alltoallv_async_given_counts(&data, scounts, rcounts.clone());
        drop(data);

        let result = if code == IN_MEMORY {
            let mut chunks: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
            while let Some((src, chunk)) = pending.wait_any(comm) {
                chunks[src] = chunk;
            }
            stats.exchange_s = comm.now() - t1;
            comm.span_end(sp_ex);
            comm.trace_phase("local-order");
            let sp_lo = comm.span_begin("local-order");
            let t2 = comm.now();
            // Source-rank order with a stable k-way merge (ties to the
            // lowest run index) preserves global stability.
            let refs: Vec<&[T]> = chunks.iter().map(|c| c.as_slice()).collect();
            let out = charged(
                comm,
                cfg,
                |mo| mo.kway_merge_cost(m, p),
                || kway_merge(&refs),
            );
            stats.local_order_s = comm.now() - t2;
            comm.span_end(sp_lo);
            Ok(out)
        } else {
            stats.spilled = true;
            stats.spill_records = m;
            if comm.recorder().enabled() {
                comm.event(
                    "degrade.spill",
                    &format!(
                        "pressure {pressure:.2} over threshold {}; spilling {m} records",
                        self.rcfg.pressure_threshold
                    ),
                );
            }
            self.spill_and_merge(comm, cfg, stats, &mut pending, m, t1, sp_ex)
        };
        let out = match result {
            Ok(out) => out,
            Err(e) => {
                comm.free(reserved);
                return Err(e);
            }
        };
        comm.free(reserved);
        debug_assert_eq!(out.len(), m);
        Ok(out)
    }
}

impl SpillExchange<'_> {
    /// Disk-time charge for touching one file of `bytes` payload.
    fn io_cost(&self, bytes: usize) -> f64 {
        self.rcfg.disk_seek_s + bytes as f64 / self.rcfg.disk_bw
    }

    #[allow(clippy::too_many_arguments)]
    fn spill_and_merge<T: Sortable + PlainData, C: Communicator>(
        &self,
        comm: &C,
        cfg: &SdsConfig,
        stats: &mut SortStats,
        pending: &mut C::Async<T>,
        m: usize,
        t1: f64,
        sp_ex: telemetry::SpanId,
    ) -> Result<Vec<T>, SortError> {
        let rec = std::mem::size_of::<T>();
        let dir = self
            .rcfg
            .spill_dir
            .join(format!("rank{:04}", comm.world_rank()));
        let run_records = self.rcfg.spill_chunk_records.max(1);
        let io_err = |e: io::Error| SortError::Io(e.to_string());

        // Each incoming chunk is already sorted (a contiguous slice of the
        // sender's sorted share), so it spills as ready-made runs; keyed by
        // (source, part) the runs replay the stable merge order later.
        let mut runs: Vec<(usize, usize, RunFile)> = Vec::new();
        let spill_err = loop {
            let Some((src, chunk)) = pending.wait_any(comm) else {
                break None;
            };
            let mut failed = None;
            for (part, piece) in chunk.chunks(run_records).enumerate() {
                let path = dir.join(format!("src{src:06}-part{part:04}.bin"));
                match write_run(piece, &path) {
                    Ok(rf) => {
                        comm.charge_compute(self.io_cost(std::mem::size_of_val(piece)));
                        runs.push((src, part, rf));
                    }
                    Err(e) => {
                        failed = Some(io_err(e));
                        break;
                    }
                }
            }
            if failed.is_some() {
                break failed;
            }
            // `chunk` drops here: the resident set stays one chunk deep.
        };
        if let Some(e) = spill_err {
            // Drain the exchange so peers' sends are consumed, then clean
            // up before surfacing the disk failure.
            while pending.wait_any(comm).is_some() {}
            for (_, _, rf) in &runs {
                remove_run(rf);
            }
            let _ = std::fs::remove_dir(&dir);
            comm.span_end(sp_ex);
            return Err(e);
        }
        stats.exchange_s = comm.now() - t1;
        comm.span_end(sp_ex);

        comm.trace_phase("local-order");
        let sp_lo = comm.span_begin("local-order");
        let t2 = comm.now();
        runs.sort_by_key(|&(src, part, _)| (src, part));
        let run_files: Vec<RunFile> = runs.into_iter().map(|(_, _, rf)| rf).collect();
        // Read-back: one seek per run plus a full streaming pass.
        comm.charge_compute(
            run_files.len() as f64 * self.rcfg.disk_seek_s + (m * rec) as f64 / self.rcfg.disk_bw,
        );
        let merged = charged(
            comm,
            cfg,
            |mo| mo.kway_merge_cost(m, run_files.len().max(2)),
            || -> io::Result<Vec<T>> { RunMerger::new(&run_files)?.collect() },
        );
        for rf in &run_files {
            remove_run(rf);
        }
        let _ = std::fs::remove_dir(&dir);
        let out = match merged {
            Ok(out) => out,
            Err(e) => {
                comm.span_end(sp_lo);
                return Err(io_err(e));
            }
        };
        stats.local_order_s = comm.now() - t2;
        comm.span_end(sp_lo);
        Ok(out)
    }
}
