//! Configuration of the SDS-Sort driver.
//!
//! The paper exposes three empirically tuned thresholds (§2.1, §4.1.1):
//!
//! * `τm` — merge per-node data before the exchange when the average
//!   message size `n/p` is below this (paper: 160 MB on Edison);
//! * `τo` — overlap exchange and local ordering when the process count is
//!   below this (paper: 4096 on Edison);
//! * `τs` — use k-way merging for final local ordering when the process
//!   count is below this, otherwise re-sort the partially ordered buffer
//!   (paper: 4000 on Edison).
//!
//! Defaults here are scaled to the simulated machine; every harness that
//! reproduces a figure sweeps the relevant threshold explicitly.

use crate::record::Sortable;

/// How compute time is charged to the virtual clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComputeCharge {
    /// Measure wall-clock time of each compute section (accurate when the
    /// host is not oversubscribed).
    Measured,
    /// Charge analytically modelled durations from a [`ComputeModel`]
    /// (robust for scaling studies with thousands of simulated ranks).
    Modeled(ComputeModel),
}

/// Calibrated per-record compute costs, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeModel {
    /// Comparison-sort cost: seconds per `record · log2(n)` unit.
    pub sort_per_key_log: f64,
    /// Sequential merge cost: seconds per record per merge pass.
    pub merge_per_key: f64,
    /// Linear scan/copy cost: seconds per record.
    pub scan_per_key: f64,
    /// Stable-sort slowdown over the unstable sort (Table 1 measures
    /// ~1.4–2× for `std::stable_sort` vs `std::sort`).
    pub stable_factor: f64,
}

impl ComputeModel {
    /// A model with typical modern-CPU constants (≈100M keys/s·log for
    /// sorting, ≈400M keys/s merging). Use [`calibrate`](Self::calibrate)
    /// for host-specific constants.
    pub fn nominal() -> Self {
        Self {
            sort_per_key_log: 1.0e-8,
            merge_per_key: 2.5e-9,
            scan_per_key: 1.0e-9,
            stable_factor: 1.5,
        }
    }

    /// Measure the host's sort and merge throughput once and derive model
    /// constants. Deterministic input, ~10 ms of work.
    pub fn calibrate() -> Self {
        use std::time::Instant;
        let n = 1 << 19;
        let mut data: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let t0 = Instant::now();
        data.sort_unstable();
        let sort_secs = t0.elapsed().as_secs_f64();
        let log_n = (n as f64).log2();
        let sort_per_key_log = (sort_secs / (n as f64 * log_n)).max(1e-11);

        let half = n / 2;
        let (a, b) = data.split_at(half);
        let t1 = Instant::now();
        let mut merged = Vec::with_capacity(n);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] <= b[j] {
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        let merge_secs = t1.elapsed().as_secs_f64();
        std::hint::black_box(&merged);
        let merge_per_key = (merge_secs / n as f64).max(1e-12);

        // Stable-sort premium: time the stable sort on the same input.
        let mut data2: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let t2 = Instant::now();
        data2.sort();
        let stable_secs = t2.elapsed().as_secs_f64();
        std::hint::black_box(&data2);
        let stable_factor = (stable_secs / sort_secs).clamp(1.0, 4.0);

        Self {
            sort_per_key_log,
            merge_per_key,
            scan_per_key: merge_per_key * 0.5,
            stable_factor,
        }
    }

    /// Modelled cost of comparison-sorting `n` records, stable or not.
    pub fn sort_cost_with(&self, n: usize, stable: bool) -> f64 {
        let base = self.sort_cost(n);
        if stable {
            base * self.stable_factor
        } else {
            base
        }
    }

    /// Modelled cost of comparison-sorting `n` records.
    pub fn sort_cost(&self, n: usize) -> f64 {
        if n < 2 {
            return 0.0;
        }
        self.sort_per_key_log * n as f64 * (n as f64).log2()
    }

    /// Modelled cost of merging `n` total records from `k` sorted chunks.
    pub fn kway_merge_cost(&self, n: usize, k: usize) -> f64 {
        if n == 0 || k < 2 {
            return self.scan_per_key * n as f64;
        }
        self.merge_per_key * n as f64 * (k as f64).log2().max(1.0)
    }

    /// Modelled cost of linearly scanning or copying `n` records.
    pub fn scan_cost(&self, n: usize) -> f64 {
        self.scan_per_key * n as f64
    }

    /// Modelled cost of sorting `n` records that consist of `k` presorted
    /// runs: adaptive sorts approach `O(n log k)` on such inputs (paper
    /// §2.7's argument for re-sorting partially ordered data).
    pub fn adaptive_sort_cost(&self, n: usize, k: usize) -> f64 {
        self.kway_merge_cost(n, k.max(2)) * 1.15 + self.scan_cost(n)
    }
}

/// Which partitioning rule assigns records to destination ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// The paper's skew-aware partition (replicated-pivot splitting).
    #[default]
    SkewAware,
    /// Classic `upper_bound` partition — ablation switch isolating the
    /// skew-aware contribution (all duplicates of a pivot value land on
    /// one rank; incompatible with `stable`).
    Classic,
}

/// Which kernel `SdssLocalSort` uses to sort each thread's chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalKernel {
    /// Decide per call: LSD radix when the key has a monotone `u64`
    /// embedding, `n ≥` [`crate::radix::RADIX_MIN_N`], and the input's
    /// keys occupy at most [`crate::radix::RADIX_MAX_AUTO_DIGITS`] digit
    /// bytes (checked with one read pass); comparison sort otherwise.
    /// [`crate::autotune`] replaces this with `Radix` when radix wins its
    /// worst-case (full-range-key) probe outright.
    #[default]
    Auto,
    /// Force the LSD radix kernel (falls back to comparison when the key
    /// has no monotone `u64` embedding).
    Radix,
    /// Force the comparison kernel (`slice::sort_unstable_by_key` /
    /// `sort_by_key`).
    Comparison,
}

/// How global pivots are obtained (§2.4 weighs these two options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PivotSource {
    /// Regular (equal-striped) sampling + distributed sort of the pooled
    /// samples — the paper's choice; robust to duplicates by construction.
    #[default]
    Sampling,
    /// Iterative histogram refinement (HykSort's machinery). §2.4 notes it
    /// "might need secondary sorting keys" on skewed data — but only when
    /// paired with a duplicate-blind partition; SDS-Sort's skew-aware
    /// partition makes it safe (see the `ablation_pivot_source` harness).
    Histogram,
}

/// Full configuration for one SDS-Sort invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdsConfig {
    /// Preserve input order of equal keys (`sf` in the paper).
    pub stable: bool,
    /// Node-merging threshold `τm`, in *bytes* of average per-destination
    /// message (`n/p · record size`). Merge node-locally below this.
    pub tau_m_bytes: usize,
    /// Overlap threshold `τo`: overlap exchange and local ordering when
    /// `p < tau_o` (and the sort is not stable).
    pub tau_o: usize,
    /// Local-ordering threshold `τs`: k-way merge when `p < tau_s`, re-sort
    /// otherwise.
    pub tau_s: usize,
    /// Threads used by the shared-memory local sort (`c` in
    /// `SdssLocalSort`). Keep at 1 inside simulated worlds (each rank is
    /// already a thread); raise it for standalone shared-memory use.
    pub local_threads: usize,
    /// Local-sort kernel selection (see [`LocalKernel`]).
    pub local_kernel: LocalKernel,
    /// How compute is charged to virtual clocks.
    pub charge: ComputeCharge,
    /// Partitioning rule (ablation switch; default skew-aware).
    pub partition: PartitionStrategy,
    /// Global pivot source (ablation switch; default regular sampling).
    pub pivot_source: PivotSource,
    /// Oversampling factor `s ≥ 1`: each rank contributes `s·(p-1)` local
    /// pivots instead of `p-1`. The paper uses `s = 1` (regular sampling);
    /// larger `s` tightens the per-pivot bracketing from `2N/p²` to
    /// `2N/(s·p²)` and hence the workload bound from `4N/p` toward
    /// `(2 + 2/s)·N/p`, at the cost of `s×` more pivot-selection traffic.
    pub oversample: usize,
}

impl Default for SdsConfig {
    fn default() -> Self {
        Self {
            stable: false,
            // Paper: 160 MB on Edison. Scaled to the simulated machine's
            // smaller per-rank volumes; harnesses sweep this.
            tau_m_bytes: 160 << 20,
            tau_o: 4096,
            tau_s: 4000,
            local_threads: 1,
            local_kernel: LocalKernel::Auto,
            charge: ComputeCharge::Measured,
            partition: PartitionStrategy::SkewAware,
            pivot_source: PivotSource::Sampling,
            oversample: 1,
        }
    }
}

impl SdsConfig {
    /// Configuration for the stable variant ("SDS-Sort/stable").
    pub fn stable() -> Self {
        Self {
            stable: true,
            ..Self::default()
        }
    }

    /// Configuration charging modelled compute (for scaling studies).
    pub fn modeled(model: ComputeModel) -> Self {
        Self {
            charge: ComputeCharge::Modeled(model),
            ..Self::default()
        }
    }

    /// Whether node-level merging applies for local size `n`, world size
    /// `p`, and record type `T` (paper line 3: `n/p ≤ τm`).
    pub fn should_node_merge<T: Sortable>(&self, n: usize, p: usize) -> bool {
        let avg_msg_bytes = n / p.max(1) * std::mem::size_of::<T>();
        avg_msg_bytes <= self.tau_m_bytes
    }

    /// Whether to overlap exchange with local ordering (paper line 15,
    /// inverted: overlap unless stable or `p > τo`).
    pub fn should_overlap(&self, p: usize) -> bool {
        !self.stable && p < self.tau_o
    }

    /// Whether final local ordering uses k-way merging (paper line 17).
    pub fn should_merge_local(&self, p: usize) -> bool {
        p < self.tau_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_thresholds() {
        let c = SdsConfig::default();
        assert_eq!(c.tau_m_bytes, 160 << 20);
        assert_eq!(c.tau_o, 4096);
        assert_eq!(c.tau_s, 4000);
        assert!(!c.stable);
    }

    #[test]
    fn stable_disables_overlap() {
        let c = SdsConfig::stable();
        assert!(!c.should_overlap(2));
        let f = SdsConfig::default();
        assert!(f.should_overlap(2));
        assert!(!f.should_overlap(1 << 20));
    }

    #[test]
    fn node_merge_threshold_uses_bytes() {
        let mut c = SdsConfig::default();
        c.tau_m_bytes = 1000;
        // n/p = 100 u64 records = 800 B ≤ 1000 → merge
        assert!(c.should_node_merge::<u64>(800, 8));
        // n/p = 200 u64 = 1600 B > 1000 → no merge
        assert!(!c.should_node_merge::<u64>(1600, 8));
    }

    #[test]
    fn local_ordering_choice() {
        let c = SdsConfig::default();
        assert!(c.should_merge_local(8));
        assert!(!c.should_merge_local(5000));
    }

    #[test]
    fn compute_model_costs_monotone() {
        let m = ComputeModel::nominal();
        assert!(m.sort_cost(1000) < m.sort_cost(10_000));
        assert!(m.kway_merge_cost(1000, 2) < m.kway_merge_cost(1000, 64));
        assert_eq!(m.sort_cost(1), 0.0);
    }

    #[test]
    fn calibrate_produces_sane_constants() {
        let m = ComputeModel::calibrate();
        assert!(m.sort_per_key_log > 0.0 && m.sort_per_key_log < 1e-6);
        assert!(m.merge_per_key > 0.0 && m.merge_per_key < 1e-6);
    }
}
