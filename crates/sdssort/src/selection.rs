//! Distributed order statistics: k-th smallest key and global top-k.
//!
//! The PTF pipeline that motivates the paper's Fig. 9 only *ranks* objects
//! by classifier score to short-list candidates — which needs a selection,
//! not a full sort. This module provides both primitives on the same
//! substrate, using iterative candidate refinement (the selection analog
//! of histogram splitter refinement): each round, ranks nominate candidate
//! keys from their active windows, one reduction computes every
//! candidate's global rank, and windows shrink geometrically. Duplicates
//! are handled exactly — the k-th statistic is well defined even when the
//! key space is 99 % one value.

use crate::record::Sortable;
use crate::search::{lower_bound, upper_bound};
use comm::Communicator;

/// Find the key of the `k`-th smallest record globally (`k` is 0-based;
/// `k = 0` is the minimum). `data` must be sorted locally. Collective:
/// every rank returns the same key.
///
/// # Panics
/// Panics if `k >=` total record count (checked collectively).
pub fn kth_smallest_key<T: Sortable, C: Communicator>(comm: &C, data: &[T], k: u64) -> T::Key {
    debug_assert!(crate::merge::is_sorted_by_key(data));
    let total = comm.allreduce(data.len() as u64, |a, b| a + b);
    assert!(k < total, "k = {k} out of range (N = {total})");

    // Active window per rank.
    let mut lo = 0usize;
    let mut hi = data.len();
    loop {
        // Nominate up to 3 candidates per rank from the window.
        let mut mine: Vec<T::Key> = Vec::with_capacity(3);
        if lo < hi {
            mine.push(data[lo].key());
            mine.push(data[(lo + hi) / 2].key());
            mine.push(data[hi - 1].key());
        }
        let (mut candidates, _) = comm.allgatherv(&mine);
        candidates.sort_unstable();
        candidates.dedup();
        debug_assert!(
            !candidates.is_empty(),
            "windows globally non-empty until found"
        );

        // Global rank of each candidate: how many records are < c, and how
        // many are <= c.
        let below: Vec<u64> = candidates
            .iter()
            .map(|&c| lower_bound(data, c) as u64)
            .collect();
        let upto: Vec<u64> = candidates
            .iter()
            .map(|&c| upper_bound(data, c) as u64)
            .collect();
        let g_below = comm.allreduce(below, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect());
        let g_upto = comm.allreduce(upto, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect());

        // If some candidate's [below, upto) straddles k, it IS the answer.
        for (i, &c) in candidates.iter().enumerate() {
            if g_below[i] <= k && k < g_upto[i] {
                return c;
            }
        }
        // Otherwise narrow the window: keep keys strictly between the
        // tightest candidates bracketing k.
        let mut lower: Option<T::Key> = None; // largest candidate with upto <= k
        let mut upper: Option<T::Key> = None; // smallest candidate with below > k
        for (i, &c) in candidates.iter().enumerate() {
            if g_upto[i] <= k {
                lower = Some(c);
            }
            if upper.is_none() && g_below[i] > k {
                upper = Some(c);
            }
        }
        if let Some(l) = lower {
            lo = lo.max(upper_bound(data, l));
        }
        if let Some(u) = upper {
            hi = hi.min(lower_bound(data, u));
        }
        if lo > hi {
            hi = lo;
        }
    }
}

/// The `k` globally largest records, gathered on every rank in descending
/// key order. Equal-key records needed to fill exactly `k` slots are taken
/// from lower ranks first (deterministic). `data` must be sorted locally.
pub fn top_k<T: Sortable, C: Communicator>(comm: &C, data: &[T], k: usize) -> Vec<T> {
    let total = comm.allreduce(data.len() as u64, |a, b| a + b);
    let k = (k as u64).min(total) as usize;
    if k == 0 {
        return Vec::new();
    }
    // Threshold key: the k-th largest = (N-k)-th smallest (0-based).
    let threshold = kth_smallest_key(comm, data, total - k as u64);

    // Records strictly above the threshold all belong to the top-k.
    let above_start = upper_bound(data, threshold);
    let above: Vec<T> = data[above_start..].to_vec();
    let n_above = comm.allreduce(above.len() as u64, |a, b| a + b) as usize;
    debug_assert!(n_above <= k);
    // Fill the remainder with records equal to the threshold, taken from
    // lower ranks first.
    let need_ties = k - n_above;
    let tie_lo = lower_bound(data, threshold);
    let my_ties = above_start - tie_lo;
    let before_me: u64 = comm.exscan(my_ties as u64, |a, b| a + b).unwrap_or(0);
    let take = need_ties.saturating_sub(before_me as usize).min(my_ties);
    let mut mine: Vec<T> = data[tie_lo..tie_lo + take].to_vec();
    mine.extend_from_slice(&above);

    // Gather everyone's contributions and order descending by key.
    let (mut all, _) = comm.allgatherv(&mine);
    all.sort_by_key(|r| std::cmp::Reverse(r.key()));
    debug_assert_eq!(all.len(), k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{NetModel, World};
    use rand::prelude::*;

    fn world(p: usize) -> World {
        World::new(p).cores_per_node(4).net(NetModel::zero())
    }

    fn sorted_data(n: usize, max: u64, seed: u64, rank: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed ^ (rank as u64) << 20);
        let mut v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..max)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn kth_matches_sequential_reference() {
        let p = 5;
        for k in [0u64, 1, 100, 2499, 2500, 4999] {
            let report = world(p).run(move |comm| {
                let data = sorted_data(1000, 500, 7, comm.rank());
                (data.clone(), kth_smallest_key(comm, &data, k))
            });
            let mut all: Vec<u64> = report.results.iter().flat_map(|(d, _)| d.clone()).collect();
            all.sort_unstable();
            for (_, got) in &report.results {
                assert_eq!(*got, all[k as usize], "k={k}");
            }
        }
    }

    #[test]
    fn kth_on_heavy_duplicates() {
        let p = 4;
        let report = world(p).run(|comm| {
            // 90% value 7, the rest 3 and 11
            let mut data = vec![7u64; 900];
            data.extend(vec![3u64; 50]);
            data.extend(vec![11u64; 50]);
            data.sort_unstable();
            (
                kth_smallest_key(comm, &data, 0),
                kth_smallest_key(comm, &data, 500),
                kth_smallest_key(comm, &data, 3999),
            )
        });
        for (min, mid, max) in report.results {
            assert_eq!(min, 3);
            assert_eq!(mid, 7);
            assert_eq!(max, 11);
        }
    }

    #[test]
    fn kth_with_empty_ranks() {
        let p = 4;
        let report = world(p).run(|comm| {
            let data: Vec<u64> = if comm.rank() == 2 {
                (0..100).collect()
            } else {
                Vec::new()
            };
            kth_smallest_key(comm, &data, 42)
        });
        for k in report.results {
            assert_eq!(k, 42);
        }
    }

    #[test]
    fn top_k_matches_reference() {
        let p = 6;
        for k in [1usize, 10, 250, 1200] {
            let report = world(p).run(move |comm| {
                let data = sorted_data(400, 10_000, 13, comm.rank());
                (data.clone(), top_k(comm, &data, k))
            });
            let mut all: Vec<u64> = report.results.iter().flat_map(|(d, _)| d.clone()).collect();
            all.sort_unstable_by(|a, b| b.cmp(a));
            let expect = &all[..k];
            for (_, got) in &report.results {
                assert_eq!(got.len(), k);
                assert_eq!(&got[..], expect, "k={k}");
            }
        }
    }

    #[test]
    fn top_k_exactly_fills_from_ties() {
        let p = 4;
        let report = world(p).run(|comm| {
            // every rank: 10 records of key 5, one record of key 9
            let mut data = vec![5u64; 10];
            data.push(9);
            data.sort_unstable();
            top_k(comm, &data, 7)
        });
        for got in report.results {
            // 4 nines + exactly 3 fives
            assert_eq!(got, vec![9, 9, 9, 9, 5, 5, 5]);
        }
    }

    #[test]
    fn top_k_larger_than_data_returns_everything() {
        let p = 3;
        let report = world(p).run(|comm| {
            let data: Vec<u64> = vec![comm.rank() as u64];
            top_k(comm, &data, 100)
        });
        for got in report.results {
            assert_eq!(got, vec![2, 1, 0]);
        }
    }

    #[test]
    fn top_zero_is_empty() {
        let report = world(2).run(|comm| {
            let data: Vec<u64> = vec![1, 2, 3];
            top_k(comm, &data, 0)
        });
        assert!(report.results.iter().all(Vec::is_empty));
    }
}
