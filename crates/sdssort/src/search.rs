//! Binary-search kernels over sorted record slices, including the paper's
//! local-pivot two-level search.
//!
//! §2.5.1: partitioning must locate each global pivot inside the sorted
//! local array. A full scan is `O(n)` per rank; a direct binary search is
//! `O(log n)` per pivot; SDS-Sort first ranks the global pivot among the
//! `p-1` *local pivots* (whose array positions are known), then searches
//! only the narrowed `⌊n/p⌋`-wide segment. All three variants are
//! implemented here — the figure-6b harness compares them — and all return
//! identical results.

use crate::record::Sortable;

/// First index whose key is `>= key` (like C++ `std::lower_bound`).
pub fn lower_bound<T: Sortable>(data: &[T], key: T::Key) -> usize {
    data.partition_point(|r| r.key() < key)
}

/// First index whose key is `> key` (like C++ `std::upper_bound`).
pub fn upper_bound<T: Sortable>(data: &[T], key: T::Key) -> usize {
    data.partition_point(|r| r.key() <= key)
}

/// Linear-scan `upper_bound` — the naive full-scan partitioning baseline
/// from Fig. 6b ("Sequential Scan").
pub fn upper_bound_scan<T: Sortable>(data: &[T], key: T::Key) -> usize {
    for (i, r) in data.iter().enumerate() {
        if r.key() > key {
            return i;
        }
    }
    data.len()
}

/// Positions and values of the local pivots sampled from a sorted array,
/// used to accelerate repeated searches (paper's "local pivots based
/// partition").
#[derive(Debug, Clone)]
pub struct LocalPivotIndex<K> {
    /// Array positions of the sampled pivots (ascending).
    positions: Vec<usize>,
    /// Keys at those positions.
    keys: Vec<K>,
    /// Length of the indexed array.
    len: usize,
}

impl<K: Ord + Copy> LocalPivotIndex<K> {
    /// Build an index from a sorted array using `count` regular samples
    /// (stride `⌊n/(count+1)⌋`-style; see [`crate::sampling`]).
    pub fn build<T: Sortable<Key = K>>(data: &[T], count: usize) -> Self {
        let positions = crate::sampling::regular_sample_positions(data.len(), count);
        let keys = positions.iter().map(|&p| data[p].key()).collect();
        Self {
            positions,
            keys,
            len: data.len(),
        }
    }

    /// Number of samples in the index.
    pub fn count(&self) -> usize {
        self.positions.len()
    }

    /// Sampled keys (the rank's local pivots).
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Two-level `upper_bound`: rank `key` among the sampled local pivots,
    /// then binary-search only the bracketed segment. Returns the same
    /// index as [`upper_bound`] on the full array.
    pub fn upper_bound<T: Sortable<Key = K>>(&self, data: &[T], key: K) -> usize {
        debug_assert_eq!(data.len(), self.len);
        // Find which segment of the array can contain the boundary.
        // keys[i] is data[positions[i]]; boundary is after every position
        // whose key <= `key`.
        let seg = self.keys.partition_point(|&k| k <= key);
        let lo = if seg == 0 {
            0
        } else {
            self.positions[seg - 1] + 1
        };
        let hi = if seg == self.positions.len() {
            self.len
        } else {
            self.positions[seg] + 1
        };
        lo + upper_bound(&data[lo..hi], key)
    }

    /// Two-level `lower_bound`, same contract as
    /// [`upper_bound`](Self::upper_bound).
    pub fn lower_bound<T: Sortable<Key = K>>(&self, data: &[T], key: K) -> usize {
        debug_assert_eq!(data.len(), self.len);
        let seg = self.keys.partition_point(|&k| k < key);
        let lo = if seg == 0 { 0 } else { self.positions[seg - 1] };
        let hi = if seg == self.positions.len() {
            self.len
        } else {
            self.positions[seg] + 1
        };
        lo + lower_bound(&data[lo..hi], key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn bounds_basic() {
        let data = [1u32, 2, 2, 2, 5, 7];
        assert_eq!(lower_bound(&data, 2), 1);
        assert_eq!(upper_bound(&data, 2), 4);
        assert_eq!(lower_bound(&data, 0), 0);
        assert_eq!(upper_bound(&data, 9), 6);
        assert_eq!(lower_bound(&data, 3), 4);
        assert_eq!(upper_bound(&data, 3), 4);
    }

    #[test]
    fn scan_matches_binary() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut data: Vec<u32> = (0..300).map(|_| rng.gen_range(0..40)).collect();
        data.sort_unstable();
        for key in 0..45u32 {
            assert_eq!(
                upper_bound_scan(&data, key),
                upper_bound(&data, key),
                "key {key}"
            );
        }
    }

    #[test]
    fn two_level_matches_direct_on_random_data() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in [0usize, 1, 5, 64, 1000] {
            for count in [0usize, 1, 3, 7, 15] {
                let mut data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
                data.sort_unstable();
                let idx = LocalPivotIndex::build(&data, count);
                for key in 0..66u64 {
                    assert_eq!(
                        idx.upper_bound(&data, key),
                        upper_bound(&data, key),
                        "ub n={n} count={count} key={key}"
                    );
                    assert_eq!(
                        idx.lower_bound(&data, key),
                        lower_bound(&data, key),
                        "lb n={n} count={count} key={key}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_level_on_all_duplicates() {
        let data = vec![5u32; 100];
        let idx = LocalPivotIndex::build(&data, 9);
        assert_eq!(idx.upper_bound(&data, 5), 100);
        assert_eq!(idx.lower_bound(&data, 5), 0);
        assert_eq!(idx.upper_bound(&data, 4), 0);
        assert_eq!(idx.lower_bound(&data, 6), 100);
    }

    #[test]
    fn empty_data() {
        let data: Vec<u32> = Vec::new();
        assert_eq!(lower_bound(&data, 1), 0);
        assert_eq!(upper_bound(&data, 1), 0);
        let idx = LocalPivotIndex::build(&data, 3);
        assert_eq!(idx.upper_bound(&data, 1), 0);
    }
}
