//! Sort statistics: phase breakdown and the RDFA load-balance metric.
//!
//! The paper reports two observables per run: a per-phase time breakdown
//! (pivot selection / exchange / local ordering / other — Figs. 9 and 10)
//! and **RDFA**, the Relative Deviation of the largest partition From the
//! Average (`max(mᵢ)/avg(mᵢ)`, Tables 3 and 4). A sorter that crashes with
//! OOM is reported as RDFA = ∞.

/// Per-rank timing breakdown of one sort (virtual seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SortStats {
    /// Initial local sort + sampling + pivot selection + partition.
    pub pivot_s: f64,
    /// All-to-all exchange (including count exchange and waiting).
    pub exchange_s: f64,
    /// Final local ordering (merge or sort).
    pub local_order_s: f64,
    /// Everything else (allocation, bookkeeping, node merge decision).
    pub other_s: f64,
    /// Records held by this rank after the exchange (`mᵢ` in the paper).
    pub recv_count: usize,
    /// Records this rank started with.
    pub input_count: usize,
    /// Whether node-level merging ran before the exchange.
    pub node_merged: bool,
    /// Whether exchange and local ordering were overlapped.
    pub overlapped: bool,
    /// Whether this rank degraded to spilling received chunks to disk
    /// under memory pressure (resilient driver only).
    pub spilled: bool,
    /// Records routed through the on-disk spill path on this rank.
    pub spill_records: usize,
}

impl SortStats {
    /// Total time across phases.
    pub fn total_s(&self) -> f64 {
        self.pivot_s + self.exchange_s + self.local_order_s + self.other_s
    }
}

/// RDFA over per-rank loads: `max(m) / avg(m)`. Returns ∞ when any load is
/// unknown (modelled OOM) — the paper's convention — and 1.0 for an empty
/// or all-zero distribution (perfectly balanced trivially).
///
/// The computation lives in the `telemetry` crate (it is also derived
/// inside [`telemetry::RunReport`]); this re-export keeps the historical
/// `sdssort::stats::rdfa` path working.
pub use telemetry::{rdfa, rdfa_failed};

/// Combine per-rank [`SortStats`] into the per-phase *maxima* (the
/// critical-path view the paper's stacked bars approximate).
pub fn phase_maxima(all: &[SortStats]) -> SortStats {
    let mut out = SortStats::default();
    for s in all {
        out.pivot_s = out.pivot_s.max(s.pivot_s);
        out.exchange_s = out.exchange_s.max(s.exchange_s);
        out.local_order_s = out.local_order_s.max(s.local_order_s);
        out.other_s = out.other_s.max(s.other_s);
        out.recv_count = out.recv_count.max(s.recv_count);
        out.input_count = out.input_count.max(s.input_count);
        out.node_merged |= s.node_merged;
        out.overlapped |= s.overlapped;
        out.spilled |= s.spilled;
        out.spill_records = out.spill_records.max(s.spill_records);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdfa_uniform_is_one() {
        assert_eq!(rdfa(&[10, 10, 10, 10]), 1.0);
    }

    #[test]
    fn rdfa_skewed() {
        // one rank holds everything: max/avg = 4
        assert_eq!(rdfa(&[40, 0, 0, 0]), 4.0);
        let r = rdfa(&[30, 10, 10, 10]);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rdfa_degenerate_cases() {
        assert_eq!(rdfa(&[]), 1.0);
        assert_eq!(rdfa(&[0, 0]), 1.0);
        assert!(rdfa_failed().is_infinite());
    }

    #[test]
    fn totals_and_maxima() {
        let a = SortStats {
            pivot_s: 1.0,
            exchange_s: 2.0,
            local_order_s: 3.0,
            ..Default::default()
        };
        let b = SortStats {
            pivot_s: 4.0,
            exchange_s: 1.0,
            other_s: 0.5,
            ..Default::default()
        };
        assert!((a.total_s() - 6.0).abs() < 1e-12);
        let m = phase_maxima(&[a, b]);
        assert_eq!(m.pivot_s, 4.0);
        assert_eq!(m.exchange_s, 2.0);
        assert_eq!(m.local_order_s, 3.0);
        assert_eq!(m.other_s, 0.5);
    }
}
