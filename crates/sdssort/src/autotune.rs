//! Runtime auto-tuning of the τ thresholds — the paper's stated future
//! work ("we plan to systematically study the configuration parameters
//! τm, τo, and τs", §6), implemented as live micro-probes.
//!
//! The three thresholds are machine constants: the paper hand-tunes
//! 160 MB / 4096 / 4000 for Edison by running the Fig. 5 sweeps offline.
//! [`autotune`] runs miniature versions of those sweeps *on the actual
//! communicator* right before a sort:
//!
//! * **τm** — time a probe-sized all-to-all directly vs through node-level
//!   merging, pick the winner for the upcoming message size;
//! * **τo** — time a probe exchange synchronously vs overlapped with
//!   pairwise merging;
//! * **τs** — time the final ordering of `p` probe runs by k-way merge vs
//!   adaptive re-sort.
//!
//! Probes cost `O(probe·p)` virtual time with `probe ≪ n` and make the
//! same decision on every rank (timings are reduced with max across ranks
//! before comparison, so the collective never diverges).

use crate::config::{LocalKernel, SdsConfig};
use crate::merge::{kway_merge, merge_two};
use crate::node_merge::node_merge;
use crate::record::Sortable;
use comm::{AsyncExchange, Communicator};

/// What the probes measured, alongside the tuned configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotuneReport {
    /// Direct exchange probe time (s).
    pub t_direct: f64,
    /// Node-merged exchange probe time (s).
    pub t_node_merge: f64,
    /// Synchronous exchange+order probe time (s).
    pub t_sync: f64,
    /// Overlapped exchange+order probe time (s).
    pub t_overlap: f64,
    /// k-way merge ordering probe time (s).
    pub t_merge_order: f64,
    /// Re-sort ordering probe time (s).
    pub t_sort_order: f64,
    /// Radix local-sort probe time (s; 0 when the key cannot radix).
    pub t_radix: f64,
    /// Comparison local-sort probe time (s; 0 when the key cannot radix).
    pub t_comparison: f64,
}

/// Probe record count per rank (clamped to the available data size).
fn probe_size(local_n: usize) -> usize {
    local_n.clamp(256, 1 << 14)
}

fn probe_keys(n: usize, rank: usize) -> Vec<u64> {
    // Deterministic pseudo-random keys; no external RNG needed.
    let mut x = 0x2545_F491_4F6C_DD1Du64 ^ (rank as u64) << 32;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        })
        .collect()
}

/// Tune τm, τo, τs for the upcoming sort of `local_n` records of `T` on
/// this communicator, starting from `base` (whose `stable`,
/// `local_threads`, and charge mode are preserved). Collective.
pub fn autotune<T: Sortable, C: Communicator>(
    comm: &C,
    local_n: usize,
    base: &SdsConfig,
) -> (SdsConfig, AutotuneReport) {
    let p = comm.size();
    let mut cfg = *base;
    let n = probe_size(local_n);
    let mut data = probe_keys(n, comm.rank());
    data.sort_unstable();
    let even_counts = {
        let mut c = vec![n / p; p];
        for item in c.iter_mut().take(n % p) {
            *item += 1;
        }
        c
    };

    // --- τm probe: direct vs node-merged exchange -----------------------
    comm.barrier();
    let t0 = comm.now();
    let _ = comm.alltoallv(&data, &even_counts);
    let t_direct = max_across(comm, comm.now() - t0);

    let t1 = comm.now();
    {
        let (cg, cl) = comm.refine_comm();
        let merged = comm.compute(|| node_merge(&cl, &data));
        if let (Some(cg), Some(merged)) = (cg, merged) {
            let pl = cg.size();
            let mut counts = vec![merged.len() / pl; pl];
            for item in counts.iter_mut().take(merged.len() % pl) {
                *item += 1;
            }
            let _ = cg.alltoallv(&merged, &counts);
        }
    }
    let t_node_merge = max_across(comm, comm.now() - t1);

    // The probe compares at the *probe* message size; extrapolate the τm
    // byte threshold: if merging won the probe, merge anything up to twice
    // the real message size, else disable.
    let real_msg_bytes = local_n / p.max(1) * std::mem::size_of::<T>();
    cfg.tau_m_bytes = if t_node_merge < t_direct {
        real_msg_bytes.saturating_mul(2).max(1)
    } else {
        0
    };

    // --- τo probe: sync vs overlapped exchange+order --------------------
    comm.barrier();
    let t2 = comm.now();
    {
        let buf = comm.alltoallv(&data, &even_counts).0;
        let runs: Vec<&[u64]> = buf.chunks(n.div_ceil(p).max(1)).collect();
        let _ = comm.compute(|| kway_merge(&runs));
    }
    let t_sync = max_across(comm, comm.now() - t2);

    let t3 = comm.now();
    {
        let mut pending = comm.alltoallv_async(&data, &even_counts);
        let mut acc: Vec<u64> = Vec::new();
        while let Some((_src, chunk)) = pending.wait_any(comm) {
            acc = comm.compute(|| merge_two(&acc, &chunk));
        }
    }
    let t_overlap = max_across(comm, comm.now() - t3);
    cfg.tau_o = if t_overlap < t_sync && !cfg.stable {
        p + 1
    } else {
        0
    };

    // --- τs probe: k-way merge vs adaptive re-sort (local only) ---------
    let chunk_len = n.div_ceil(p).max(1);
    let probe_runs: Vec<Vec<u64>> = data.chunks(chunk_len).map(<[u64]>::to_vec).collect();
    let refs: Vec<&[u64]> = probe_runs.iter().map(Vec::as_slice).collect();
    let t4 = comm.now();
    let merged = comm.compute(|| kway_merge(&refs));
    let t_merge_order = max_across(comm, comm.now() - t4);
    std::hint::black_box(merged.len());

    let t5 = comm.now();
    comm.compute(|| {
        let mut buf: Vec<u64> = probe_runs.iter().flatten().copied().collect();
        buf.sort_unstable();
        std::hint::black_box(buf.len());
    });
    let t_sort_order = max_across(comm, comm.now() - t5);
    cfg.tau_s = if t_merge_order < t_sort_order {
        p + 1
    } else {
        0
    };

    // --- local-kernel probe: radix vs comparison chunk sort -------------
    // Probed with u64 keys (machine throughput, not key semantics); only
    // keys with a monotone u64 embedding are eligible for radix at all.
    let (t_radix, t_comparison) = if T::RADIX {
        let t6 = comm.now();
        comm.compute(|| {
            let mut buf = probe_keys(n, comm.rank().wrapping_add(7));
            crate::radix::radix_sort(&mut buf);
            std::hint::black_box(buf.len());
        });
        let t_radix = max_across(comm, comm.now() - t6);
        let t7 = comm.now();
        let stable = cfg.stable;
        comm.compute(|| {
            let mut buf = probe_keys(n, comm.rank().wrapping_add(7));
            if stable {
                buf.sort();
            } else {
                buf.sort_unstable();
            }
            std::hint::black_box(buf.len());
        });
        (t_radix, max_across(comm, comm.now() - t7))
    } else {
        (0.0, 0.0)
    };
    // The probe keys are full-range u64 — radix's worst case (all 8 digit
    // bytes active). Winning it means radix wins unconditionally on this
    // machine; losing it only rules out the worst case, so fall back to
    // the digit-aware Auto gate (narrow-keyed inputs still take radix)
    // rather than forcing the comparison sort. Non-radix keys resolve to
    // Comparison outright: Auto's gate would re-test `T::RADIX` per sort
    // for nothing.
    cfg.local_kernel = if !T::RADIX {
        LocalKernel::Comparison
    } else if t_radix < t_comparison {
        LocalKernel::Radix
    } else {
        LocalKernel::Auto
    };

    (
        cfg,
        AutotuneReport {
            t_direct,
            t_node_merge,
            t_sync,
            t_overlap,
            t_merge_order,
            t_sort_order,
            t_radix,
            t_comparison,
        },
    )
}

/// Reduce a probe time with max so every rank compares the same values
/// (f64 max is commutative/associative enough for identical inputs).
fn max_across<C: Communicator>(comm: &C, t: f64) -> f64 {
    let bits = comm.allreduce(t.to_bits(), |a, b| {
        if f64::from_bits(a) >= f64::from_bits(b) {
            a
        } else {
            b
        }
    });
    f64::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::sds_sort;
    use mpisim::{NetModel, World};

    #[test]
    fn decisions_are_uniform_across_ranks() {
        let report = World::new(6)
            .cores_per_node(3)
            .net(NetModel::edison())
            .run(|comm| {
                let (cfg, _) = autotune::<u64, _>(comm, 5000, &SdsConfig::default());
                (cfg.tau_m_bytes, cfg.tau_o, cfg.tau_s)
            });
        let first = report.results[0];
        for r in &report.results {
            assert_eq!(*r, first, "all ranks must agree on the tuned config");
        }
    }

    #[test]
    fn tuned_config_sorts_correctly() {
        let report = World::new(8)
            .cores_per_node(4)
            .net(NetModel::edison())
            .run(|comm| {
                let input = probe_keys(3000, comm.rank() + 100);
                let (cfg, _) = autotune::<u64, _>(comm, input.len(), &SdsConfig::default());
                let out = sds_sort(comm, input.clone(), &cfg).expect("no budget");
                (input, out.data)
            });
        let flat: Vec<u64> = report.results.iter().flat_map(|(_, o)| o.clone()).collect();
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
        let mut all_in: Vec<u64> = report.results.iter().flat_map(|(i, _)| i.clone()).collect();
        let mut all_out = flat;
        all_in.sort_unstable();
        all_out.sort_unstable();
        assert_eq!(all_in, all_out);
    }

    #[test]
    fn stable_base_never_enables_overlap() {
        let report = World::new(4)
            .cores_per_node(2)
            .net(NetModel::edison())
            .run(|comm| {
                let (cfg, _) = autotune::<u64, _>(comm, 4000, &SdsConfig::stable());
                (cfg.stable, cfg.should_overlap(comm.size()))
            });
        for (stable, overlap) in report.results {
            assert!(stable);
            assert!(!overlap, "stable sorting must never overlap");
        }
    }

    #[test]
    fn report_times_are_positive() {
        let report = World::new(4)
            .cores_per_node(2)
            .net(NetModel::edison())
            .run(|comm| {
                let (_, rep) = autotune::<u64, _>(comm, 4000, &SdsConfig::default());
                rep
            });
        for rep in report.results {
            assert!(rep.t_direct > 0.0);
            assert!(rep.t_node_merge > 0.0);
            assert!(rep.t_sync > 0.0);
            assert!(rep.t_overlap > 0.0);
            assert!(rep.t_merge_order >= 0.0);
            assert!(rep.t_sort_order >= 0.0);
            assert!(rep.t_radix >= 0.0);
            assert!(rep.t_comparison >= 0.0);
        }
    }

    #[test]
    fn kernel_decision_is_uniform_and_matches_probe() {
        let report = World::new(4)
            .cores_per_node(2)
            .net(NetModel::edison())
            .run(|comm| {
                let (cfg, rep) = autotune::<u64, _>(comm, 8000, &SdsConfig::default());
                (
                    cfg.local_kernel,
                    rep.t_radix.to_bits(),
                    rep.t_comparison.to_bits(),
                )
            });
        let first = report.results[0];
        for &(kernel, tr, tc) in &report.results {
            assert_eq!((kernel, tr, tc), first, "kernel decision must be uniform");
            // Winning the worst-case probe forces radix; losing it falls
            // back to the digit-aware Auto gate, never to a hard
            // Comparison override.
            let expect = if f64::from_bits(tr) < f64::from_bits(tc) {
                LocalKernel::Radix
            } else {
                LocalKernel::Auto
            };
            assert_eq!(kernel, expect);
        }
    }

    #[test]
    fn non_radix_key_skips_kernel_probe() {
        let report = World::new(2)
            .cores_per_node(1)
            .net(NetModel::edison())
            .run(|comm| {
                let (cfg, rep) = autotune::<u128, _>(comm, 4000, &SdsConfig::default());
                (cfg.local_kernel, rep.t_radix, rep.t_comparison)
            });
        for (kernel, tr, tc) in report.results {
            assert_eq!(kernel, LocalKernel::Comparison);
            assert_eq!(tr, 0.0);
            assert_eq!(tc, 0.0);
        }
    }

    #[test]
    fn probe_size_clamps() {
        assert_eq!(probe_size(10), 256);
        assert_eq!(probe_size(5000), 5000);
        assert_eq!(probe_size(1 << 20), 1 << 14);
    }
}
