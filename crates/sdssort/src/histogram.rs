//! Histogram-based splitter selection (Solomonik & Kale, IPDPS'10; the
//! selection machinery inside HykSort, and the alternative §2.4 weighs
//! against regular sampling).
//!
//! Iteratively refines a small candidate set: every round the ranks
//! contribute sampled candidate keys, each candidate's *global rank* is
//! computed with one reduction over local `upper_bound`s, and the
//! candidate closest to each target position is kept, until every
//! splitter's deviation is within tolerance.
//!
//! §2.4's caveat, reproduced by the `baselines` tests: the produced
//! splitters are *key values*, so when one key holds more than a bucket's
//! worth of mass no splitter refinement can balance a duplicate-blind
//! partition. SDS-Sort's skew-aware partition removes that caveat, which
//! is why [`crate::config::PivotSource::Histogram`] is usable here as an
//! alternative pivot source (see the `ablation_pivot_source` harness).

use crate::record::Sortable;
use crate::search::upper_bound;
use comm::Communicator;

/// Configuration for the iterative refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramConfig {
    /// Candidates sampled per rank per round.
    pub samples_per_round: usize,
    /// Maximum refinement rounds.
    pub max_rounds: usize,
    /// Acceptable deviation from the target position, as a fraction of the
    /// ideal bucket size (HykSort uses ~10%).
    pub tolerance: f64,
}

impl Default for HistogramConfig {
    fn default() -> Self {
        Self {
            samples_per_round: 16,
            max_rounds: 8,
            tolerance: 0.1,
        }
    }
}

/// xorshift64* — deterministic candidate sampling without an RNG crate
/// dependency in the core library.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Select `k-1` splitters over the distributed (locally sorted) `data`
/// using iterative histogramming. Returns the same splitters on all ranks.
pub fn histogram_splitters<T: Sortable, C: Communicator>(
    comm: &C,
    data: &[T],
    k: usize,
    cfg: &HistogramConfig,
    seed: u64,
) -> Vec<T::Key> {
    let total = comm.allreduce(data.len() as u64, |a, b| a + b);
    let want = k.saturating_sub(1);
    if want == 0 || total == 0 {
        return Vec::new();
    }
    let targets: Vec<u64> = (1..k).map(|i| i as u64 * total / k as u64).collect();
    let bucket = (total / k as u64).max(1);
    let tol = ((bucket as f64) * cfg.tolerance).max(1.0) as u64;

    // Best candidate per target: (key, achieved global rank).
    let mut best: Vec<Option<(T::Key, u64)>> = vec![None; want];
    let mut rng_state = seed ^ 0x4157_0001 ^ ((comm.rank() as u64) << 17) | 1;

    for round in 0..cfg.max_rounds {
        // Sample candidate keys from local data (plus the extremes on the
        // first round so empty-ish ranks still contribute structure).
        let mut mine: Vec<T::Key> = Vec::with_capacity(cfg.samples_per_round + 2);
        if !data.is_empty() {
            for _ in 0..cfg.samples_per_round {
                let idx = (xorshift(&mut rng_state) % data.len() as u64) as usize;
                mine.push(data[idx].key());
            }
            if round == 0 {
                mine.push(data[0].key());
                mine.push(data[data.len() - 1].key());
            }
        }
        let (mut candidates, _) = comm.allgatherv(&mine);
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            break;
        }
        // One reduction gives every candidate's global rank.
        let local_ranks: Vec<u64> = candidates
            .iter()
            .map(|&c| upper_bound(data, c) as u64)
            .collect();
        let global_ranks = comm.allreduce(local_ranks, |a, b| {
            a.iter().zip(&b).map(|(x, y)| x + y).collect()
        });

        for (t, &target) in targets.iter().enumerate() {
            for (c, &cand) in candidates.iter().enumerate() {
                let err = global_ranks[c].abs_diff(target);
                let better = match best[t] {
                    None => true,
                    Some((_, r)) => err < r.abs_diff(target),
                };
                if better {
                    best[t] = Some((cand, global_ranks[c]));
                }
            }
        }
        let done = best
            .iter()
            .zip(&targets)
            .all(|(b, &t)| matches!(b, Some((_, r)) if r.abs_diff(t) <= tol));
        if done {
            break;
        }
    }
    // Fill any still-empty slots (possible only when data is degenerate)
    // with the nearest chosen neighbour.
    let mut out: Vec<T::Key> = Vec::with_capacity(want);
    let mut last: Option<T::Key> = None;
    for b in &best {
        let key = match b {
            Some((kk, _)) => *kk,
            None => last.expect("at least one candidate was ranked"),
        };
        out.push(key);
        last = Some(key);
    }
    // Splitters must be non-decreasing for bucketing.
    out.sort_unstable();
    out
}
