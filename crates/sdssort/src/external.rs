//! Out-of-core local sorting: run generation + streaming k-way merge.
//!
//! The paper's related work separates in-memory sorters (SDS-Sort,
//! HykSort) from disk-based ones (TritonSort, NTOSort) and assumes "enough
//! memory to hold data in core". This module removes that assumption for
//! the *local* phases: a rank whose share exceeds memory can sort it as
//! bounded-memory runs spilled to disk and then stream-merge them — the
//! classical external merge sort, reusing this crate's merge kernels. The
//! distributed pipeline is unchanged; `external` slots in wherever
//! `SdssLocalSort` would otherwise need the whole share resident.
//!
//! Records are written in their in-memory representation via the
//! [`PlainData`] marker (all-bytes-initialized `Copy` types), keeping the
//! i/o path allocation-free per record.

use crate::merge::is_sorted_by_key;
use crate::record::{OrderedF32, OrderedF64, Record, Sortable};
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Marker for types whose in-memory bytes are fully initialized (no
/// padding) and which accept any bit pattern — safe to write to and read
/// from disk byte-wise.
///
/// # Safety
/// Implementors must guarantee `Self` contains no padding bytes and every
/// bit pattern of `size_of::<Self>()` bytes is a valid `Self`.
pub unsafe trait PlainData: Copy {}

/// Implements [`PlainData`] for primitives / single-field newtypes of
/// primitives (no padding by construction) and for `Record<K, P>` pairs,
/// where padding-freedom is proved by a compile-time size assertion.
macro_rules! plain_data {
    (prim: $($ty:ty),+ $(,)?) => {$(
        // SAFETY: `$ty` is a primitive integer or a single-field newtype of
        // one: it has no padding bytes and every bit pattern is a valid
        // value.
        unsafe impl PlainData for $ty {}
    )+};
    (record: $(($k:ty, $p:ty)),+ $(,)?) => {$(
        const _: () = assert!(
            std::mem::size_of::<Record<$k, $p>>()
                == std::mem::size_of::<$k>() + std::mem::size_of::<$p>(),
            "Record<K, P> must have no padding bytes to be PlainData"
        );
        // SAFETY: both halves are PlainData (any bit pattern valid), and
        // the size assertion above proves the pair introduces no padding.
        unsafe impl PlainData for Record<$k, $p> {}
    )+};
}

plain_data!(prim: u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);
plain_data!(prim: OrderedF32, OrderedF64);
// Records mixing sizes, e.g. Record<u32, u64>, have padding and intentionally
// do NOT get an impl — the const assertion would reject them at compile time.
plain_data!(record: (u64, u64), (u32, u32), (OrderedF32, u32), (OrderedF64, u64));

fn write_records<T: PlainData>(w: &mut impl Write, records: &[T]) -> io::Result<()> {
    // SAFETY: PlainData guarantees no padding, so every byte is
    // initialized.
    let bytes = unsafe {
        std::slice::from_raw_parts(
            records.as_ptr().cast::<u8>(),
            std::mem::size_of_val(records),
        )
    };
    w.write_all(bytes)
}

fn read_record<T: PlainData>(r: &mut impl Read) -> io::Result<Option<T>> {
    let mut buf = vec![0u8; std::mem::size_of::<T>()];
    match r.read_exact(&mut buf) {
        Ok(()) => {
            // SAFETY: PlainData accepts any bit pattern; buf has exactly
            // size_of::<T>() bytes.
            let v = unsafe { std::ptr::read_unaligned(buf.as_ptr().cast::<T>()) };
            Ok(Some(v))
        }
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(e),
    }
}

/// A sorted run spilled to disk.
#[derive(Debug)]
pub struct RunFile {
    path: PathBuf,
    records: usize,
}

impl RunFile {
    /// Number of records in the run.
    pub fn len(&self) -> usize {
        self.records
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }
}

/// Sort `input` into bounded-memory runs of at most `run_records` records
/// each, spilled as sorted files under `dir`.
pub fn write_sorted_runs<T: Sortable + PlainData>(
    input: impl IntoIterator<Item = T>,
    run_records: usize,
    dir: &Path,
) -> io::Result<Vec<RunFile>> {
    assert!(run_records > 0, "runs must hold at least one record");
    std::fs::create_dir_all(dir)?;
    let mut runs = Vec::new();
    let mut buf: Vec<T> = Vec::with_capacity(run_records);
    let spill = |buf: &mut Vec<T>, idx: usize| -> io::Result<Option<RunFile>> {
        if buf.is_empty() {
            return Ok(None);
        }
        buf.sort_unstable_by_key(Sortable::key);
        let path = dir.join(format!("run-{idx:06}.bin"));
        let mut w = BufWriter::new(File::create(&path)?);
        write_records(&mut w, buf)?;
        w.flush()?;
        let rf = RunFile {
            path,
            records: buf.len(),
        };
        buf.clear();
        Ok(Some(rf))
    };
    for record in input {
        buf.push(record);
        if buf.len() == run_records {
            if let Some(rf) = spill(&mut buf, runs.len())? {
                runs.push(rf);
            }
        }
    }
    if let Some(rf) = spill(&mut buf, runs.len())? {
        runs.push(rf);
    }
    Ok(runs)
}

/// Write one *already sorted* chunk as a run file at `path`. Unlike
/// [`write_sorted_runs`] this never re-sorts, so a stably sorted chunk
/// keeps its order on disk — the resilient exchange path relies on this to
/// preserve stability when spilling received partitions.
pub fn write_run<T: Sortable + PlainData>(records: &[T], path: &Path) -> io::Result<RunFile> {
    debug_assert!(is_sorted_by_key(records), "run must be pre-sorted");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(File::create(path)?);
    write_records(&mut w, records)?;
    w.flush()?;
    Ok(RunFile {
        path: path.to_path_buf(),
        records: records.len(),
    })
}

/// Remove a run's backing file (best effort).
pub fn remove_run(run: &RunFile) {
    let _ = std::fs::remove_file(&run.path);
}

struct HeapItem<T: Sortable> {
    record: T,
    run: usize,
}

impl<T: Sortable> PartialEq for HeapItem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.record.key() == other.record.key() && self.run == other.run
    }
}
impl<T: Sortable> Eq for HeapItem<T> {}
impl<T: Sortable> PartialOrd for HeapItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Sortable> Ord for HeapItem<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // min-heap with run-index tie-break (stability across runs)
        (other.record.key(), other.run).cmp(&(self.record.key(), self.run))
    }
}

/// Streaming k-way merge over sorted runs. Memory: one buffered reader
/// plus one record per run.
pub struct RunMerger<T: Sortable + PlainData> {
    readers: Vec<BufReader<File>>,
    heap: BinaryHeap<HeapItem<T>>,
    remaining: usize,
}

impl<T: Sortable + PlainData> RunMerger<T> {
    /// Open every run and prime the merge heap.
    pub fn new(runs: &[RunFile]) -> io::Result<Self> {
        let mut readers = Vec::with_capacity(runs.len());
        let mut heap = BinaryHeap::with_capacity(runs.len());
        let mut remaining = 0usize;
        for (i, run) in runs.iter().enumerate() {
            let mut reader = BufReader::new(File::open(&run.path)?);
            remaining += run.records;
            if let Some(first) = read_record::<T>(&mut reader)? {
                heap.push(HeapItem {
                    record: first,
                    run: i,
                });
            }
            readers.push(reader);
        }
        Ok(Self {
            readers,
            heap,
            remaining,
        })
    }

    /// Records left to emit.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl<T: Sortable + PlainData> Iterator for RunMerger<T> {
    type Item = io::Result<T>;

    fn next(&mut self) -> Option<Self::Item> {
        let HeapItem { record, run } = self.heap.pop()?;
        self.remaining -= 1;
        match read_record::<T>(&mut self.readers[run]) {
            Ok(Some(next)) => self.heap.push(HeapItem { record: next, run }),
            Ok(None) => {}
            Err(e) => return Some(Err(e)),
        }
        Some(Ok(record))
    }
}

/// End-to-end external sort: spill sorted runs under `dir`, then stream
/// the merge back as a vector (callers needing true streaming use
/// [`RunMerger`] directly). Run files are removed afterwards.
pub fn external_sort<T: Sortable + PlainData>(
    input: impl IntoIterator<Item = T>,
    run_records: usize,
    dir: &Path,
) -> io::Result<Vec<T>> {
    let runs = write_sorted_runs(input, run_records, dir)?;
    let merger = RunMerger::new(&runs)?;
    let out: io::Result<Vec<T>> = merger.collect();
    for run in &runs {
        let _ = std::fs::remove_file(&run.path);
    }
    let out = out?;
    debug_assert!(is_sorted_by_key(&out));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sdssort-external-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn external_sort_matches_in_memory() {
        let dir = tmpdir("basic");
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u64> = (0..10_000).map(|_| rng.gen_range(0..5000)).collect();
        let sorted = external_sort(data.iter().copied(), 777, &dir).expect("io");
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_generation_respects_bound() {
        let dir = tmpdir("runs");
        let data: Vec<u64> = (0..2500).rev().collect();
        let runs = write_sorted_runs(data.iter().copied(), 1000, &dir).expect("io");
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].len(), 1000);
        assert_eq!(runs[2].len(), 500);
        assert!(!runs[0].is_empty());
        // each run individually sorted on disk
        for run in &runs {
            let mut r = BufReader::new(File::open(&run.path).expect("open"));
            let mut prev = None;
            while let Some(v) = read_record::<u64>(&mut r).expect("read") {
                if let Some(p) = prev {
                    assert!(p <= v, "run not sorted");
                }
                prev = Some(v);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merger_is_streaming_and_counts_down() {
        let dir = tmpdir("stream");
        let data: Vec<u64> = (0..100).rev().collect();
        let runs = write_sorted_runs(data.iter().copied(), 30, &dir).expect("io");
        let mut m = RunMerger::<u64>::new(&runs).expect("open");
        assert_eq!(m.remaining(), 100);
        let first = m.next().expect("some").expect("io");
        assert_eq!(first, 0);
        assert_eq!(m.remaining(), 99);
        let rest: io::Result<Vec<u64>> = m.collect();
        assert_eq!(rest.expect("io").len(), 99);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_payloads_roundtrip() {
        let dir = tmpdir("records");
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<Record<u64, u64>> = (0..3000)
            .map(|i| Record::new(rng.gen_range(0..100), i))
            .collect();
        let sorted = external_sort(data.iter().copied(), 500, &dir).expect("io");
        assert!(is_sorted_by_key(&sorted));
        let mut in_payloads: Vec<u64> = data.iter().map(|r| r.payload).collect();
        let mut out_payloads: Vec<u64> = sorted.iter().map(|r| r.payload).collect();
        in_payloads.sort_unstable();
        out_payloads.sort_unstable();
        assert_eq!(
            in_payloads, out_payloads,
            "payloads must survive the disk roundtrip"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_input() {
        let dir = tmpdir("empty");
        let sorted = external_sort(std::iter::empty::<u64>(), 100, &dir).expect("io");
        assert!(sorted.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_keys_on_disk() {
        let dir = tmpdir("float");
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<OrderedF32> = (0..4000)
            .map(|_| OrderedF32::new(rng.gen::<f32>() * 2.0 - 1.0))
            .collect();
        let sorted = external_sort(data.iter().copied(), 512, &dir).expect("io");
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sorted.len(), 4000);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
