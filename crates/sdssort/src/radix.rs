//! LSD radix local-sort kernel (`SdssLocalSort`'s fast path).
//!
//! Counting sort over 8-bit digits of the key's monotone `u64` embedding
//! ([`crate::record::RadixKey`], surfaced per record as
//! [`Sortable::radix_u64`]), least-significant digit first. The kernel is
//! the technique *Practical Massively Parallel Sorting* uses for the local
//! phase: branchless classification — each scatter pass is a single
//! data-independent loop with no comparisons — at `O(n)` per digit instead
//! of the comparison sort's `O(n log n)`.
//!
//! Two properties make it a drop-in replacement for both local-sort
//! variants:
//!
//! * **Stable.** LSD counting passes preserve the relative order of equal
//!   digits, and a monotone embedding maps equal keys to equal `u64`s, so
//!   the output order of equal-key records is exactly the input order —
//!   bit-identical to `std`'s stable sort (stability determines the
//!   permutation uniquely). One kernel serves `stable` and fast.
//! * **Adaptive over occupied bytes.** A pre-pass ORs together the XOR of
//!   every key against the first and only scatters the digit positions
//!   that actually differ: 32-bit-range keys cost 4 passes, a constant
//!   array costs none.
//!
//! Scatter passes ping-pong between the caller's slice and a caller-owned
//! scratch buffer (one allocation for the whole sort, counted by
//! [`crate::local_sort::LocalSortReport`]); an extra copy-back runs only
//! when the number of active digits is odd.

use crate::record::Sortable;
use std::mem::MaybeUninit;

/// Number of 8-bit digits in the `u64` embedding.
const DIGITS: u32 = 8;
/// Bucket count per digit.
const BUCKETS: usize = 256;

/// Input size below which the comparison sort wins: the radix kernel pays
/// two fixed read passes (difference mask + histograms) before the first
/// scatter, which only amortizes past a few thousand records
/// (`benches/local_sort.rs`).
pub const RADIX_MIN_N: usize = 1 << 11;

/// Whether the radix kernel applies to `T` at input size `n`: the key must
/// have a monotone `u64` embedding and `n` must be large enough to
/// amortize the fixed passes.
#[must_use]
pub fn radix_applicable<T: Sortable>(n: usize) -> bool {
    T::RADIX && n >= RADIX_MIN_N
}

/// Most *active* digits for which [`LocalKernel::Auto`] still picks the
/// radix kernel. A scatter pass (random writes across 256 buckets) costs
/// more per record than a comparison-sort level, and measured break-evens
/// against `slice::sort{,_unstable}` sit between ~4.5 and ~6.5 active
/// bytes depending on `n`, stability, and cache size. Four is the
/// conservative choice that keeps the common narrow embeddings —
/// u32/i32/f32 keys, bounded ids, day-scale timestamps — on the radix
/// path while leaving full-range 64-bit keys on the (excellent) std
/// sorts. `LocalKernel::Radix` bypasses the bound; the autotune probe
/// measures the actual machine instead of trusting it.
///
/// [`LocalKernel::Auto`]: crate::config::LocalKernel::Auto
pub const RADIX_MAX_AUTO_DIGITS: u32 = 4;

/// Count the 8-bit digit positions of the key embedding that differ
/// anywhere in `data` — exactly the scatter passes a radix sort of `data`
/// would run. One read pass; 0 for empty or constant-key input.
///
/// # Panics
///
/// If `T` has no monotone `u64` key embedding (`T::RADIX` is false).
#[must_use]
pub fn active_digits<T: Sortable>(data: &[T]) -> u32 {
    assert!(
        T::RADIX,
        "radix kernel requires a monotone u64 key embedding"
    );
    let Some(first) = data.first() else { return 0 };
    let first = first.radix_u64();
    let mut diff = 0u64;
    for r in data {
        diff |= r.radix_u64() ^ first;
    }
    (0..DIGITS)
        .filter(|d| (diff >> (8 * d)) & 0xFF != 0)
        .count() as u32
}

/// The digit-aware automatic gate: [`radix_applicable`] plus a bound on
/// the scatter passes this input actually needs
/// ([`RADIX_MAX_AUTO_DIGITS`]). Costs one read pass over `data`.
#[must_use]
pub fn radix_profitable<T: Sortable>(data: &[T]) -> bool {
    radix_applicable::<T>(data.len()) && active_digits(data) <= RADIX_MAX_AUTO_DIGITS
}

/// Sort `data` by key with LSD counting passes. Stable. The result is
/// always left in `data`; `scratch` is the ping-pong buffer and its
/// contents are unspecified afterwards.
///
/// # Panics
///
/// If `T` has no monotone `u64` key embedding (`T::RADIX` is false) or
/// `scratch` is shorter than `data`.
pub fn radix_sort_slice<T: Sortable>(data: &mut [T], scratch: &mut [MaybeUninit<T>]) {
    assert!(
        T::RADIX,
        "radix kernel requires a monotone u64 key embedding"
    );
    let n = data.len();
    assert!(
        scratch.len() >= n,
        "scratch ({}) must hold the whole input ({n})",
        scratch.len()
    );
    if n < 2 {
        return;
    }

    // Pre-pass: which digit positions differ at all?
    let first = data[0].radix_u64();
    let mut diff = 0u64;
    for r in data.iter() {
        diff |= r.radix_u64() ^ first;
    }
    let active: Vec<u32> = (0..DIGITS)
        .filter(|d| (diff >> (8 * d)) & 0xFF != 0)
        .collect();
    if active.is_empty() {
        return; // all keys equal: already sorted, trivially stable
    }

    // One read pass builds the histogram of every active digit.
    let mut hist = vec![[0usize; BUCKETS]; active.len()];
    for r in data.iter() {
        let k = r.radix_u64();
        for (h, &d) in hist.iter_mut().zip(&active) {
            h[(k >> (8 * d)) as usize & 0xFF] += 1;
        }
    }

    // Scatter passes, least-significant active digit first, ping-ponging
    // between `data` and `scratch`.
    let mut in_data = true;
    for (h, &d) in hist.iter().zip(&active) {
        // Exclusive prefix sum: offs[b] = start of bucket b.
        let mut offs = [0usize; BUCKETS];
        let mut acc = 0usize;
        for (o, &c) in offs.iter_mut().zip(h.iter()) {
            *o = acc;
            acc += c;
        }
        debug_assert_eq!(acc, n);

        let (src, dst) = if in_data {
            (data.as_ptr(), scratch.as_mut_ptr().cast::<T>())
        } else {
            (scratch.as_ptr().cast::<T>(), data.as_mut_ptr())
        };
        // SAFETY: `src` and `dst` are distinct allocations each covering
        // ≥ n records. Reads from `scratch` happen only on passes after it
        // was fully written (every pass writes all n slots: the histogram
        // counts sum to n and each slot `offs[b]` is written exactly once
        // before being incremented). Writes target `MaybeUninit<T>` or
        // initialized `T` storage; `T: Copy` so no drops are skipped.
        unsafe {
            for i in 0..n {
                let rec = *src.add(i);
                let b = (rec.radix_u64() >> (8 * d)) as usize & 0xFF;
                let o = offs[b];
                *dst.add(o) = rec;
                offs[b] = o + 1;
            }
        }
        in_data = !in_data;
    }

    if !in_data {
        // Odd pass count: the sorted order lives in scratch; copy it back.
        // SAFETY: the final pass initialized scratch[..n]; the regions do
        // not overlap.
        unsafe {
            std::ptr::copy_nonoverlapping(scratch.as_ptr().cast::<T>(), data.as_mut_ptr(), n);
        }
    }
}

/// Convenience wrapper that owns the scratch buffer. Returns the scratch
/// bytes it transiently allocated (0 when the input was trivially sorted).
pub fn radix_sort<T: Sortable>(data: &mut [T]) -> usize {
    if data.len() < 2 {
        return 0;
    }
    let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(data.len());
    // SAFETY: `MaybeUninit<T>` needs no initialization; len == capacity.
    unsafe {
        scratch.set_len(data.len());
    }
    radix_sort_slice(data, &mut scratch);
    std::mem::size_of_val::<[T]>(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{OrderedF32, Record};
    use rand::prelude::*;

    fn sorted_by_radix<T: Sortable>(mut v: Vec<T>) -> Vec<T> {
        radix_sort(&mut v);
        v
    }

    #[test]
    fn matches_std_on_random_u64() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [0usize, 1, 2, 3, 1000, 4096, 10_000] {
            let a: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            let mut b = a.clone();
            b.sort_unstable();
            assert_eq!(sorted_by_radix(a), b, "n={n}");
        }
    }

    #[test]
    fn matches_std_on_narrow_range() {
        // Only the low byte differs: exactly one scatter pass (odd count
        // exercises the copy-back).
        let mut rng = StdRng::seed_from_u64(8);
        let a: Vec<u64> = (0..5000).map(|_| rng.gen_range(0..256)).collect();
        let mut b = a.clone();
        b.sort_unstable();
        assert_eq!(sorted_by_radix(a), b);
    }

    #[test]
    fn signed_and_float_keys_sort_by_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let a: Vec<i64> = (0..4000).map(|_| rng.gen_range(-1000..1000)).collect();
        let mut b = a.clone();
        b.sort_unstable();
        assert_eq!(sorted_by_radix(a), b);

        let f: Vec<OrderedF32> = (0..4000)
            .map(|_| OrderedF32::new(rng.gen_range(-10.0f32..10.0)))
            .collect();
        let mut g = f.clone();
        g.sort_unstable();
        assert_eq!(sorted_by_radix(f), g);
    }

    #[test]
    fn stable_on_records_bit_identical_to_std_stable() {
        let mut rng = StdRng::seed_from_u64(10);
        let a: Vec<Record<u32, u64>> = (0..8000)
            .map(|i| Record::new(rng.gen_range(0..50), i))
            .collect();
        let mut expect = a.clone();
        expect.sort_by_key(|r| r.key);
        assert_eq!(sorted_by_radix(a), expect);
    }

    #[test]
    fn all_equal_keys_do_no_passes() {
        let a: Vec<Record<u32, u64>> = (0..100).map(|i| Record::new(7, i)).collect();
        // unchanged order (stability on a constant key = identity)
        assert_eq!(sorted_by_radix(a.clone()), a);
    }

    #[test]
    fn presorted_and_reverse_inputs() {
        let asc: Vec<u64> = (0..5000).collect();
        assert_eq!(sorted_by_radix(asc.clone()), asc);
        let desc: Vec<u64> = (0..5000).rev().collect();
        assert_eq!(sorted_by_radix(desc), asc);
    }

    #[test]
    fn applicability_honours_key_and_size() {
        assert!(radix_applicable::<u64>(RADIX_MIN_N));
        assert!(!radix_applicable::<u64>(RADIX_MIN_N - 1));
        assert!(!radix_applicable::<u128>(1 << 20));
        assert!(radix_applicable::<Record<OrderedF32, u64>>(1 << 20));
    }

    #[test]
    fn active_digits_counts_differing_bytes() {
        assert_eq!(active_digits::<u64>(&[]), 0);
        assert_eq!(active_digits(&[42u64; 100]), 0);
        // Low two bytes vary.
        let v: Vec<u64> = (0..20_000).collect();
        assert_eq!(active_digits(&v), 2);
        // A high-byte outlier activates that digit too.
        let mut v = v;
        v.push(1u64 << 56);
        assert_eq!(active_digits(&v), 3);
    }

    #[test]
    fn profitability_is_digit_aware() {
        // Narrow keys at amortizing size: radix.
        let narrow: Vec<u64> = (0..RADIX_MIN_N as u64).collect();
        assert!(radix_profitable(&narrow));
        // Same size, full-range keys (all 8 digits active): comparison.
        let wide: Vec<u64> = (0..RADIX_MIN_N as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        assert_eq!(active_digits(&wide), 8);
        assert!(!radix_profitable(&wide));
        // Below the size floor even narrow keys stay on comparison.
        assert!(!radix_profitable(&narrow[..RADIX_MIN_N - 1]));
    }

    #[test]
    #[should_panic(expected = "scratch")]
    fn short_scratch_is_rejected() {
        let mut data = vec![3u64, 1, 2];
        let mut scratch: Vec<MaybeUninit<u64>> = Vec::new();
        radix_sort_slice(&mut data, &mut scratch);
    }

    #[test]
    #[should_panic(expected = "monotone u64 key embedding")]
    fn non_radix_key_is_rejected() {
        let mut data = vec![3u128, 1, 2];
        let mut scratch: Vec<MaybeUninit<u128>> = vec![MaybeUninit::uninit(); 3];
        radix_sort_slice(&mut data, &mut scratch);
    }
}
