//! Global pivot selection (`SdssSelectPivots`, paper §2.4).
//!
//! Each rank contributes its `p-1` regularly sampled local pivots; the
//! `p·(p-1)` pooled samples are sorted *in parallel* — the paper uses a
//! distributed bitonic sort to avoid gathering all samples on one rank —
//! and the `p-1` global pivots are read off at regular stride. We provide:
//!
//! * a **block bitonic sort** over power-of-two rank counts (hypercube
//!   merge-split, the paper's choice),
//! * a **block odd-even transposition sort** for arbitrary rank counts,
//! * a **gather-based** fallback (sort all samples on rank 0, broadcast) —
//!   both a baseline and the degenerate-path handler when ranks hold
//!   unequal sample counts (tiny inputs).
//!
//! All three produce identical pivot vectors.

use comm::Communicator;

/// Which parallel sorter orders the pooled samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PivotMethod {
    /// Distributed sort: bitonic when `p` is a power of two, odd-even
    /// transposition otherwise.
    #[default]
    Distributed,
    /// Gather everything on rank 0, sort sequentially, broadcast.
    Gather,
}

/// Select `p-1` global pivots from each rank's local pivots.
///
/// `local_pivots` must be sorted (they are regular samples of sorted local
/// data). Returns the same pivot vector on every rank.
pub fn select_global_pivots<K: Ord + Copy + Send + Sync + 'static + comm::Wire, C: Communicator>(
    comm: &C,
    local_pivots: &[K],
    method: PivotMethod,
) -> Vec<K> {
    let p = comm.size();
    if p == 1 {
        return Vec::new();
    }
    debug_assert!(
        local_pivots.windows(2).all(|w| w[0] <= w[1]),
        "local pivots must be sorted"
    );

    // The distributed sorters need equal block sizes; tiny inputs can make
    // sample counts differ per rank. Detect and fall back to gathering.
    // The block size is `s·(p-1)` under oversampling factor s (s = 1 is
    // the paper's regular sampling).
    let want = p - 1;
    let b = local_pivots.len();
    let (min_b, max_b) = comm.allreduce((b, b), |a, c| (a.0.min(c.0), a.1.max(c.1)));
    if min_b != max_b || min_b == 0 || matches!(method, PivotMethod::Gather) {
        return gather_select(comm, local_pivots);
    }

    let sorted_block = if p.is_power_of_two() {
        bitonic_block_sort(comm, local_pivots.to_vec())
    } else {
        odd_even_block_sort(comm, local_pivots.to_vec())
    };

    // Global pivot i (i = 0..p-2) sits at pooled position (i+1)·total/p
    // over the p·b pooled samples (regular stride; for b = p-1 this is the
    // classical (i+1)(p-1)). Rank r owns pooled positions
    // [r·b, (r+1)·b); extract locally, then share.
    let total = p * b;
    let lo = comm.rank() * b;
    let mut mine: Vec<(u64, K)> = Vec::new();
    for i in 0..want {
        let pos = ((i + 1) * total / p).min(total - 1);
        if pos >= lo && pos < lo + b {
            mine.push((i as u64, sorted_block[pos - lo]));
        }
    }
    let (flat, _) = comm.allgatherv(&mine);
    let mut flat = flat;
    flat.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(flat.len(), want);
    flat.into_iter().map(|(_, k)| k).collect()
}

fn gather_select<K: Ord + Copy + Send + Sync + 'static + comm::Wire, C: Communicator>(
    comm: &C,
    local: &[K],
) -> Vec<K> {
    let p = comm.size();
    let (mut all, _) = comm.allgatherv(local);
    all.sort_unstable();
    crate::sampling::regular_sample_positions(all.len(), p - 1)
        .into_iter()
        .map(|pos| all[pos])
        .collect()
}

/// One merge-split step: exchange blocks with `partner`, merge, keep the
/// low or high half. Blocks must be sorted and equal-length; the kept half
/// has the caller's original block length.
fn merge_split<K: Ord + Copy + Send + Sync + 'static + comm::Wire, C: Communicator>(
    comm: &C,
    block: &mut Vec<K>,
    partner: usize,
    keep_low: bool,
    tag: u64,
) {
    comm.send_slice(partner, tag, block);
    let theirs: Vec<K> = comm.recv_vec(partner, tag);
    let merged = merge_two_keys(block, &theirs);
    let keep = block.len();
    if keep_low {
        block.clear();
        block.extend_from_slice(&merged[..keep]);
    } else {
        block.clear();
        block.extend_from_slice(&merged[merged.len() - keep..]);
    }
}

fn merge_two_keys<K: Ord + Copy>(a: &[K], b: &[K]) -> Vec<K> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Block bitonic sort across a power-of-two number of ranks. On return,
/// every rank's block is sorted and blocks ascend with rank.
pub fn bitonic_block_sort<K: Ord + Copy + Send + Sync + 'static + comm::Wire, C: Communicator>(
    comm: &C,
    mut block: Vec<K>,
) -> Vec<K> {
    let p = comm.size();
    assert!(
        p.is_power_of_two(),
        "bitonic needs a power-of-two rank count"
    );
    if p == 1 {
        block.sort_unstable();
        return block;
    }
    block.sort_unstable();
    let r = comm.rank();
    let stages = p.trailing_zeros();
    let mut round: u64 = 0;
    let tag_base = 1000;
    for k in 1..=stages {
        for j in (0..k).rev() {
            let partner = r ^ (1usize << j);
            // Ascending region if bit k of rank is 0 (for the final stage
            // k = log p, every rank is ascending: bit log p of r < p is 0).
            let ascending = (r >> k) & 1 == 0;
            let keep_low = (r < partner) == ascending;
            merge_split(comm, &mut block, partner, keep_low, tag_base + round);
            round += 1;
        }
    }
    block
}

/// Block odd-even transposition sort across any number of ranks. `p`
/// rounds of pairwise merge-splits.
pub fn odd_even_block_sort<K: Ord + Copy + Send + Sync + 'static + comm::Wire, C: Communicator>(
    comm: &C,
    mut block: Vec<K>,
) -> Vec<K> {
    let p = comm.size();
    block.sort_unstable();
    if p == 1 {
        return block;
    }
    let r = comm.rank();
    let tag_base = 2000;
    for round in 0..p {
        let even_round = round % 2 == 0;
        let partner = if r.is_multiple_of(2) == even_round {
            // left end of a pair
            if r + 1 < p {
                Some(r + 1)
            } else {
                None
            }
        } else if r > 0 {
            Some(r - 1)
        } else {
            None
        };
        if let Some(partner) = partner {
            let keep_low = r < partner;
            merge_split(comm, &mut block, partner, keep_low, tag_base + round as u64);
        }
        // Everyone must stay in lockstep round-wise; merge_split uses
        // distinct tags per round so no barrier is required.
    }
    block
}

/// Reference implementation used by tests: pool all samples, sort, take
/// regular positions.
pub fn reference_pivots<K: Ord + Copy>(all_samples: &mut [K], p: usize) -> Vec<K> {
    all_samples.sort_unstable();
    crate::sampling::regular_sample_positions(all_samples.len(), p.saturating_sub(1))
        .into_iter()
        .map(|pos| all_samples[pos])
        .collect()
}
