//! Shared-memory skew-aware parallel sorting (`SdssLocalSort`, paper §2.2).
//!
//! Strategy: split the array into `c` chunks, sort each chunk on its own
//! thread (LSD radix when the key embeds monotonically into `u64`,
//! `std`'s comparison sorts otherwise — see [`crate::radix`]), then merge
//! the sorted chunks *in parallel*. The parallel merge partitions the
//! value space into `c` parts and merges each part on its own thread; the
//! paper's contribution is to compute those part boundaries with the same
//! skew-aware rule as the distributed partition, so heavily duplicated
//! values are split evenly across parts instead of landing in one part
//! (the load imbalance exhibited by sampling-based merges such as
//! HykSort's — compared in Fig. 6a).
//!
//! This module is deliberately thread-pool-free (plain scoped threads): it
//! is also reused *inside* simulated ranks with `threads = 1`, where it
//! reduces to a sequential adaptive sort.
//!
//! ## Memory
//!
//! The sort is not in-place: one `n`-record scratch buffer serves first as
//! the radix kernel's ping-pong space (disjoint per-chunk subslices) and
//! then as the merge output, which is swapped into the caller's `Vec` —
//! transient peak `2n` records, reported via
//! [`LocalSortReport::scratch_bytes`] and counted in the driver's
//! telemetry (`local_sort.scratch_bytes`).

use crate::config::LocalKernel;
use crate::merge::{kway_merge_into, kway_merge_uninit};
use crate::partition::{
    classic_cuts, cuts_to_counts, fast_cuts, local_dup_counts, replicated_runs, shares_for_source,
    stable_cuts,
};
use crate::radix::{radix_profitable, radix_sort, radix_sort_slice};
use crate::record::Sortable;
use crate::sampling::regular_sample;
use std::mem::MaybeUninit;

/// How the parallel merge partitions work across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Sampling-based equal-range partition (`upper_bound` per pivot) —
    /// the HykSort-style merge; load-imbalanced on skewed data.
    Classic,
    /// Skew-aware partition, fast (unstable) duplicate splitting.
    SkewAware,
    /// Skew-aware partition, stable grouping of duplicates.
    SkewAwareStable,
}

/// What [`local_sort_with`] actually did, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSortReport {
    /// The kernel that sorted the chunks: [`LocalKernel::Radix`] or
    /// [`LocalKernel::Comparison`] (never `Auto`).
    pub kernel: LocalKernel,
    /// Bytes of scratch transiently allocated (the `2n` peak; 0 when the
    /// input was sorted in place by the sequential comparison path).
    pub scratch_bytes: usize,
}

/// Sort `data` by key using up to `threads` threads. Stable iff `stable`.
///
/// This is `SdssLocalSort`: with `threads <= 1` it is a sequential
/// adaptive sort; otherwise chunks are sorted in parallel and merged with
/// the skew-aware parallel merge. Equivalent to
/// [`local_sort_with`]`(…, LocalKernel::Auto)`.
pub fn local_sort<T: Sortable>(data: &mut Vec<T>, threads: usize, stable: bool) {
    local_sort_with(data, threads, stable, LocalKernel::Auto);
}

/// [`local_sort`] with explicit kernel selection; returns what ran.
///
/// `LocalKernel::Auto` picks the LSD radix kernel when the key type has a
/// monotone `u64` embedding, `n` amortizes its fixed passes, and the
/// input's keys occupy few enough digit bytes for scatter passes to beat
/// the comparison sort ([`radix_profitable`], one extra read pass);
/// `Radix` forces it whenever the key supports it (comparison fallback
/// otherwise); `Comparison` always compares. Both
/// kernels are stable when `stable` is set, and both produce output
/// bit-identical to `std`'s stable sort in that mode — kernel choice never
/// changes the result, only the time (and the transient scratch).
pub fn local_sort_with<T: Sortable>(
    data: &mut Vec<T>,
    threads: usize,
    stable: bool,
    kernel: LocalKernel,
) -> LocalSortReport {
    let n = data.len();
    let use_radix = match kernel {
        LocalKernel::Auto => radix_profitable(data),
        LocalKernel::Radix => T::RADIX && n >= 2,
        LocalKernel::Comparison => false,
    };
    let kernel_used = if use_radix {
        LocalKernel::Radix
    } else {
        LocalKernel::Comparison
    };

    if threads <= 1 || n < threads * 4 || n < 1024 {
        let scratch_bytes = if use_radix {
            radix_sort(data)
        } else {
            sequential_sort(data, stable);
            0
        };
        return LocalSortReport {
            kernel: kernel_used,
            scratch_bytes,
        };
    }

    // One n-record buffer serves the whole parallel path: its spare
    // capacity is the radix ping-pong scratch (disjoint per-chunk
    // subslices), then the same capacity receives the merged output, which
    // is swapped into `data`.
    let mut buf: Vec<T> = Vec::with_capacity(n);
    let chunk_len = n.div_ceil(threads);
    {
        let mut rest: &mut [T] = data;
        let mut scratch_rest: &mut [MaybeUninit<T>] = &mut buf.spare_capacity_mut()[..n];
        std::thread::scope(|scope| {
            while !rest.is_empty() {
                let take = chunk_len.min(rest.len());
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
                rest = tail;
                if use_radix {
                    let (shead, stail) = std::mem::take(&mut scratch_rest).split_at_mut(take);
                    scratch_rest = stail;
                    scope.spawn(move || radix_sort_slice(head, shead));
                } else {
                    scope.spawn(move || sequential_sort_slice(head, stable));
                }
            }
        });
    }
    let chunks: Vec<&[T]> = data.chunks(chunk_len).collect();
    let strategy = if stable {
        MergeStrategy::SkewAwareStable
    } else {
        MergeStrategy::SkewAware
    };
    parallel_merge_into(&chunks, threads, strategy, &mut buf);
    drop(chunks);
    std::mem::swap(data, &mut buf);
    LocalSortReport {
        kernel: kernel_used,
        scratch_bytes: n * std::mem::size_of::<T>(),
    }
}

/// Sequential sort of a `Vec` (key comparisons only).
pub fn sequential_sort<T: Sortable>(data: &mut [T], stable: bool) {
    sequential_sort_slice(data, stable);
}

fn sequential_sort_slice<T: Sortable>(data: &mut [T], stable: bool) {
    if stable {
        data.sort_by_key(|r| r.key());
    } else {
        data.sort_unstable_by_key(|r| r.key());
    }
}

/// Compute per-chunk cut positions for a `parts`-way parallel merge of
/// sorted `chunks`, under the given strategy. Returns `cuts[chunk][part]`
/// boundaries of length `parts + 1` per chunk.
pub fn merge_cuts<T: Sortable>(
    chunks: &[&[T]],
    parts: usize,
    strategy: MergeStrategy,
) -> Vec<Vec<usize>> {
    assert!(parts >= 1);
    // Regular samples from each sorted chunk, then regular pivots from the
    // pooled samples — the shared-memory analog of local/global pivot
    // selection.
    let mut samples: Vec<T::Key> = Vec::new();
    for chunk in chunks {
        samples.extend(regular_sample(chunk, parts.saturating_sub(1)));
    }
    samples.sort_unstable();
    if samples.is_empty() && parts > 1 {
        // Every chunk is empty (any non-empty chunk contributes at least
        // one sample when parts ≥ 2): all boundaries are zero.
        return vec![vec![0; parts + 1]; chunks.len()];
    }
    let mut pivots: Vec<T::Key> =
        crate::sampling::regular_sample_positions(samples.len(), parts - 1)
            .into_iter()
            .map(|p| samples[p])
            .collect();
    // When the pooled samples underfill `parts - 1` pivots (many tiny
    // chunks, or `parts` larger than the total record count), pad by
    // repeating the greatest pivot: every chunk still gets `parts + 1` cut
    // boundaries and the surplus parts come out empty, instead of
    // `parallel_merge` indexing `c[part + 1]` out of bounds.
    if let Some(&last) = pivots.last() {
        while pivots.len() < parts - 1 {
            pivots.push(last);
        }
    }

    match strategy {
        MergeStrategy::Classic => chunks.iter().map(|c| classic_cuts(c, &pivots)).collect(),
        MergeStrategy::SkewAware => chunks.iter().map(|c| fast_cuts(c, &pivots, None)).collect(),
        MergeStrategy::SkewAwareStable => {
            let runs = replicated_runs(&pivots);
            let counts: Vec<Vec<usize>> =
                chunks.iter().map(|c| local_dup_counts(c, &runs)).collect();
            chunks
                .iter()
                .enumerate()
                .map(|(i, c)| stable_cuts(c, &pivots, None, &shares_for_source(&counts, i)))
                .collect()
        }
    }
}

/// Merge sorted `chunks` into one sorted vector using up to `threads`
/// threads. Stability: with [`MergeStrategy::SkewAwareStable`] (or
/// `Classic`), equal keys come out ordered by chunk index then position;
/// [`MergeStrategy::SkewAware`] does not preserve duplicate order.
pub fn parallel_merge<T: Sortable>(
    chunks: &[&[T]],
    threads: usize,
    strategy: MergeStrategy,
) -> Vec<T> {
    let mut out = Vec::new();
    parallel_merge_into(chunks, threads, strategy, &mut out);
    out
}

/// [`parallel_merge`] into an existing buffer (cleared first). Every part
/// is merged by its thread directly into its disjoint span of the one
/// pre-sized output — no per-part `Vec`s and no sequential concatenation
/// pass afterwards.
pub fn parallel_merge_into<T: Sortable>(
    chunks: &[&[T]],
    threads: usize,
    strategy: MergeStrategy,
    out: &mut Vec<T>,
) {
    let total: usize = chunks.iter().map(|c| c.len()).sum();
    out.clear();
    if chunks.is_empty() {
        return;
    }
    if threads <= 1 || chunks.len() == 1 || total < 1024 {
        kway_merge_into(chunks, out);
        return;
    }
    let parts = threads;
    let cuts = merge_cuts(chunks, parts, strategy);

    out.reserve(total);
    std::thread::scope(|scope| {
        let mut rest: &mut [MaybeUninit<T>] = &mut out.spare_capacity_mut()[..total];
        for part in 0..parts {
            let size: usize = cuts.iter().map(|c| c[part + 1] - c[part]).sum();
            let (span, tail) = std::mem::take(&mut rest).split_at_mut(size);
            rest = tail;
            let cuts = &cuts;
            scope.spawn(move || {
                let runs: Vec<&[T]> = chunks
                    .iter()
                    .zip(cuts.iter())
                    .map(|(chunk, c)| &chunk[c[part]..c[part + 1]])
                    .collect();
                kway_merge_uninit(&runs, span);
            });
        }
        debug_assert!(rest.is_empty());
    });
    // SAFETY: the part sizes sum to `total` (each chunk's cuts partition
    // it) and `kway_merge_uninit` writes every slot of its span, so all
    // `total` reserved slots are initialized.
    unsafe {
        out.set_len(total);
    }
}

/// Sizes of the `parts` merge partitions under a strategy — the quantity
/// whose imbalance Fig. 6a's timings reflect. Exposed for tests and the
/// RDFA-style diagnostics.
pub fn merge_part_sizes<T: Sortable>(
    chunks: &[&[T]],
    parts: usize,
    strategy: MergeStrategy,
) -> Vec<usize> {
    let cuts = merge_cuts(chunks, parts, strategy);
    let mut sizes = vec![0usize; parts];
    for c in &cuts {
        for (part, count) in cuts_to_counts(c).into_iter().enumerate() {
            sizes[part] += count;
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::is_sorted_by_key;
    use crate::record::Record;
    use rand::prelude::*;

    fn random_data(n: usize, max: u32, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..max)).collect()
    }

    #[test]
    fn sequential_matches_std() {
        let mut a = random_data(5000, 100, 1);
        let mut b = a.clone();
        local_sort(&mut a, 1, false);
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_std_various_threads() {
        for threads in [2usize, 3, 4, 8] {
            let mut a = random_data(20_000, 500, threads as u64);
            let mut b = a.clone();
            local_sort(&mut a, threads, false);
            b.sort_unstable();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn parallel_sort_heavy_duplicates() {
        // 90% of values are a single key: the skew-aware merge must still
        // produce a correct sort.
        let mut rng = StdRng::seed_from_u64(5);
        let mut a: Vec<u32> = (0..30_000)
            .map(|_| {
                if rng.gen_bool(0.9) {
                    7
                } else {
                    rng.gen_range(0..1000)
                }
            })
            .collect();
        let mut b = a.clone();
        local_sort(&mut a, 4, false);
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn stable_sort_preserves_duplicate_order() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut recs: Vec<Record<u32, u64>> = (0..20_000)
            .map(|i| Record::new(rng.gen_range(0..50), i as u64))
            .collect();
        let reference = {
            let mut r = recs.clone();
            r.sort_by_key(|x| x.key);
            r
        };
        local_sort(&mut recs, 4, true);
        assert_eq!(
            recs, reference,
            "stable parallel sort must equal std stable sort"
        );
    }

    #[test]
    fn unstable_parallel_sort_keys_correct_with_payload() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut recs: Vec<Record<u32, u64>> = (0..10_000)
            .map(|i| Record::new(rng.gen_range(0..10), i))
            .collect();
        local_sort(&mut recs, 4, false);
        assert!(is_sorted_by_key(&recs));
        // must be a permutation: payloads are unique
        let mut payloads: Vec<u64> = recs.iter().map(|r| r.payload).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, (0..10_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn skew_aware_parts_balanced_on_duplicates() {
        // All chunks are 100% one value. Classic partition puts everything
        // in one part; skew-aware must spread within 2x of ideal.
        let chunk: Vec<u32> = vec![42; 10_000];
        let chunks: Vec<&[u32]> = vec![&chunk, &chunk, &chunk, &chunk];
        let parts = 4;
        let classic = merge_part_sizes(&chunks, parts, MergeStrategy::Classic);
        let skew = merge_part_sizes(&chunks, parts, MergeStrategy::SkewAware);
        let total = 40_000usize;
        assert_eq!(classic.iter().sum::<usize>(), total);
        assert_eq!(skew.iter().sum::<usize>(), total);
        assert_eq!(
            classic.iter().max(),
            Some(&total),
            "classic dumps all on one part"
        );
        let ideal = total / parts;
        assert!(
            *skew.iter().max().unwrap() <= ideal * 2,
            "skew-aware must balance: {skew:?}"
        );
    }

    #[test]
    fn stable_strategy_parts_balanced_too() {
        let chunk: Vec<u32> = vec![42; 8_000];
        let chunks: Vec<&[u32]> = vec![&chunk, &chunk];
        let sizes = merge_part_sizes(&chunks, 4, MergeStrategy::SkewAwareStable);
        assert_eq!(sizes.iter().sum::<usize>(), 16_000);
        // duplicates split across the owning parts
        assert!(*sizes.iter().max().unwrap() < 16_000);
    }

    #[test]
    fn parallel_merge_matches_kway() {
        let mut rng = StdRng::seed_from_u64(21);
        let runs: Vec<Vec<u32>> = (0..5)
            .map(|_| {
                let mut v = random_data(rng.gen_range(0..3000), 40, rng.gen());
                v.sort_unstable();
                v
            })
            .collect();
        let refs: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
        for strategy in [
            MergeStrategy::Classic,
            MergeStrategy::SkewAware,
            MergeStrategy::SkewAwareStable,
        ] {
            let merged = parallel_merge(&refs, 4, strategy);
            let mut expect: Vec<u32> = runs.iter().flatten().copied().collect();
            expect.sort_unstable();
            assert_eq!(merged, expect, "{strategy:?}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let mut v: Vec<u32> = Vec::new();
        local_sort(&mut v, 4, false);
        assert!(v.is_empty());
        let mut v = vec![3u32, 1];
        local_sort(&mut v, 8, true);
        assert_eq!(v, vec![1, 3]);
        assert!(parallel_merge::<u32>(&[], 4, MergeStrategy::SkewAware).is_empty());
    }

    #[test]
    fn presorted_input_stays_sorted() {
        let mut v: Vec<u64> = (0..50_000).collect();
        local_sort(&mut v, 4, false);
        assert_eq!(v, (0..50_000).collect::<Vec<u64>>());
    }

    #[test]
    fn merge_cuts_pads_underfull_pivots() {
        // 2 tiny chunks, 64 parts: the pooled samples can never fill 63
        // pivots, so pre-fix the cut rows came back shorter than parts + 1.
        let c0 = vec![5u32; 10];
        let c1 = vec![7u32; 3];
        let chunks: Vec<&[u32]> = vec![&c0, &c1];
        for strategy in [
            MergeStrategy::Classic,
            MergeStrategy::SkewAware,
            MergeStrategy::SkewAwareStable,
        ] {
            let cuts = merge_cuts(&chunks, 64, strategy);
            for (i, row) in cuts.iter().enumerate() {
                assert_eq!(row.len(), 65, "{strategy:?} chunk {i}: {row:?}");
                assert!(row.windows(2).all(|w| w[0] <= w[1]), "{strategy:?}");
                assert_eq!(row[0], 0);
                assert_eq!(*row.last().unwrap(), chunks[i].len(), "{strategy:?}");
            }
        }
    }

    #[test]
    fn merge_cuts_all_chunks_empty() {
        let chunks: Vec<&[u32]> = vec![&[], &[], &[]];
        let cuts = merge_cuts(&chunks, 8, MergeStrategy::SkewAware);
        assert_eq!(cuts, vec![vec![0usize; 9]; 3]);
    }

    #[test]
    fn parallel_merge_parts_exceed_total() {
        // Public-API regression for the underfull-pivot bug: total = 1025
        // records (just past the small-input fast path) merged with more
        // threads than records. Pre-fix this indexed `c[part + 1]` out of
        // bounds.
        let mut rng = StdRng::seed_from_u64(33);
        let mut big: Vec<u32> = (0..1024).map(|_| rng.gen_range(0..10)).collect();
        big.sort_unstable();
        let tiny = vec![4u32];
        let chunks: Vec<&[u32]> = vec![&big, &tiny];
        let mut expect: Vec<u32> = big.iter().chain(&tiny).copied().collect();
        expect.sort_unstable();
        for strategy in [
            MergeStrategy::Classic,
            MergeStrategy::SkewAware,
            MergeStrategy::SkewAwareStable,
        ] {
            assert_eq!(
                parallel_merge(&chunks, 1200, strategy),
                expect,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn radix_and_comparison_kernels_bit_identical_when_stable() {
        let mut rng = StdRng::seed_from_u64(17);
        for threads in [1usize, 4] {
            let orig: Vec<Record<u32, u64>> = (0..20_000)
                .map(|i| Record::new(rng.gen_range(0..100), i))
                .collect();
            let mut expect = orig.clone();
            expect.sort_by_key(|r| r.key);
            let mut via_radix = orig.clone();
            let r = local_sort_with(&mut via_radix, threads, true, LocalKernel::Radix);
            assert_eq!(r.kernel, LocalKernel::Radix);
            let mut via_cmp = orig.clone();
            let c = local_sort_with(&mut via_cmp, threads, true, LocalKernel::Comparison);
            assert_eq!(c.kernel, LocalKernel::Comparison);
            assert_eq!(via_radix, expect, "threads={threads}");
            assert_eq!(via_cmp, expect, "threads={threads}");
        }
    }

    #[test]
    fn auto_kernel_selection_and_report() {
        // Large radix-capable input → radix, with the scratch accounted.
        let mut v: Vec<u64> = (0..20_000).rev().collect();
        let r = local_sort_with(&mut v, 4, false, LocalKernel::Auto);
        assert_eq!(r.kernel, LocalKernel::Radix);
        assert_eq!(r.scratch_bytes, 20_000 * std::mem::size_of::<u64>());
        assert_eq!(v, (0..20_000).collect::<Vec<u64>>());

        // Small input → comparison, no scratch.
        let mut v = vec![3u64, 1, 2];
        let r = local_sort_with(&mut v, 4, false, LocalKernel::Auto);
        assert_eq!(r.kernel, LocalKernel::Comparison);
        assert_eq!(r.scratch_bytes, 0);

        // Keys without a u64 embedding fall back even when radix is forced.
        let mut v: Vec<u128> = (0..3000).rev().collect();
        let r = local_sort_with(&mut v, 2, false, LocalKernel::Radix);
        assert_eq!(r.kernel, LocalKernel::Comparison);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}
