//! Shared-memory skew-aware parallel sorting (`SdssLocalSort`, paper §2.2).
//!
//! Strategy: split the array into `c` chunks, sort each chunk on its own
//! thread (`std::sort` → [`slice::sort_unstable_by`]; `std::stable_sort` →
//! [`slice::sort_by`]), then merge the sorted chunks *in parallel*. The
//! parallel merge partitions the value space into `c` parts and merges each
//! part on its own thread; the paper's contribution is to compute those
//! part boundaries with the same skew-aware rule as the distributed
//! partition, so heavily duplicated values are split evenly across parts
//! instead of landing in one part (the load imbalance exhibited by
//! sampling-based merges such as HykSort's — compared in Fig. 6a).
//!
//! This module is deliberately thread-pool-free (plain scoped threads): it
//! is also reused *inside* simulated ranks with `threads = 1`, where it
//! reduces to a sequential adaptive sort.

use crate::merge::kway_merge;
use crate::partition::{
    classic_cuts, cuts_to_counts, fast_cuts, local_dup_counts, replicated_runs, shares_for_source,
    stable_cuts,
};
use crate::record::Sortable;
use crate::sampling::regular_sample;

/// How the parallel merge partitions work across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Sampling-based equal-range partition (`upper_bound` per pivot) —
    /// the HykSort-style merge; load-imbalanced on skewed data.
    Classic,
    /// Skew-aware partition, fast (unstable) duplicate splitting.
    SkewAware,
    /// Skew-aware partition, stable grouping of duplicates.
    SkewAwareStable,
}

/// Sort `data` by key using up to `threads` threads. Stable iff `stable`.
///
/// This is `SdssLocalSort`: with `threads <= 1` it is a sequential
/// adaptive sort; otherwise chunks are sorted in parallel and merged with
/// the skew-aware parallel merge.
pub fn local_sort<T: Sortable>(data: &mut Vec<T>, threads: usize, stable: bool) {
    let n = data.len();
    if threads <= 1 || n < threads * 4 || n < 1024 {
        sequential_sort(data, stable);
        return;
    }
    let chunk_len = n.div_ceil(threads);
    {
        let mut rest: &mut [T] = data;
        std::thread::scope(|scope| {
            while !rest.is_empty() {
                let take = chunk_len.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                scope.spawn(move || sequential_sort_slice(head, stable));
            }
        });
    }
    let chunks: Vec<&[T]> = data.chunks(chunk_len).collect();
    let strategy = if stable {
        MergeStrategy::SkewAwareStable
    } else {
        MergeStrategy::SkewAware
    };
    let merged = parallel_merge(&chunks, threads, strategy);
    *data = merged;
}

/// Sequential sort of a `Vec` (key comparisons only).
pub fn sequential_sort<T: Sortable>(data: &mut [T], stable: bool) {
    sequential_sort_slice(data, stable);
}

fn sequential_sort_slice<T: Sortable>(data: &mut [T], stable: bool) {
    if stable {
        data.sort_by_key(|r| r.key());
    } else {
        data.sort_unstable_by_key(|r| r.key());
    }
}

/// Compute per-chunk cut positions for a `parts`-way parallel merge of
/// sorted `chunks`, under the given strategy. Returns `cuts[chunk][part]`
/// boundaries of length `parts + 1` per chunk.
pub fn merge_cuts<T: Sortable>(
    chunks: &[&[T]],
    parts: usize,
    strategy: MergeStrategy,
) -> Vec<Vec<usize>> {
    assert!(parts >= 1);
    // Regular samples from each sorted chunk, then regular pivots from the
    // pooled samples — the shared-memory analog of local/global pivot
    // selection.
    let mut samples: Vec<T::Key> = Vec::new();
    for chunk in chunks {
        samples.extend(regular_sample(chunk, parts.saturating_sub(1)));
    }
    samples.sort_unstable();
    let pivots: Vec<T::Key> = crate::sampling::regular_sample_positions(samples.len(), parts - 1)
        .into_iter()
        .map(|p| samples[p])
        .collect();

    match strategy {
        MergeStrategy::Classic => chunks.iter().map(|c| classic_cuts(c, &pivots)).collect(),
        MergeStrategy::SkewAware => chunks.iter().map(|c| fast_cuts(c, &pivots, None)).collect(),
        MergeStrategy::SkewAwareStable => {
            let runs = replicated_runs(&pivots);
            let counts: Vec<Vec<usize>> =
                chunks.iter().map(|c| local_dup_counts(c, &runs)).collect();
            chunks
                .iter()
                .enumerate()
                .map(|(i, c)| stable_cuts(c, &pivots, None, &shares_for_source(&counts, i)))
                .collect()
        }
    }
}

/// Merge sorted `chunks` into one sorted vector using up to `threads`
/// threads. Stability: with [`MergeStrategy::SkewAwareStable`] (or
/// `Classic`), equal keys come out ordered by chunk index then position;
/// [`MergeStrategy::SkewAware`] does not preserve duplicate order.
pub fn parallel_merge<T: Sortable>(
    chunks: &[&[T]],
    threads: usize,
    strategy: MergeStrategy,
) -> Vec<T> {
    let total: usize = chunks.iter().map(|c| c.len()).sum();
    if chunks.is_empty() {
        return Vec::new();
    }
    if threads <= 1 || chunks.len() == 1 || total < 1024 {
        return kway_merge(chunks);
    }
    let parts = threads;
    let cuts = merge_cuts(chunks, parts, strategy);

    let mut part_outputs: Vec<Vec<T>> = Vec::with_capacity(parts);
    part_outputs.resize_with(parts, Vec::new);
    std::thread::scope(|scope| {
        for (part, out) in part_outputs.iter_mut().enumerate() {
            let cuts = &cuts;
            scope.spawn(move || {
                let runs: Vec<&[T]> = chunks
                    .iter()
                    .zip(cuts.iter())
                    .map(|(chunk, c)| &chunk[c[part]..c[part + 1]])
                    .collect();
                *out = kway_merge(&runs);
            });
        }
    });
    let mut merged = Vec::with_capacity(total);
    for part in part_outputs {
        merged.extend(part);
    }
    merged
}

/// Sizes of the `parts` merge partitions under a strategy — the quantity
/// whose imbalance Fig. 6a's timings reflect. Exposed for tests and the
/// RDFA-style diagnostics.
pub fn merge_part_sizes<T: Sortable>(
    chunks: &[&[T]],
    parts: usize,
    strategy: MergeStrategy,
) -> Vec<usize> {
    let cuts = merge_cuts(chunks, parts, strategy);
    let mut sizes = vec![0usize; parts];
    for c in &cuts {
        for (part, count) in cuts_to_counts(c).into_iter().enumerate() {
            sizes[part] += count;
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::is_sorted_by_key;
    use crate::record::Record;
    use rand::prelude::*;

    fn random_data(n: usize, max: u32, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..max)).collect()
    }

    #[test]
    fn sequential_matches_std() {
        let mut a = random_data(5000, 100, 1);
        let mut b = a.clone();
        local_sort(&mut a, 1, false);
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_std_various_threads() {
        for threads in [2usize, 3, 4, 8] {
            let mut a = random_data(20_000, 500, threads as u64);
            let mut b = a.clone();
            local_sort(&mut a, threads, false);
            b.sort_unstable();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn parallel_sort_heavy_duplicates() {
        // 90% of values are a single key: the skew-aware merge must still
        // produce a correct sort.
        let mut rng = StdRng::seed_from_u64(5);
        let mut a: Vec<u32> = (0..30_000)
            .map(|_| {
                if rng.gen_bool(0.9) {
                    7
                } else {
                    rng.gen_range(0..1000)
                }
            })
            .collect();
        let mut b = a.clone();
        local_sort(&mut a, 4, false);
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn stable_sort_preserves_duplicate_order() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut recs: Vec<Record<u32, u64>> = (0..20_000)
            .map(|i| Record::new(rng.gen_range(0..50), i as u64))
            .collect();
        let reference = {
            let mut r = recs.clone();
            r.sort_by_key(|x| x.key);
            r
        };
        local_sort(&mut recs, 4, true);
        assert_eq!(
            recs, reference,
            "stable parallel sort must equal std stable sort"
        );
    }

    #[test]
    fn unstable_parallel_sort_keys_correct_with_payload() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut recs: Vec<Record<u32, u64>> = (0..10_000)
            .map(|i| Record::new(rng.gen_range(0..10), i))
            .collect();
        local_sort(&mut recs, 4, false);
        assert!(is_sorted_by_key(&recs));
        // must be a permutation: payloads are unique
        let mut payloads: Vec<u64> = recs.iter().map(|r| r.payload).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, (0..10_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn skew_aware_parts_balanced_on_duplicates() {
        // All chunks are 100% one value. Classic partition puts everything
        // in one part; skew-aware must spread within 2x of ideal.
        let chunk: Vec<u32> = vec![42; 10_000];
        let chunks: Vec<&[u32]> = vec![&chunk, &chunk, &chunk, &chunk];
        let parts = 4;
        let classic = merge_part_sizes(&chunks, parts, MergeStrategy::Classic);
        let skew = merge_part_sizes(&chunks, parts, MergeStrategy::SkewAware);
        let total = 40_000usize;
        assert_eq!(classic.iter().sum::<usize>(), total);
        assert_eq!(skew.iter().sum::<usize>(), total);
        assert_eq!(
            classic.iter().max(),
            Some(&total),
            "classic dumps all on one part"
        );
        let ideal = total / parts;
        assert!(
            *skew.iter().max().unwrap() <= ideal * 2,
            "skew-aware must balance: {skew:?}"
        );
    }

    #[test]
    fn stable_strategy_parts_balanced_too() {
        let chunk: Vec<u32> = vec![42; 8_000];
        let chunks: Vec<&[u32]> = vec![&chunk, &chunk];
        let sizes = merge_part_sizes(&chunks, 4, MergeStrategy::SkewAwareStable);
        assert_eq!(sizes.iter().sum::<usize>(), 16_000);
        // duplicates split across the owning parts
        assert!(*sizes.iter().max().unwrap() < 16_000);
    }

    #[test]
    fn parallel_merge_matches_kway() {
        let mut rng = StdRng::seed_from_u64(21);
        let runs: Vec<Vec<u32>> = (0..5)
            .map(|_| {
                let mut v = random_data(rng.gen_range(0..3000), 40, rng.gen());
                v.sort_unstable();
                v
            })
            .collect();
        let refs: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
        for strategy in [
            MergeStrategy::Classic,
            MergeStrategy::SkewAware,
            MergeStrategy::SkewAwareStable,
        ] {
            let merged = parallel_merge(&refs, 4, strategy);
            let mut expect: Vec<u32> = runs.iter().flatten().copied().collect();
            expect.sort_unstable();
            assert_eq!(merged, expect, "{strategy:?}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let mut v: Vec<u32> = Vec::new();
        local_sort(&mut v, 4, false);
        assert!(v.is_empty());
        let mut v = vec![3u32, 1];
        local_sort(&mut v, 8, true);
        assert_eq!(v, vec![1, 3]);
        assert!(parallel_merge::<u32>(&[], 4, MergeStrategy::SkewAware).is_empty());
    }

    #[test]
    fn presorted_input_stays_sorted() {
        let mut v: Vec<u64> = (0..50_000).collect();
        local_sort(&mut v, 4, false);
        assert_eq!(v, (0..50_000).collect::<Vec<u64>>());
    }
}
