//! Sequential merge kernels: two-way and k-way merging of sorted runs.
//!
//! These implement the paper's `SdssMergeTwo` and `SdssMergeAll` (§2.6,
//! §2.7): after the all-to-all exchange every rank holds `p` sorted chunks
//! (one per source rank), and below the `τs` threshold SDS-Sort merges
//! them rather than re-sorting. Both kernels are *stable with respect to
//! run order*: ties go to the earlier run, so merging chunks in source-rank
//! order preserves global stability.

use crate::record::Sortable;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::mem::MaybeUninit;

/// Merge two sorted runs. Stable: ties take from `a` first.
pub fn merge_two<T: Sortable>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    merge_two_into(a, b, &mut out);
    out
}

/// Merge two sorted runs into an existing buffer (cleared first).
///
/// The hot loop is branchless (select + unconditional index bumps) so
/// random interleavings don't pay a misprediction per record — this kernel
/// is the inner pass of the node-level merge and every 2-run part of the
/// parallel merge, and shows up directly in Figs. 5c and 6a.
pub fn merge_two_into<T: Sortable>(a: &[T], b: &[T], out: &mut Vec<T>) {
    let total = a.len() + b.len();
    out.clear();
    out.reserve(total);
    merge_two_uninit(a, b, &mut out.spare_capacity_mut()[..total]);
    // SAFETY: `merge_two_uninit` initialized all `total` reserved slots.
    unsafe {
        out.set_len(total);
    }
}

/// Two-way merge into uninitialized storage; writes every slot of `out`.
fn merge_two_uninit<T: Sortable>(a: &[T], b: &[T], out: &mut [MaybeUninit<T>]) {
    debug_assert_eq!(out.len(), a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut k = 0usize;
    // SAFETY: `k` counts the writes and never exceeds
    // `a.len() + b.len() == out.len()`; `i`/`j` are bounded by the loop
    // condition; every element written is a valid `T` (T: Copy).
    unsafe {
        let dst = out.as_mut_ptr().cast::<T>();
        while i < a.len() && j < b.len() {
            let ea = *a.get_unchecked(i);
            let eb = *b.get_unchecked(j);
            // `<=` keeps `a`'s element on ties: stability.
            let take_a = ea.key() <= eb.key();
            *dst.add(k) = if take_a { ea } else { eb };
            i += take_a as usize;
            j += usize::from(!take_a);
            k += 1;
        }
    }
    for &r in &a[i..] {
        out[k].write(r);
        k += 1;
    }
    for &r in &b[j..] {
        out[k].write(r);
        k += 1;
    }
}

/// Tournament loser tree over `k` sorted runs: the winner (smallest
/// `(key, run)` pair) is at `ls[0]`, every internal node holds the loser of
/// its match, so replacing the winner costs exactly `⌈log₂ k⌉` comparisons
/// with one tree-node load each — half the loads of a binary heap's
/// sift-down and with no per-record allocation or branchy sift logic.
///
/// Leaves are padded to the next power of two; virtual leaves (index ≥ k)
/// and exhausted runs compare as +∞ with run-index tie-breaks, so ties
/// always go to the lowest-indexed *live* run — the same stability rule as
/// the pairwise kernels.
struct LoserTree<'a, T: Sortable> {
    runs: &'a [&'a [T]],
    /// Padded leaf count (power of two, ≥ runs.len()).
    m: usize,
    /// Head key of each (possibly virtual) leaf; `None` = exhausted.
    heads: Vec<Option<T::Key>>,
    /// Next position within each real run.
    pos: Vec<usize>,
    /// `ls[0]` = winner leaf; `ls[1..m]` = loser leaf at internal nodes.
    ls: Vec<usize>,
}

impl<'a, T: Sortable> LoserTree<'a, T> {
    fn new(runs: &'a [&'a [T]]) -> Self {
        let k = runs.len();
        debug_assert!(k >= 1);
        let m = k.next_power_of_two();
        let mut heads: Vec<Option<T::Key>> = Vec::with_capacity(m);
        heads.extend(runs.iter().map(|r| r.first().map(Sortable::key)));
        heads.resize(m, None);
        let mut lt = Self {
            runs,
            m,
            heads,
            pos: vec![0; k],
            ls: vec![0; m],
        };
        // Full bottom-up tournament over the complete tree [internal
        // nodes 1..m | leaf i at position m+i]: node j keeps the loser of
        // its children (positions 2j, 2j+1), winners move up, and the
        // champion lands in ls[0].
        let mut winner: Vec<usize> = vec![0; 2 * m];
        for (i, w) in winner[m..].iter_mut().enumerate() {
            *w = i;
        }
        for j in (1..m).rev() {
            let (a, b) = (winner[2 * j], winner[2 * j + 1]);
            let (w, l) = if lt.wins(a, b) { (a, b) } else { (b, a) };
            lt.ls[j] = l;
            winner[j] = w;
        }
        lt.ls[0] = winner[1];
        lt
    }

    /// Does leaf `a` beat leaf `b`? Smallest key wins; ties go to the
    /// lower leaf index (stability); exhausted leaves always lose.
    #[inline]
    fn wins(&self, a: usize, b: usize) -> bool {
        match (self.heads[a], self.heads[b]) {
            (Some(ka), Some(kb)) => ka < kb || (ka == kb && a < b),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Replay the path from leaf `s` to the root after its head changed.
    #[inline]
    fn adjust(&mut self, mut s: usize) {
        let mut t = (self.m + s) / 2;
        while t > 0 {
            if self.wins(self.ls[t], s) {
                std::mem::swap(&mut self.ls[t], &mut s);
            }
            t /= 2;
        }
        self.ls[0] = s;
    }

    /// Take the next record in merged order, or `None` when every run is
    /// exhausted.
    #[inline]
    fn pop(&mut self) -> Option<T> {
        let w = self.ls[0];
        self.heads[w]?;
        // A winning leaf with a live head is always a real run (virtual
        // leaves are permanently exhausted).
        let rec = self.runs[w][self.pos[w]];
        self.pos[w] += 1;
        self.heads[w] = self.runs[w].get(self.pos[w]).map(Sortable::key);
        self.adjust(w);
        Some(rec)
    }
}

/// Heap entry for the k-way merge: ordered by (key, run index) so that the
/// smallest key wins and ties go to the lowest run index (stability).
struct HeapEntry<K: Copy> {
    key: K,
    run: usize,
    pos: usize,
}

impl<K: Ord + Copy> PartialEq for HeapEntry<K> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.run == other.run
    }
}
impl<K: Ord + Copy> Eq for HeapEntry<K> {}
impl<K: Ord + Copy> PartialOrd for HeapEntry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord + Copy> Ord for HeapEntry<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min entry on top.
        (other.key, other.run).cmp(&(self.key, self.run))
    }
}

/// Widest record (bytes) and most runs for which the pairwise cascade
/// still beats the loser tree: the cascade's `⌈log₂ k⌉` streaming passes
/// are branchless and predictor-friendly but copy every record per pass,
/// while a tournament pop costs `⌈log₂ k⌉` data-dependent branches and
/// copies once. Measured on the weak-scaling driver (cold caller, one
/// merge per sort): thin records at small `k` favour the cascade by
/// ~15 ns/record; 32-byte records favour the tree 2.5–3× at every `k`.
const CASCADE_MAX_BYTES: usize = 16;
const CASCADE_MAX_K: usize = 8;

/// Small-`k`, thin-record cascade: pairwise [`merge_two`] levels with the
/// final pass writing straight into `out` (at most one intermediate level
/// is alive at a time, so peak extra memory stays ≈ n records).
fn kway_merge_cascade_uninit<T: Sortable>(runs: &[&[T]], out: &mut [MaybeUninit<T>]) {
    debug_assert!(runs.len() >= 3);
    let mut level: Vec<Vec<T>> = runs
        .chunks(2)
        .map(|pair| {
            if pair.len() == 2 {
                merge_two(pair[0], pair[1])
            } else {
                pair[0].to_vec()
            }
        })
        .collect();
    while level.len() > 2 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut iter = level.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_two(&a, &b)),
                None => next.push(a),
            }
        }
        level = next;
    }
    merge_two_uninit(&level[0], level.get(1).map_or(&[][..], Vec::as_slice), out);
}

/// Merge `k` sorted runs into uninitialized storage of exactly the total
/// length; writes every slot. Stable across runs: ties take from the
/// lowest-indexed run first.
///
/// Direct copy for `k ≤ 1`, the branchless two-way kernel for `k = 2`, a
/// short pairwise cascade for thin records at small `k` (branchless
/// streaming beats tournament branches when copies are cheap), and a
/// [`LoserTree`] beyond: `O(n log k)` comparisons, zero intermediate
/// buffers (the old all-`k` pairwise cascade allocated `O(log k)`
/// full-size `Vec`s per merge — see [`kway_merge_cascade`], kept for
/// equivalence tests and the merge micro-benchmarks).
pub(crate) fn kway_merge_uninit<T: Sortable>(runs: &[&[T]], out: &mut [MaybeUninit<T>]) {
    debug_assert_eq!(out.len(), runs.iter().map(|r| r.len()).sum::<usize>());
    match runs.len() {
        0 => {}
        1 => {
            for (slot, &r) in out.iter_mut().zip(runs[0]) {
                slot.write(r);
            }
        }
        2 => merge_two_uninit(runs[0], runs[1], out),
        k if k <= CASCADE_MAX_K && std::mem::size_of::<T>() <= CASCADE_MAX_BYTES => {
            kway_merge_cascade_uninit(runs, out);
        }
        _ => {
            let mut lt = LoserTree::new(runs);
            let mut i = 0usize;
            while let Some(rec) = lt.pop() {
                out[i].write(rec);
                i += 1;
            }
            debug_assert_eq!(i, out.len());
        }
    }
}

/// Merge `k` sorted runs into an existing buffer (cleared first). Stable
/// across runs; one allocation at most (growing `out` to the total size).
pub fn kway_merge_into<T: Sortable>(runs: &[&[T]], out: &mut Vec<T>) {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    out.clear();
    out.reserve(total);
    kway_merge_uninit(runs, &mut out.spare_capacity_mut()[..total]);
    // SAFETY: `kway_merge_uninit` initialized all `total` reserved slots.
    unsafe {
        out.set_len(total);
    }
}

/// Merge `k` sorted runs. Stable across runs: ties take from the
/// lowest-indexed run first.
///
/// Uses direct concatenation for `k ≤ 1`, the branch-friendly two-way
/// kernel for `k = 2`, and a tournament loser tree beyond (`⌈log₂ k⌉`
/// comparisons per record, one output allocation, no intermediate runs) —
/// the structure *Robust Massively Parallel Sorting* uses for its final
/// multiway merge.
pub fn kway_merge<T: Sortable>(runs: &[&[T]]) -> Vec<T> {
    let mut out = Vec::new();
    kway_merge_into(runs, &mut out);
    out
}

/// The pre-loser-tree pairwise merge cascade (`⌈log₂ k⌉` linear passes,
/// each allocating a full-size intermediate `Vec`). Kept as an
/// independently-derived oracle for the equivalence tests and as the
/// baseline in the merge micro-benchmarks.
pub fn kway_merge_cascade<T: Sortable>(runs: &[&[T]]) -> Vec<T> {
    match runs.len() {
        0 => Vec::new(),
        1 => runs[0].to_vec(),
        2 => merge_two(runs[0], runs[1]),
        _ => {
            // First pass: merge adjacent input slices (pairing neighbours
            // keeps run order, hence stability).
            let mut level: Vec<Vec<T>> = runs
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        merge_two(pair[0], pair[1])
                    } else {
                        pair[0].to_vec()
                    }
                })
                .collect();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                let mut iter = level.into_iter();
                while let Some(a) = iter.next() {
                    match iter.next() {
                        Some(b) => next.push(merge_two(&a, &b)),
                        None => next.push(a),
                    }
                }
                level = next;
            }
            level.pop().unwrap_or_default()
        }
    }
}

/// Merge `k` sorted runs with a k-ary heap (`O(n log k)` with heap
/// constants). Exposed for the merge micro-benchmarks and as a second
/// independent oracle; the loser tree in [`kway_merge`] does about half
/// the memory traffic per record.
pub fn kway_merge_heap<T: Sortable>(runs: &[&[T]]) -> Vec<T> {
    if runs.len() < 3 {
        return kway_merge(runs);
    }
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap: BinaryHeap<HeapEntry<T::Key>> = BinaryHeap::with_capacity(runs.len());
    for (run, data) in runs.iter().enumerate() {
        if let Some(first) = data.first() {
            heap.push(HeapEntry {
                key: first.key(),
                run,
                pos: 0,
            });
        }
    }
    while let Some(HeapEntry { run, pos, .. }) = heap.pop() {
        out.push(runs[run][pos]);
        let next = pos + 1;
        if next < runs[run].len() {
            heap.push(HeapEntry {
                key: runs[run][next].key(),
                run,
                pos: next,
            });
        }
    }
    out
}

/// Merge `k` sorted runs identified by their offsets inside one contiguous
/// buffer (the post-exchange layout: chunk `i` occupies
/// `buf[disp[i]..disp[i+1]]`).
pub fn kway_merge_offsets<T: Sortable>(buf: &[T], disp: &[usize]) -> Vec<T> {
    debug_assert!(disp.len() >= 2, "disp must bracket at least one run");
    let runs: Vec<&[T]> = disp.windows(2).map(|w| &buf[w[0]..w[1]]).collect();
    kway_merge(&runs)
}

/// True if `data` is sorted by key (non-decreasing).
pub fn is_sorted_by_key<T: Sortable>(data: &[T]) -> bool {
    data.windows(2).all(|w| w[0].key() <= w[1].key())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    #[test]
    fn merge_two_basic() {
        assert_eq!(merge_two(&[1u32, 3, 5], &[2, 4, 6]), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(merge_two(&[], &[1u32]), vec![1]);
        assert_eq!(merge_two(&[1u32], &[]), vec![1]);
        assert_eq!(merge_two::<u32>(&[], &[]), Vec::<u32>::new());
    }

    #[test]
    fn merge_two_is_stable() {
        let a = [Record::new(1u32, 'a'), Record::new(2, 'a')];
        let b = [Record::new(1u32, 'b'), Record::new(2, 'b')];
        let m = merge_two(&a, &b);
        let tags: Vec<char> = m.iter().map(|r| r.payload).collect();
        assert_eq!(tags, vec!['a', 'b', 'a', 'b']);
    }

    #[test]
    fn kway_merge_three_runs() {
        let runs: Vec<&[u64]> = vec![&[1, 4, 7], &[2, 5, 8], &[3, 6, 9]];
        assert_eq!(kway_merge(&runs), (1..=9).collect::<Vec<u64>>());
    }

    #[test]
    fn kway_merge_stability_across_runs() {
        let r0 = [Record::new(5u32, 0u64), Record::new(5, 1)];
        let r1 = [Record::new(5u32, 2u64)];
        let r2 = [Record::new(5u32, 3u64), Record::new(5, 4)];
        let runs: Vec<&[Record<u32, u64>]> = vec![&r0, &r1, &r2];
        let m = kway_merge(&runs);
        let tags: Vec<u64> = m.iter().map(|r| r.payload).collect();
        assert_eq!(
            tags,
            vec![0, 1, 2, 3, 4],
            "equal keys must come out in run order"
        );
    }

    #[test]
    fn kway_merge_with_empty_runs() {
        let runs: Vec<&[u32]> = vec![&[], &[2, 3], &[], &[1], &[]];
        assert_eq!(kway_merge(&runs), vec![1, 2, 3]);
        assert_eq!(kway_merge::<u32>(&[]), Vec::<u32>::new());
    }

    #[test]
    fn kway_merge_offsets_contiguous_buffer() {
        let buf = [1u32, 5, 9, 2, 6, 3, 7, 8];
        let disp = [0, 3, 5, 8];
        assert_eq!(
            kway_merge_offsets(&buf, &disp),
            vec![1, 2, 3, 5, 6, 7, 8, 9]
        );
    }

    #[test]
    fn kway_matches_sort_on_random_runs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for k in [1usize, 2, 3, 8, 17] {
            let runs: Vec<Vec<u32>> = (0..k)
                .map(|_| {
                    let mut v: Vec<u32> = (0..rng.gen_range(0..200))
                        .map(|_| rng.gen_range(0..50))
                        .collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            let refs: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
            let merged = kway_merge(&refs);
            let mut expect: Vec<u32> = runs.iter().flatten().copied().collect();
            expect.sort_unstable();
            assert_eq!(merged, expect, "k={k}");
        }
    }

    #[test]
    fn loser_tree_heap_and_cascade_bit_identical() {
        // Tagged records with heavy duplication: any tie-order divergence
        // between the three k-way implementations shows up in the payloads.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        for k in [3usize, 4, 5, 9, 16, 33, 100] {
            let mut tag = 0u64;
            let runs: Vec<Vec<Record<u32, u64>>> = (0..k)
                .map(|_| {
                    let mut v: Vec<u32> = (0..rng.gen_range(0..150))
                        .map(|_| rng.gen_range(0..30))
                        .collect();
                    v.sort_unstable();
                    v.into_iter()
                        .map(|key| {
                            tag += 1;
                            Record::new(key, tag)
                        })
                        .collect()
                })
                .collect();
            let refs: Vec<&[Record<u32, u64>]> = runs.iter().map(Vec::as_slice).collect();
            let loser = kway_merge(&refs);
            assert_eq!(loser, kway_merge_cascade(&refs), "k={k} vs cascade");
            assert_eq!(loser, kway_merge_heap(&refs), "k={k} vs heap");

            // 16-byte records at k ≤ 8 dispatch to the small-k cascade
            // above; drive the LoserTree itself at every k too so the
            // tournament path keeps small-k tie-order coverage.
            let total: usize = refs.iter().map(|r| r.len()).sum();
            let mut out: Vec<Record<u32, u64>> = Vec::with_capacity(total);
            let mut lt = LoserTree::new(&refs);
            while let Some(rec) = lt.pop() {
                out.push(rec);
            }
            assert_eq!(out, loser, "k={k} tree vs dispatch");
        }
    }

    #[test]
    fn kway_merge_into_reuses_buffer() {
        let runs: Vec<&[u32]> = vec![&[1, 4], &[2, 5], &[3]];
        let mut out = vec![99u32; 64];
        kway_merge_into(&runs, &mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn is_sorted_detects_order() {
        assert!(is_sorted_by_key(&[1u32, 1, 2, 3]));
        assert!(!is_sorted_by_key(&[2u32, 1]));
        assert!(is_sorted_by_key::<u32>(&[]));
    }
}
