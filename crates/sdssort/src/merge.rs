//! Sequential merge kernels: two-way and k-way merging of sorted runs.
//!
//! These implement the paper's `SdssMergeTwo` and `SdssMergeAll` (§2.6,
//! §2.7): after the all-to-all exchange every rank holds `p` sorted chunks
//! (one per source rank), and below the `τs` threshold SDS-Sort merges
//! them rather than re-sorting. Both kernels are *stable with respect to
//! run order*: ties go to the earlier run, so merging chunks in source-rank
//! order preserves global stability.

use crate::record::Sortable;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Merge two sorted runs. Stable: ties take from `a` first.
pub fn merge_two<T: Sortable>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    merge_two_into(a, b, &mut out);
    out
}

/// Merge two sorted runs into an existing buffer (cleared first).
///
/// The hot loop is branchless (select + unconditional index bumps) so
/// random interleavings don't pay a misprediction per record — this kernel
/// is the inner pass of every `SdssMergeAll` cascade and of the node-level
/// merge, and shows up directly in Figs. 5c and 6a.
pub fn merge_two_into<T: Sortable>(a: &[T], b: &[T], out: &mut Vec<T>) {
    let total = a.len() + b.len();
    out.clear();
    out.reserve(total);
    let (mut i, mut j) = (0usize, 0usize);
    let mut k = 0usize;
    // SAFETY: `out` has capacity for `total`; `k` counts the writes and
    // never exceeds `a.len() + b.len()`; `i`/`j` are bounded by the loop
    // condition; every element written is a valid `T` (T: Copy).
    unsafe {
        let dst = out.as_mut_ptr();
        while i < a.len() && j < b.len() {
            let ea = *a.get_unchecked(i);
            let eb = *b.get_unchecked(j);
            // `<=` keeps `a`'s element on ties: stability.
            let take_a = ea.key() <= eb.key();
            *dst.add(k) = if take_a { ea } else { eb };
            i += take_a as usize;
            j += usize::from(!take_a);
            k += 1;
        }
        out.set_len(k);
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    debug_assert_eq!(out.len(), total);
}

/// Heap entry for the k-way merge: ordered by (key, run index) so that the
/// smallest key wins and ties go to the lowest run index (stability).
struct HeapEntry<K: Copy> {
    key: K,
    run: usize,
    pos: usize,
}

impl<K: Ord + Copy> PartialEq for HeapEntry<K> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.run == other.run
    }
}
impl<K: Ord + Copy> Eq for HeapEntry<K> {}
impl<K: Ord + Copy> PartialOrd for HeapEntry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord + Copy> Ord for HeapEntry<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min entry on top.
        (other.key, other.run).cmp(&(self.key, self.run))
    }
}

/// Merge `k` sorted runs. Stable across runs: ties take from the
/// lowest-indexed run first.
///
/// Uses direct concatenation for `k ≤ 1`, the branch-friendly two-way
/// kernel for `k = 2`, and a balanced pairwise cascade (`⌈log₂ k⌉` linear
/// passes, `O(n log k)` total with two-way-merge constants) beyond — in
/// practice faster than a k-ary heap at every k we measured, and the same
/// structure the paper's `SdssMergeAll` builds from `std::merge`.
pub fn kway_merge<T: Sortable>(runs: &[&[T]]) -> Vec<T> {
    match runs.len() {
        0 => Vec::new(),
        1 => runs[0].to_vec(),
        2 => merge_two(runs[0], runs[1]),
        _ => {
            // First pass: merge adjacent input slices (pairing neighbours
            // keeps run order, hence stability).
            let mut level: Vec<Vec<T>> = runs
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        merge_two(pair[0], pair[1])
                    } else {
                        pair[0].to_vec()
                    }
                })
                .collect();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                let mut iter = level.into_iter();
                while let Some(a) = iter.next() {
                    match iter.next() {
                        Some(b) => next.push(merge_two(&a, &b)),
                        None => next.push(a),
                    }
                }
                level = next;
            }
            level.pop().unwrap_or_default()
        }
    }
}

/// Merge `k` sorted runs with a k-ary heap (`O(n log k)` with heap
/// constants). Exposed for the merge micro-benchmarks; [`kway_merge`]'s
/// cascade is faster in practice.
pub fn kway_merge_heap<T: Sortable>(runs: &[&[T]]) -> Vec<T> {
    if runs.len() < 3 {
        return kway_merge(runs);
    }
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap: BinaryHeap<HeapEntry<T::Key>> = BinaryHeap::with_capacity(runs.len());
    for (run, data) in runs.iter().enumerate() {
        if let Some(first) = data.first() {
            heap.push(HeapEntry {
                key: first.key(),
                run,
                pos: 0,
            });
        }
    }
    while let Some(HeapEntry { run, pos, .. }) = heap.pop() {
        out.push(runs[run][pos]);
        let next = pos + 1;
        if next < runs[run].len() {
            heap.push(HeapEntry {
                key: runs[run][next].key(),
                run,
                pos: next,
            });
        }
    }
    out
}

/// Merge `k` sorted runs identified by their offsets inside one contiguous
/// buffer (the post-exchange layout: chunk `i` occupies
/// `buf[disp[i]..disp[i+1]]`).
pub fn kway_merge_offsets<T: Sortable>(buf: &[T], disp: &[usize]) -> Vec<T> {
    debug_assert!(disp.len() >= 2, "disp must bracket at least one run");
    let runs: Vec<&[T]> = disp.windows(2).map(|w| &buf[w[0]..w[1]]).collect();
    kway_merge(&runs)
}

/// True if `data` is sorted by key (non-decreasing).
pub fn is_sorted_by_key<T: Sortable>(data: &[T]) -> bool {
    data.windows(2).all(|w| w[0].key() <= w[1].key())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    #[test]
    fn merge_two_basic() {
        assert_eq!(merge_two(&[1u32, 3, 5], &[2, 4, 6]), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(merge_two(&[], &[1u32]), vec![1]);
        assert_eq!(merge_two(&[1u32], &[]), vec![1]);
        assert_eq!(merge_two::<u32>(&[], &[]), Vec::<u32>::new());
    }

    #[test]
    fn merge_two_is_stable() {
        let a = [Record::new(1u32, 'a'), Record::new(2, 'a')];
        let b = [Record::new(1u32, 'b'), Record::new(2, 'b')];
        let m = merge_two(&a, &b);
        let tags: Vec<char> = m.iter().map(|r| r.payload).collect();
        assert_eq!(tags, vec!['a', 'b', 'a', 'b']);
    }

    #[test]
    fn kway_merge_three_runs() {
        let runs: Vec<&[u64]> = vec![&[1, 4, 7], &[2, 5, 8], &[3, 6, 9]];
        assert_eq!(kway_merge(&runs), (1..=9).collect::<Vec<u64>>());
    }

    #[test]
    fn kway_merge_stability_across_runs() {
        let r0 = [Record::new(5u32, 0u64), Record::new(5, 1)];
        let r1 = [Record::new(5u32, 2u64)];
        let r2 = [Record::new(5u32, 3u64), Record::new(5, 4)];
        let runs: Vec<&[Record<u32, u64>]> = vec![&r0, &r1, &r2];
        let m = kway_merge(&runs);
        let tags: Vec<u64> = m.iter().map(|r| r.payload).collect();
        assert_eq!(
            tags,
            vec![0, 1, 2, 3, 4],
            "equal keys must come out in run order"
        );
    }

    #[test]
    fn kway_merge_with_empty_runs() {
        let runs: Vec<&[u32]> = vec![&[], &[2, 3], &[], &[1], &[]];
        assert_eq!(kway_merge(&runs), vec![1, 2, 3]);
        assert_eq!(kway_merge::<u32>(&[]), Vec::<u32>::new());
    }

    #[test]
    fn kway_merge_offsets_contiguous_buffer() {
        let buf = [1u32, 5, 9, 2, 6, 3, 7, 8];
        let disp = [0, 3, 5, 8];
        assert_eq!(
            kway_merge_offsets(&buf, &disp),
            vec![1, 2, 3, 5, 6, 7, 8, 9]
        );
    }

    #[test]
    fn kway_matches_sort_on_random_runs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for k in [1usize, 2, 3, 8, 17] {
            let runs: Vec<Vec<u32>> = (0..k)
                .map(|_| {
                    let mut v: Vec<u32> = (0..rng.gen_range(0..200))
                        .map(|_| rng.gen_range(0..50))
                        .collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            let refs: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
            let merged = kway_merge(&refs);
            let mut expect: Vec<u32> = runs.iter().flatten().copied().collect();
            expect.sort_unstable();
            assert_eq!(merged, expect, "k={k}");
        }
    }

    #[test]
    fn heap_and_cascade_agree() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        for k in [3usize, 5, 9, 33] {
            let runs: Vec<Vec<u32>> = (0..k)
                .map(|_| {
                    let mut v: Vec<u32> = (0..rng.gen_range(0..150))
                        .map(|_| rng.gen_range(0..30))
                        .collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            let refs: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
            assert_eq!(kway_merge(&refs), kway_merge_heap(&refs), "k={k}");
        }
    }

    #[test]
    fn is_sorted_detects_order() {
        assert!(is_sorted_by_key(&[1u32, 1, 2, 3]));
        assert!(!is_sorted_by_key(&[2u32, 1]));
        assert!(is_sorted_by_key::<u32>(&[]));
    }
}
