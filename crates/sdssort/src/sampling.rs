//! Regular (equal-striped) sampling.
//!
//! Paper §2.4: SDS-Sort samples `p-1` local pivots from each rank's
//! *sorted* local array at regular stride. Because the array is sorted,
//! consecutive samples bracket at most `2·N/p²` records, which is the
//! lemma powering the `O(4N/p)` workload bound of Theorem 1.

use crate::record::Sortable;

/// Positions of `count` regular samples in a sorted array of length `n`:
/// sample `i` sits at `⌊(i+1)·n/(count+1)⌋ - 1`-style interior positions,
/// computed so samples are strictly interior, evenly spaced, and
/// monotonically non-decreasing. Returns fewer than `count` positions only
/// when `n < count` (every element is then a sample).
pub fn regular_sample_positions(n: usize, count: usize) -> Vec<usize> {
    if n == 0 || count == 0 {
        return Vec::new();
    }
    if n <= count {
        return (0..n).collect();
    }
    (1..=count)
        .map(|i| (i * n) / (count + 1))
        .map(|p| p.min(n - 1))
        .collect()
}

/// Sample `count` local pivots from sorted `data` at regular stride.
pub fn regular_sample<T: Sortable>(data: &[T], count: usize) -> Vec<T::Key> {
    regular_sample_positions(data.len(), count)
        .into_iter()
        .map(|p| data[p].key())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_interior_and_sorted() {
        let pos = regular_sample_positions(100, 9);
        assert_eq!(pos.len(), 9);
        assert_eq!(pos, vec![10, 20, 30, 40, 50, 60, 70, 80, 90]);
        assert!(pos.windows(2).all(|w| w[0] <= w[1]));
        assert!(*pos.last().unwrap() < 100);
    }

    #[test]
    fn small_arrays_degrade_gracefully() {
        assert_eq!(regular_sample_positions(0, 5), Vec::<usize>::new());
        assert_eq!(regular_sample_positions(3, 0), Vec::<usize>::new());
        assert_eq!(regular_sample_positions(2, 5), vec![0, 1]);
        assert_eq!(regular_sample_positions(5, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn samples_come_from_data_in_order() {
        let data: Vec<u32> = (0..50).map(|i| i * 2).collect();
        let s = regular_sample(&data, 4);
        assert_eq!(s.len(), 4);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        for k in &s {
            assert!(data.contains(k));
        }
    }

    #[test]
    fn gap_between_samples_bounded() {
        // With count samples from n sorted records, the gap between
        // consecutive sample positions is at most ceil(n/(count+1)) + 1 —
        // the 2N/p² bracketing property (up to rounding).
        for n in [97usize, 128, 1000, 4096] {
            for count in [1usize, 3, 7, 31] {
                let pos = regular_sample_positions(n, count);
                let bound = n / (count + 1) + 2;
                let mut prev = 0usize;
                for &p in &pos {
                    assert!(
                        p - prev <= bound,
                        "n={n} count={count}: gap {} > {bound}",
                        p - prev
                    );
                    prev = p;
                }
                assert!(n - prev <= bound + 1);
            }
        }
    }
}
