//! Record and key abstractions.
//!
//! SDS-Sort's central selling point is that it sorts records *by any key
//! the user picks* — without requiring a secondary key to disambiguate
//! duplicates (paper §1, §2.5). We model that with the [`Sortable`] trait:
//! a record is any `Copy` type exposing a totally ordered key. Payload
//! travels with the record through the exchange (and is what makes skewed
//! exchanges expensive), but never participates in comparisons.
//!
//! Floating-point keys (the PTF real-bogus scores are `f32`) are handled
//! with [`OrderedF32`]/[`OrderedF64`], monotone total-order bit encodings.

use comm::Wire;

/// A record that can be sorted by SDS-Sort and the baseline sorters.
///
/// `Key` must be totally ordered ([`Ord`]); comparisons look only at the
/// key, so equal-key records are genuinely indistinguishable to the sorter
/// — exactly the regime where skew-aware partitioning matters.
///
/// Records and keys must additionally be [`Wire`]: every record crosses
/// the transport during the exchange phase, and the distributed sockets
/// backend needs to serialize it. For in-process backends the bound costs
/// nothing (nothing is encoded).
pub trait Sortable: Copy + Send + Sync + 'static + Wire {
    /// The sort key type.
    type Key: Ord + Copy + Send + Sync + 'static + Wire;

    /// Extract this record's sort key.
    fn key(&self) -> Self::Key;

    /// True when [`Sortable::radix_u64`] is a monotone `u64` embedding of
    /// the key order — the precondition for the LSD radix local-sort
    /// kernel. Record types whose key has no such embedding keep the
    /// default `false` and are always comparison-sorted.
    const RADIX: bool = false;

    /// Monotone `u64` view of this record's key
    /// (`a.key() <= b.key()  ⇔  a.radix_u64() <= b.radix_u64()`).
    /// Only meaningful when [`Sortable::RADIX`] is true.
    #[inline]
    fn radix_u64(&self) -> u64 {
        0
    }
}

/// A key with an order-preserving mapping to `u64`:
/// `a <= b  ⇔  a.radix_u64() <= b.radix_u64()`.
///
/// This is what the radix kernels — the LSD local sort in
/// [`crate::radix`] and the distributed radix baseline — sort by.
/// Key types that cannot embed into 64 bits (the 128-bit integers)
/// implement the trait with [`RadixKey::USABLE`]` = false` and a dummy
/// mapping: they stay usable as comparison-sorted keys (including as
/// [`Record`] keys) while statically opting out of every radix path.
pub trait RadixKey: Copy {
    /// Whether `radix_u64` really is the monotone embedding.
    const USABLE: bool = true;

    /// The monotone unsigned mapping.
    fn radix_u64(&self) -> u64;
}

macro_rules! impl_radix_uint {
    ($($t:ty),*) => {$(
        impl RadixKey for $t {
            #[inline]
            fn radix_u64(&self) -> u64 {
                *self as u64
            }
        }
    )*};
}
impl_radix_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_radix_int {
    ($($t:ty),*) => {$(
        impl RadixKey for $t {
            #[inline]
            fn radix_u64(&self) -> u64 {
                // Sign-bias: shifting the two's-complement range up by
                // 2^63 maps i64::MIN..=i64::MAX monotonically onto
                // 0..=u64::MAX.
                (*self as i64 as u64) ^ (1u64 << 63)
            }
        }
    )*};
}
impl_radix_int!(i8, i16, i32, i64, isize);

macro_rules! impl_radix_unusable {
    ($($t:ty),*) => {$(
        impl RadixKey for $t {
            const USABLE: bool = false;
            #[inline]
            fn radix_u64(&self) -> u64 {
                0
            }
        }
    )*};
}
impl_radix_unusable!(u128, i128);

macro_rules! impl_sortable_prim {
    ($($t:ty),*) => {$(
        impl Sortable for $t {
            type Key = $t;
            #[inline]
            fn key(&self) -> $t {
                *self
            }
            const RADIX: bool = <$t as RadixKey>::USABLE;
            #[inline]
            fn radix_u64(&self) -> u64 {
                RadixKey::radix_u64(self)
            }
        }
    )*};
}

impl_sortable_prim!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Map an `f32` to a `u32` preserving total order (IEEE-754 trick: flip the
/// sign bit for positives, flip all bits for negatives). NaNs order above
/// +∞ (positive NaN) or below -∞ (negative NaN) deterministically.
#[inline]
pub fn f32_to_ordered_bits(v: f32) -> u32 {
    let bits = v.to_bits();
    if bits & 0x8000_0000 == 0 {
        bits ^ 0x8000_0000
    } else {
        !bits
    }
}

/// Inverse of [`f32_to_ordered_bits`].
#[inline]
pub fn f32_from_ordered_bits(bits: u32) -> f32 {
    if bits & 0x8000_0000 != 0 {
        f32::from_bits(bits ^ 0x8000_0000)
    } else {
        f32::from_bits(!bits)
    }
}

/// Map an `f64` to a `u64` preserving total order.
#[inline]
pub fn f64_to_ordered_bits(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits & 0x8000_0000_0000_0000 == 0 {
        bits ^ 0x8000_0000_0000_0000
    } else {
        !bits
    }
}

/// Inverse of [`f64_to_ordered_bits`].
#[inline]
pub fn f64_from_ordered_bits(bits: u64) -> f64 {
    if bits & 0x8000_0000_0000_0000 != 0 {
        f64::from_bits(bits ^ 0x8000_0000_0000_0000)
    } else {
        f64::from_bits(!bits)
    }
}

/// An `f32` with a total order, usable as a sort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OrderedF32(u32);

impl OrderedF32 {
    /// Wrap a float.
    #[inline]
    pub fn new(v: f32) -> Self {
        Self(f32_to_ordered_bits(v))
    }

    /// Recover the float value.
    #[inline]
    pub fn value(self) -> f32 {
        f32_from_ordered_bits(self.0)
    }

    /// The monotone total-order bit pattern (useful for radix sorting).
    #[inline]
    pub fn ordered_bits(self) -> u32 {
        self.0
    }
}

impl From<f32> for OrderedF32 {
    fn from(v: f32) -> Self {
        Self::new(v)
    }
}

impl RadixKey for OrderedF32 {
    #[inline]
    fn radix_u64(&self) -> u64 {
        self.ordered_bits() as u64
    }
}

impl Wire for OrderedF32 {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
    }
    fn get(src: &mut &[u8]) -> Option<Self> {
        u32::get(src).map(Self)
    }
}

impl Sortable for OrderedF32 {
    type Key = OrderedF32;
    #[inline]
    fn key(&self) -> Self::Key {
        *self
    }
    const RADIX: bool = true;
    #[inline]
    fn radix_u64(&self) -> u64 {
        RadixKey::radix_u64(self)
    }
}

/// An `f64` with a total order, usable as a sort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OrderedF64(u64);

impl OrderedF64 {
    /// Wrap a float.
    #[inline]
    pub fn new(v: f64) -> Self {
        Self(f64_to_ordered_bits(v))
    }

    /// Recover the float value.
    #[inline]
    pub fn value(self) -> f64 {
        f64_from_ordered_bits(self.0)
    }

    /// The monotone total-order bit pattern (useful for radix sorting).
    #[inline]
    pub fn ordered_bits(self) -> u64 {
        self.0
    }
}

impl From<f64> for OrderedF64 {
    fn from(v: f64) -> Self {
        Self::new(v)
    }
}

impl RadixKey for OrderedF64 {
    #[inline]
    fn radix_u64(&self) -> u64 {
        self.ordered_bits()
    }
}

impl Wire for OrderedF64 {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
    }
    fn get(src: &mut &[u8]) -> Option<Self> {
        u64::get(src).map(Self)
    }
}

impl Sortable for OrderedF64 {
    type Key = OrderedF64;
    #[inline]
    fn key(&self) -> Self::Key {
        *self
    }
    const RADIX: bool = true;
    #[inline]
    fn radix_u64(&self) -> u64 {
        RadixKey::radix_u64(self)
    }
}

/// A key/payload record. The payload is carried through the exchange but
/// never compared — the paper's "non-key values".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Record<K, P> {
    /// The sort key.
    pub key: K,
    /// Arbitrary non-key values travelling with the record.
    pub payload: P,
}

impl<K, P> Record<K, P> {
    /// Construct a record.
    #[inline]
    pub fn new(key: K, payload: P) -> Self {
        Self { key, payload }
    }
}

/// Field-wise encoding (key then payload) — any compiler-inserted padding
/// between the fields never touches the wire.
impl<K, P> Wire for Record<K, P>
where
    K: Wire + Copy,
    P: Wire + Copy,
{
    fn put(&self, out: &mut Vec<u8>) {
        self.key.put(out);
        self.payload.put(out);
    }
    fn get(src: &mut &[u8]) -> Option<Self> {
        Some(Self {
            key: K::get(src)?,
            payload: P::get(src)?,
        })
    }
}

impl<K, P> Sortable for Record<K, P>
where
    K: Ord + Copy + Send + Sync + 'static + RadixKey + Wire,
    P: Copy + Send + Sync + 'static + Wire,
{
    type Key = K;
    #[inline]
    fn key(&self) -> K {
        self.key
    }
    const RADIX: bool = K::USABLE;
    #[inline]
    fn radix_u64(&self) -> u64 {
        self.key.radix_u64()
    }
}

/// A record tagged with its original global position. Used by tests and by
/// the stability property checks: a stable sort must output equal keys in
/// ascending tag order.
pub type Tagged<K> = Record<K, u64>;

/// Fixed-size opaque payload of `N` bytes; models the paper's cosmology
/// records (6 × f32 of position/velocity payload per particle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pad<const N: usize>(pub [u8; N]);

impl<const N: usize> Default for Pad<N> {
    fn default() -> Self {
        Self([0u8; N])
    }
}

impl<const N: usize> Wire for Pad<N> {
    fn put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
    fn get(src: &mut &[u8]) -> Option<Self> {
        <[u8; N]>::get(src).map(Self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_f32_sorts_like_f32() {
        let mut vals = [
            3.5f32,
            -1.0,
            0.0,
            -0.0,
            2.25,
            -7.5,
            f32::INFINITY,
            f32::NEG_INFINITY,
        ];
        let mut wrapped: Vec<OrderedF32> = vals.iter().map(|&v| OrderedF32::new(v)).collect();
        wrapped.sort_unstable();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let unwrapped: Vec<f32> = wrapped.iter().map(|w| w.value()).collect();
        // -0.0 and 0.0 compare equal as floats; compare bit-for-bit on the
        // rest and positionally tolerate the zero pair.
        for (a, b) in unwrapped.iter().zip(vals.iter()) {
            assert!(a == b || (*a == 0.0 && *b == 0.0), "{a} vs {b}");
        }
    }

    #[test]
    fn ordered_f64_roundtrip() {
        for v in [-1e300, -2.5, -0.0, 0.0, 1.5, 1e300] {
            let w = OrderedF64::new(v);
            assert_eq!(w.value(), v);
        }
    }

    #[test]
    fn ordered_bits_monotone_exhaustive_f32_sample() {
        let mut prev = None;
        for i in -1000i32..1000 {
            let v = i as f32 * 0.37;
            let _ = v;
        }
        // structured monotonicity check across magnitudes and signs
        let seq = [
            f32::NEG_INFINITY,
            -1e30,
            -2.0,
            -1.0,
            -0.5,
            -f32::MIN_POSITIVE,
            0.0,
            f32::MIN_POSITIVE,
            0.5,
            1.0,
            2.0,
            1e30,
            f32::INFINITY,
        ];
        for w in seq.windows(2) {
            let (a, b) = (f32_to_ordered_bits(w[0]), f32_to_ordered_bits(w[1]));
            assert!(a < b, "{} !< {}", w[0], w[1]);
            prev = Some(b);
        }
        let _ = prev;
    }

    #[test]
    fn record_key_ignores_payload() {
        let a = Record::new(5u32, 100u64);
        let b = Record::new(5u32, 999u64);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn record_sorting_by_key() {
        let mut recs = [
            Record::new(3u64, 'c'),
            Record::new(1u64, 'a'),
            Record::new(2u64, 'b'),
        ];
        recs.sort_by_key(|r| r.key());
        let keys: Vec<u64> = recs.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn pad_default_is_zeroed() {
        let p: Pad<16> = Pad::default();
        assert_eq!(p.0, [0u8; 16]);
        assert_eq!(std::mem::size_of::<Pad<24>>(), 24);
    }

    #[test]
    fn radix_u64_is_monotone_for_every_usable_key() {
        // unsigned, signed (sign-bias), float (order bits): pairwise
        // order must survive the embedding exactly.
        let us = [0u64, 1, 7, u64::MAX / 2, u64::MAX];
        for a in us {
            for b in us {
                assert_eq!(a <= b, RadixKey::radix_u64(&a) <= RadixKey::radix_u64(&b));
            }
        }
        let is = [i64::MIN, -5, -1, 0, 1, 5, i64::MAX];
        for a in is {
            for b in is {
                assert_eq!(a <= b, RadixKey::radix_u64(&a) <= RadixKey::radix_u64(&b));
            }
        }
        let i32s = [i32::MIN, -2, 0, 3, i32::MAX];
        for a in i32s {
            for b in i32s {
                assert_eq!(a <= b, RadixKey::radix_u64(&a) <= RadixKey::radix_u64(&b));
            }
        }
        let fs: Vec<OrderedF64> = [-1e300, -2.5, -0.0, 0.0, 1.5, 1e300, f64::INFINITY]
            .into_iter()
            .map(OrderedF64::new)
            .collect();
        for &a in &fs {
            for &b in &fs {
                assert_eq!(a <= b, RadixKey::radix_u64(&a) <= RadixKey::radix_u64(&b));
            }
        }
    }

    #[test]
    fn radix_flags_match_key_capability() {
        fn radix_capable<T: Sortable>() -> bool {
            T::RADIX
        }
        assert!(radix_capable::<u64>());
        assert!(radix_capable::<i32>());
        assert!(radix_capable::<OrderedF32>());
        assert!(radix_capable::<Record<u32, u64>>());
        assert!(radix_capable::<Record<OrderedF64, char>>());
        // 128-bit keys have no u64 embedding: comparison-only.
        assert!(!radix_capable::<u128>());
        assert!(!radix_capable::<i128>());
        assert!(!radix_capable::<Record<u128, u64>>());
    }

    #[test]
    fn record_radix_u64_uses_the_key() {
        let r = Record::new(-3i64, 99u64);
        assert_eq!(Sortable::radix_u64(&r), RadixKey::radix_u64(&-3i64));
    }

    #[test]
    fn nan_has_consistent_total_order() {
        let nan = OrderedF32::new(f32::NAN);
        let inf = OrderedF32::new(f32::INFINITY);
        // positive NaN bit pattern sorts above +inf; the point is it is
        // *some* consistent position, so Ord never panics.
        assert!(nan > inf);
    }
}
