//! Distributed validation of sort results.
//!
//! Production users of a distributed sort want to *check* the result
//! without gathering everything on one rank. These collectives verify, in
//! `O(n/p)` work and `O(p)` communication per rank:
//!
//! * [`is_globally_sorted`] — local sortedness plus cross-rank boundary
//!   order (tolerating empty ranks);
//! * [`is_permutation_of`] — the output multiset equals the input multiset,
//!   via an order-insensitive content checksum reduced across ranks
//!   (probabilistic: collisions are ~2⁻⁶⁴ per independent check);
//! * [`load_stats`] — per-rank load distribution and RDFA.

use crate::record::Sortable;
use crate::stats::rdfa;
use comm::Communicator;

/// True iff the concatenation of all ranks' `data` (in rank order) is
/// sorted by key. Collective: every rank returns the same answer.
pub fn is_globally_sorted<T: Sortable, C: Communicator>(comm: &C, data: &[T]) -> bool {
    comm.trace_phase("validate");
    let sp = comm.span_begin("validate");
    let locally = data.windows(2).all(|w| w[0].key() <= w[1].key());
    // Exchange boundary keys: every rank publishes (has_data, min, max).
    let snapshot = (
        !data.is_empty(),
        data.first().map(Sortable::key),
        data.last().map(Sortable::key),
    );
    let all = comm.allgather(std::slice::from_ref(&snapshot));
    let mut boundaries_ok = true;
    let mut last_max: Option<T::Key> = None;
    for &(has, min, max) in &all {
        if !has {
            continue;
        }
        if let (Some(prev), Some(min)) = (last_max, min) {
            if prev > min {
                boundaries_ok = false;
            }
        }
        last_max = max;
    }
    let all_local = comm.allreduce(locally as u8, |a, b| a.min(b)) == 1;
    comm.span_end(sp);
    all_local && boundaries_ok
}

/// Order-insensitive 128-bit content checksum of a record set. Uses a
/// commutative combination (sum and xor of per-record mixes), so any
/// permutation of the same multiset produces the same value.
pub fn content_checksum<T: Sortable, H: Fn(&T) -> u64>(data: &[T], hash: H) -> (u64, u64) {
    let mut sum = 0u64;
    let mut xor = 0u64;
    for r in data {
        let h = mix(hash(r));
        sum = sum.wrapping_add(h);
        xor ^= h.rotate_left((h % 63) as u32);
    }
    (sum, xor)
}

fn mix(x: u64) -> u64 {
    // splitmix64 finalizer
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// True iff the global multiset of `output` equals that of `input`
/// (probabilistically, via reduced content checksums and an exact count).
/// `hash` must map a record to a value capturing everything that matters
/// (typically key and payload bits). Collective.
pub fn is_permutation_of<T: Sortable, H: Fn(&T) -> u64, C: Communicator>(
    comm: &C,
    input: &[T],
    output: &[T],
    hash: H,
) -> bool {
    comm.trace_phase("validate");
    let sp = comm.span_begin("validate");
    let in_ck = content_checksum(input, &hash);
    let out_ck = content_checksum(output, &hash);
    let contribution = (
        input.len() as u64,
        output.len() as u64,
        in_ck.0,
        in_ck.1,
        out_ck.0,
        out_ck.1,
    );
    let total = comm.allreduce(contribution, |a, b| {
        (
            a.0 + b.0,
            a.1 + b.1,
            a.2.wrapping_add(b.2),
            a.3 ^ b.3,
            a.4.wrapping_add(b.4),
            a.5 ^ b.5,
        )
    });
    let ok = total.0 == total.1 && total.2 == total.4 && total.3 == total.5;
    comm.span_end(sp);
    ok
}

/// Global load distribution: every rank returns `(loads, rdfa)` where
/// `loads[r]` is rank r's record count. Collective.
pub fn load_stats<C: Communicator>(comm: &C, local_count: usize) -> (Vec<usize>, f64) {
    let loads = comm.allgather(std::slice::from_ref(&local_count));
    let r = rdfa(&loads);
    (loads, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{NetModel, World};

    fn world(p: usize) -> World {
        World::new(p).cores_per_node(4).net(NetModel::zero())
    }

    #[test]
    fn detects_global_order() {
        let report = world(4).run(|comm| {
            let r = comm.rank() as u64;
            let good: Vec<u64> = (r * 10..r * 10 + 5).collect();
            let sorted = is_globally_sorted(comm, &good);
            // overlapping boundary: rank r reaches into rank r+1's range
            let bad: Vec<u64> = (r * 10 + 7..r * 10 + 19).collect();
            let unsorted = is_globally_sorted(comm, &bad);
            (sorted, unsorted)
        });
        for (good, bad) in report.results {
            assert!(good);
            assert!(!bad, "overlapping rank ranges must be detected");
        }
    }

    #[test]
    fn detects_local_disorder() {
        let report = world(3).run(|comm| {
            let data: Vec<u64> = if comm.rank() == 1 {
                vec![5, 3]
            } else {
                vec![1, 2]
            };
            is_globally_sorted(comm, &data)
        });
        assert!(report.results.iter().all(|&ok| !ok));
    }

    #[test]
    fn tolerates_empty_ranks() {
        let report = world(4).run(|comm| {
            let data: Vec<u64> = if comm.rank() == 2 {
                vec![1, 2, 3]
            } else {
                vec![]
            };
            is_globally_sorted(comm, &data)
        });
        assert!(report.results.iter().all(|&ok| ok));
    }

    #[test]
    fn permutation_check_accepts_redistribution() {
        let report = world(4).run(|comm| {
            let r = comm.rank() as u64;
            let input: Vec<u64> = (0..100).map(|i| i * 4 + r).collect();
            // "output": the same global multiset, redistributed — emulate
            // by rotating ownership one rank over.
            let rr = ((comm.rank() + 1) % 4) as u64;
            let output: Vec<u64> = (0..100).map(|i| i * 4 + rr).collect();
            is_permutation_of(comm, &input, &output, |&x| x)
        });
        assert!(report.results.iter().all(|&ok| ok));
    }

    #[test]
    fn permutation_check_rejects_mutation() {
        let report = world(4).run(|comm| {
            let input: Vec<u64> = (0..50).collect();
            let mut output = input.clone();
            if comm.rank() == 3 {
                output[10] = 999; // corrupt one record on one rank
            }
            is_permutation_of(comm, &input, &output, |&x| x)
        });
        assert!(report.results.iter().all(|&ok| !ok));
    }

    #[test]
    fn permutation_check_rejects_duplication() {
        // Same sum tricks must not fool it: duplicate one record, drop
        // another with the same key sum.
        let report = world(2).run(|comm| {
            let input: Vec<u64> = vec![1, 3];
            let output: Vec<u64> = vec![2, 2];
            is_permutation_of(comm, &input, &output, |&x| x)
        });
        assert!(report.results.iter().all(|&ok| !ok));
    }

    #[test]
    fn load_stats_reports_rdfa() {
        let report = world(4).run(|comm| load_stats(comm, (comm.rank() + 1) * 10));
        for (loads, r) in report.results {
            assert_eq!(loads, vec![10, 20, 30, 40]);
            assert!((r - 40.0 / 25.0).abs() < 1e-12);
        }
    }
}
