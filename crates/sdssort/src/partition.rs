//! Skew-aware partitioning (`SdssPartition` + `SdssReplicated`, paper §2.5).
//!
//! Given a rank's *sorted* local data and the `p-1` global pivots, compute
//! the cut positions that assign each record to a destination rank for the
//! all-to-all exchange. Three strategies:
//!
//! * [`classic_cuts`] — the traditional sample-sort rule (`upper_bound` per
//!   pivot). With duplicated pivots this sends *every* duplicate of the
//!   pivot value to one rank: the load-imbalance failure the paper fixes.
//! * [`fast_cuts`] — the skew-aware **fast** (unstable) rule: each sender
//!   splits its run of pivot-value duplicates evenly across the `rs` ranks
//!   owning the duplicated pivot. Equivalent to implicitly extending the
//!   key with the duplicate-pivot rank `rr` (paper §2.5.2).
//! * [`stable_cuts`] — the skew-aware **stable** rule: the global stream of
//!   duplicates (ordered by source rank, then input order) is divided into
//!   `rs` contiguous groups, one per owning rank, so a rank-ordered
//!   exchange preserves input order of equal keys.
//!
//! `SdssReplicated`'s per-pivot duplicate scan is implemented once for all
//! pivots by [`replicated_runs`] (an `O(p)` pass instead of the paper's
//! per-index rescan — identical output, asymptotically cheaper).
//!
//! Deviation from the paper's pseudocode: we bracket duplicates with
//! `lower_bound(value)` directly instead of `upper_bound(ppv)` (the pivot
//! value preceding the run). The two differ only when non-duplicate keys
//! strictly between `ppv` and the run value exist; those keys belong to the
//! run's first owner under both rules, and `lower_bound` excludes them from
//! the duplicate split, which can only *improve* balance and removes the
//! `ppv = Pg[-1]` edge case.

use crate::record::Sortable;
use crate::search::{lower_bound, upper_bound, LocalPivotIndex};

/// A maximal run of equal global pivots with length ≥ 2 ("replicated
/// pivots"). `start` is the index of the first pivot of the run; the run
/// covers pivots `start .. start + len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PivotRun<K> {
    /// Index of the first pivot in the run.
    pub start: usize,
    /// Number of equal pivots (`rs` in the paper), always ≥ 2.
    pub len: usize,
    /// The duplicated pivot value.
    pub value: K,
}

/// Find every maximal run of ≥ 2 equal pivots. Single-pass equivalent of
/// calling the paper's `SdssReplicated` for each pivot index.
pub fn replicated_runs<K: Ord + Copy>(pivots: &[K]) -> Vec<PivotRun<K>> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < pivots.len() {
        let mut j = i + 1;
        while j < pivots.len() && pivots[j] == pivots[i] {
            j += 1;
        }
        if j - i >= 2 {
            runs.push(PivotRun {
                start: i,
                len: j - i,
                value: pivots[i],
            });
        }
        i = j;
    }
    runs
}

/// Classic sample-sort cuts: `cuts[i+1] = upper_bound(data, pivots[i])`.
/// Returns `p+1` monotone positions with `cuts[0] = 0`, `cuts[p] = n`.
pub fn classic_cuts<T: Sortable>(data: &[T], pivots: &[T::Key]) -> Vec<usize> {
    let p = pivots.len() + 1;
    let mut cuts = Vec::with_capacity(p + 1);
    cuts.push(0);
    for &pv in pivots {
        cuts.push(upper_bound(data, pv));
    }
    cuts.push(data.len());
    cuts
}

/// Share of a global duplicate stream owned by one source, for one
/// replicated-pivot run (stable partitioning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DupShare {
    /// Total duplicates of the run value across *all* sources.
    pub total: usize,
    /// Duplicates held by sources ordered before this one.
    pub before_me: usize,
}

/// Fast (unstable) skew-aware cuts. `index`, if provided, accelerates the
/// boundary searches with the two-level local-pivot search.
pub fn fast_cuts<T: Sortable>(
    data: &[T],
    pivots: &[T::Key],
    index: Option<&LocalPivotIndex<T::Key>>,
) -> Vec<usize> {
    skew_aware_cuts(data, pivots, index, None)
}

/// Stable skew-aware cuts. `shares` must be parallel to
/// [`replicated_runs`]`(pivots)` and describe this source's position in
/// each run's global duplicate stream.
pub fn stable_cuts<T: Sortable>(
    data: &[T],
    pivots: &[T::Key],
    index: Option<&LocalPivotIndex<T::Key>>,
    shares: &[DupShare],
) -> Vec<usize> {
    skew_aware_cuts(data, pivots, index, Some(shares))
}

fn ub<T: Sortable>(data: &[T], index: Option<&LocalPivotIndex<T::Key>>, key: T::Key) -> usize {
    match index {
        Some(idx) => idx.upper_bound(data, key),
        None => upper_bound(data, key),
    }
}

fn lb<T: Sortable>(data: &[T], index: Option<&LocalPivotIndex<T::Key>>, key: T::Key) -> usize {
    match index {
        Some(idx) => idx.lower_bound(data, key),
        None => lower_bound(data, key),
    }
}

/// Common implementation for fast and stable skew-aware cuts.
fn skew_aware_cuts<T: Sortable>(
    data: &[T],
    pivots: &[T::Key],
    index: Option<&LocalPivotIndex<T::Key>>,
    shares: Option<&[DupShare]>,
) -> Vec<usize> {
    let p = pivots.len() + 1;
    let runs = replicated_runs(pivots);
    if let Some(shares) = shares {
        assert_eq!(shares.len(), runs.len(), "one DupShare per replicated run");
    }
    let mut cuts = vec![0usize; p + 1];
    cuts[p] = data.len();

    let mut run_iter = runs.iter().enumerate().peekable();
    let mut i = 0usize;
    while i < pivots.len() {
        if let Some(&(run_idx, run)) = run_iter.peek() {
            if run.start == i {
                // A run of rs equal pivots: split this source's duplicates
                // of `value` across the rs owning destinations.
                let value = run.value;
                let rs = run.len;
                let d_lo = lb(data, index, value);
                let d_hi = ub(data, index, value);
                let dups = d_hi - d_lo;
                match shares {
                    None => {
                        // Fast: even split of the local duplicate run. The
                        // product is widened — `dups × rs` can exceed usize
                        // for adversarial (huge-duplicate-run) inputs.
                        for k in 0..rs {
                            let split = (dups as u128 * (k as u128 + 1) / rs as u128) as usize;
                            cuts[i + k + 1] = d_lo + split;
                        }
                    }
                    Some(shares) => {
                        // Stable: contiguous groups of the *global* stream.
                        let share = shares[run_idx];
                        assert!(
                            share
                                .before_me
                                .checked_add(dups)
                                .is_some_and(|s| s <= share.total),
                            "DupShare inconsistent with local data: {} before + {dups} here \
                             exceeds total {}",
                            share.before_me,
                            share.total
                        );
                        let sa = share.total.div_ceil(rs).max(1);
                        for k in 0..rs {
                            // Widened: `sa × rs` brackets `total` but the
                            // ceil rounding can push `sa × rs` past usize
                            // when total is near usize::MAX.
                            let group_end = (k as u128 + 1) * sa as u128;
                            let local = group_end
                                .saturating_sub(share.before_me as u128)
                                .min(dups as u128);
                            cuts[i + k + 1] = d_lo + local as usize;
                        }
                        // Last owner takes any rounding remainder.
                        cuts[i + rs] = d_hi;
                    }
                }
                run_iter.next();
                i += rs;
                continue;
            }
        }
        cuts[i + 1] = ub(data, index, pivots[i]);
        i += 1;
    }
    // Hard invariant, not a debug assert: non-monotone cuts would produce
    // a negative send count and corrupt the exchange displacements. The
    // O(p) scan is negligible next to the boundary searches above.
    assert!(
        cuts.windows(2).all(|w| w[0] <= w[1]),
        "partition cuts must be monotone: {cuts:?}"
    );
    cuts
}

/// Convert cut positions to per-destination send counts.
pub fn cuts_to_counts(cuts: &[usize]) -> Vec<usize> {
    cuts.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Count this source's duplicates of each replicated run's value in sorted
/// `data` (input to the stable share exchange).
pub fn local_dup_counts<T: Sortable>(data: &[T], runs: &[PivotRun<T::Key>]) -> Vec<usize> {
    runs.iter()
        .map(|r| upper_bound(data, r.value) - lower_bound(data, r.value))
        .collect()
}

/// Build [`DupShare`]s from the per-source duplicate counts of every run
/// (`counts_by_source[src][run]`), for source `me`.
pub fn shares_for_source(counts_by_source: &[Vec<usize>], me: usize) -> Vec<DupShare> {
    if counts_by_source.is_empty() {
        return Vec::new();
    }
    let num_runs = counts_by_source[0].len();
    (0..num_runs)
        .map(|r| {
            let total = counts_by_source.iter().map(|c| c[r]).sum();
            let before_me = counts_by_source[..me].iter().map(|c| c[r]).sum();
            DupShare { total, before_me }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_runs_detects_all_runs() {
        assert_eq!(replicated_runs::<u32>(&[]), vec![]);
        assert_eq!(replicated_runs(&[1u32, 2, 3]), vec![]);
        assert_eq!(
            replicated_runs(&[1u32, 1, 2, 3, 3, 3, 4]),
            vec![
                PivotRun {
                    start: 0,
                    len: 2,
                    value: 1
                },
                PivotRun {
                    start: 3,
                    len: 3,
                    value: 3
                },
            ]
        );
        assert_eq!(
            replicated_runs(&[7u32, 7, 7, 7]),
            vec![PivotRun {
                start: 0,
                len: 4,
                value: 7
            }]
        );
    }

    #[test]
    fn classic_cuts_dump_all_duplicates_on_one_rank() {
        // data: 10 copies of 5; pivots [5, 5, 5] (4 destinations).
        let data = vec![5u32; 10];
        let cuts = classic_cuts(&data, &[5, 5, 5]);
        let counts = cuts_to_counts(&cuts);
        // All ten records land on destination 0 — the imbalance the paper
        // describes.
        assert_eq!(counts, vec![10, 0, 0, 0]);
    }

    #[test]
    fn fast_cuts_split_duplicates_evenly() {
        let data = vec![5u32; 12];
        let cuts = fast_cuts(&data, &[5, 5, 5], None);
        let counts = cuts_to_counts(&cuts);
        // rs = 3 owners (destinations 0, 1, 2) split 12 duplicates evenly;
        // destination 3 gets only values > 5 (none).
        assert_eq!(counts, vec![4, 4, 4, 0]);
    }

    #[test]
    fn fast_cuts_mixed_data() {
        // data around the duplicated value
        let data = [1u32, 2, 5, 5, 5, 5, 5, 5, 8, 9];
        let cuts = fast_cuts(&data, &[5, 5, 8], None);
        let counts = cuts_to_counts(&cuts);
        // dest0: {1,2} + 3 dups; dest1: 3 dups; dest2: {8}; dest3: {9}
        assert_eq!(counts, vec![5, 3, 1, 1]);
        assert_eq!(counts.iter().sum::<usize>(), data.len());
    }

    #[test]
    fn fast_cuts_no_duplicates_match_classic() {
        let data: Vec<u32> = (0..100).collect();
        let pivots = [24u32, 49, 74];
        assert_eq!(
            fast_cuts(&data, &pivots, None),
            classic_cuts(&data, &pivots)
        );
    }

    #[test]
    fn fast_cuts_with_index_match_without() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<u32> = (0..500).map(|_| rng.gen_range(0..20)).collect();
        data.sort_unstable();
        let pivots = [3u32, 7, 7, 7, 12, 15, 15];
        let idx = LocalPivotIndex::build(&data, 7);
        assert_eq!(
            fast_cuts(&data, &pivots, None),
            fast_cuts(&data, &pivots, Some(&idx))
        );
    }

    #[test]
    fn stable_cuts_form_contiguous_groups() {
        // Two sources each hold 6 duplicates of 5; run of rs=2 pivots.
        // Global stream: src0's 6 then src1's 6; sa = ceil(12/2) = 6.
        // Group 0 = src0's entire run; group 1 = src1's entire run.
        let data = vec![5u32; 6];
        let pivots = [5u32, 5, 9];
        let shares0 = [DupShare {
            total: 12,
            before_me: 0,
        }];
        let shares1 = [DupShare {
            total: 12,
            before_me: 6,
        }];
        let c0 = cuts_to_counts(&stable_cuts(&data, &pivots, None, &shares0));
        let c1 = cuts_to_counts(&stable_cuts(&data, &pivots, None, &shares1));
        assert_eq!(c0, vec![6, 0, 0, 0]);
        assert_eq!(c1, vec![0, 6, 0, 0]);
    }

    #[test]
    fn stable_cuts_split_large_source_across_groups() {
        // One source holds all 12 duplicates; rs=2 groups of sa=6 → this
        // source must split 6/6 (paper lines 22–25, "split replicated on a
        // node").
        let data = vec![5u32; 12];
        let pivots = [5u32, 5];
        let shares = [DupShare {
            total: 12,
            before_me: 0,
        }];
        let c = cuts_to_counts(&stable_cuts(&data, &pivots, None, &shares));
        assert_eq!(c, vec![6, 6, 0]);
    }

    #[test]
    fn stable_cuts_offset_source() {
        // Source sits in the middle of the global stream.
        // total=20, rs=2, sa=10. My 8 dups occupy global [6,14):
        // group0 gets global [0,10) → my [6,10) = 4; group1 my [10,14) = 4.
        let data = vec![5u32; 8];
        let pivots = [5u32, 5];
        let shares = [DupShare {
            total: 20,
            before_me: 6,
        }];
        let c = cuts_to_counts(&stable_cuts(&data, &pivots, None, &shares));
        assert_eq!(c, vec![4, 4, 0]);
    }

    #[test]
    fn stable_cuts_zero_duplicates_here() {
        let data = [1u32, 2, 3];
        let pivots = [5u32, 5];
        let shares = [DupShare {
            total: 10,
            before_me: 0,
        }];
        let c = cuts_to_counts(&stable_cuts(&data, &pivots, None, &shares));
        assert_eq!(c.iter().sum::<usize>(), 3);
        assert_eq!(c, vec![3, 0, 0]);
    }

    #[test]
    fn cuts_cover_data_exactly() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let n = rng.gen_range(0..400);
            let mut data: Vec<u32> = (0..n).map(|_| rng.gen_range(0..10)).collect();
            data.sort_unstable();
            let np = rng.gen_range(1..12);
            let mut pivots: Vec<u32> = (0..np).map(|_| rng.gen_range(0..10)).collect();
            pivots.sort_unstable();
            let cuts = fast_cuts(&data, &pivots, None);
            assert_eq!(cuts[0], 0);
            assert_eq!(*cuts.last().unwrap(), data.len());
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "monotone: {cuts:?}");
            assert_eq!(cuts.len(), pivots.len() + 2);
        }
    }

    #[test]
    fn empty_rank_inputs_produce_all_zero_counts() {
        // A rank can end up with no data (e.g. a non-leader after node
        // merging, or a degenerate workload). Every strategy must hand
        // back p zero counts, not panic.
        let data: [u32; 0] = [];
        let pivots = [5u32, 5, 9];
        assert_eq!(cuts_to_counts(&classic_cuts(&data, &pivots)), vec![0; 4]);
        assert_eq!(cuts_to_counts(&fast_cuts(&data, &pivots, None)), vec![0; 4]);
        let shares = [DupShare {
            total: 10,
            before_me: 0,
        }];
        assert_eq!(
            cuts_to_counts(&stable_cuts(&data, &pivots, None, &shares)),
            vec![0; 4]
        );
    }

    #[test]
    fn no_pivots_single_destination() {
        // p = 1: no pivots at all; everything stays local.
        let data = [3u32, 3, 8];
        assert_eq!(cuts_to_counts(&fast_cuts(&data, &[], None)), vec![3]);
        assert_eq!(cuts_to_counts(&stable_cuts(&data, &[], None, &[])), vec![3]);
    }

    #[test]
    fn huge_duplicate_shares_do_not_overflow() {
        // total near usize::MAX: group_end arithmetic must not wrap. This
        // models a (contrived) global stream of ~usize::MAX duplicates of
        // which this source holds 4.
        let data = vec![5u32; 4];
        let pivots = [5u32, 5, 5];
        let total = usize::MAX - 2;
        let shares = [DupShare {
            total,
            before_me: total - 4,
        }];
        let cuts = stable_cuts(&data, &pivots, None, &shares);
        let counts = cuts_to_counts(&cuts);
        assert_eq!(counts.iter().sum::<usize>(), 4);
        // this source sits at the very end of the stream: last group owns it
        assert_eq!(counts[2], 4);
    }

    #[test]
    #[should_panic(expected = "DupShare inconsistent")]
    fn inconsistent_share_is_rejected() {
        let data = vec![5u32; 8];
        let pivots = [5u32, 5];
        let shares = [DupShare {
            total: 4, // fewer than this source alone holds
            before_me: 0,
        }];
        let _ = stable_cuts(&data, &pivots, None, &shares);
    }

    #[test]
    fn shares_for_source_prefix_sums() {
        let counts = vec![vec![3, 0], vec![2, 5], vec![1, 1]];
        let s1 = shares_for_source(&counts, 1);
        assert_eq!(
            s1,
            vec![
                DupShare {
                    total: 6,
                    before_me: 3
                },
                DupShare {
                    total: 6,
                    before_me: 0
                }
            ]
        );
        let s0 = shares_for_source(&counts, 0);
        assert_eq!(
            s0[0],
            DupShare {
                total: 6,
                before_me: 0
            }
        );
        assert!(shares_for_source(&[], 0).is_empty());
    }

    #[test]
    fn local_dup_counts_counts_values() {
        let data = [1u32, 3, 3, 3, 7, 7];
        let runs = [
            PivotRun {
                start: 0,
                len: 2,
                value: 3u32,
            },
            PivotRun {
                start: 3,
                len: 2,
                value: 4,
            },
            PivotRun {
                start: 6,
                len: 2,
                value: 7,
            },
        ];
        assert_eq!(local_dup_counts(&data, &runs), vec![3, 0, 2]);
    }
}
