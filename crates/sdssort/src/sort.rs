//! The SDS-Sort driver (paper Fig. 1).
//!
//! Orchestrates the full pipeline on a communicator:
//!
//! 1. initial local sort (`SdssLocalSort`);
//! 2. adaptive node-level merging when the average message is below `τm`
//!    (`SdssRefineComm` + `SdssNodeMerge`), after which the sort continues
//!    among node leaders only;
//! 3. regular sampling of local pivots and distributed global pivot
//!    selection (`SdssSelectPivots`);
//! 4. skew-aware partitioning (`SdssPartition`), fast or stable;
//! 5. collective memory check for the receive buffer (the step where an
//!    imbalanced sorter dies with OOM);
//! 6. all-to-all exchange — synchronous, or asynchronous overlapped with
//!    incremental merging when `p < τo` and the sort is unstable;
//! 7. adaptive final local ordering: k-way merge below `τs`, adaptive
//!    re-sort above.
//!
//! Every rank returns its slice of the globally sorted sequence (ascending
//! with rank) plus a [`SortStats`] phase breakdown.

use crate::config::{ComputeCharge, ComputeModel, LocalKernel, SdsConfig};
use crate::local_sort::{local_sort_with, LocalSortReport};
use crate::merge::{kway_merge_offsets, merge_two};
use crate::node_merge::node_merge;
use crate::partition::{
    cuts_to_counts, fast_cuts, local_dup_counts, replicated_runs, shares_for_source, stable_cuts,
};
use crate::pivots::{select_global_pivots, PivotMethod};
use crate::record::Sortable;
use crate::search::LocalPivotIndex;
use crate::stats::SortStats;
use comm::{AsyncExchange, Communicator, OomError};

/// Errors from a distributed sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortError {
    /// This rank's simulated memory budget was exceeded while allocating
    /// the receive buffer.
    Oom(OomError),
    /// Another rank hit its memory budget; the collective sort was
    /// abandoned everywhere (the paper's whole-job crash).
    PeerOom,
    /// A disk error on the resilient spill path.
    Io(String),
}

impl std::fmt::Display for SortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SortError::Oom(e) => write!(f, "{e}"),
            SortError::PeerOom => write!(f, "sort aborted: a peer rank ran out of memory"),
            SortError::Io(e) => write!(f, "sort spill i/o failed: {e}"),
        }
    }
}

impl std::error::Error for SortError {}

/// Result of one rank's participation in a distributed sort.
#[derive(Debug, Clone)]
pub struct SortOutput<T> {
    /// This rank's slice of the global sorted order (may be empty, e.g. on
    /// non-leader ranks after node merging).
    pub data: Vec<T>,
    /// Phase breakdown and load metrics.
    pub stats: SortStats,
}

fn model_of(cfg: &SdsConfig) -> Option<ComputeModel> {
    match cfg.charge {
        ComputeCharge::Measured => None,
        ComputeCharge::Modeled(m) => Some(m),
    }
}

/// Run `f`, charging compute either by measurement or by the model cost
/// returned from `cost`.
pub(crate) fn charged<R, C: Communicator>(
    comm: &C,
    cfg: &SdsConfig,
    cost: impl FnOnce(&ComputeModel) -> f64,
    f: impl FnOnce() -> R,
) -> R {
    match model_of(cfg) {
        None => comm.compute(f),
        Some(m) => {
            let r = f();
            comm.charge_compute(cost(&m));
            r
        }
    }
}

/// Policy object for steps 5–7 of the pipeline: the collective memory
/// check, the all-to-all exchange, and the final local ordering. The
/// default [`InMemoryExchange`] is the paper's behaviour (whole-job OOM
/// crash when any receive buffer does not fit); the resilient backend in
/// [`crate::resilience`] degrades to disk spilling instead.
pub(crate) trait ExchangeBackend<T: Sortable, C: Communicator> {
    /// Exchange `data` according to `scounts` and return this rank's
    /// locally ordered slice. Called with the "exchange" phase/span open;
    /// implementations must close `sp_ex` and account `stats.exchange_s` /
    /// `stats.local_order_s` / `stats.recv_count` themselves.
    #[allow(clippy::too_many_arguments)]
    fn exchange(
        &self,
        comm: &C,
        data: Vec<T>,
        scounts: &[usize],
        cfg: &SdsConfig,
        stats: &mut SortStats,
        t1: f64,
        sp_ex: telemetry::SpanId,
    ) -> Result<Vec<T>, SortError>;
}

/// Sort `data` (one rank's share) across all ranks of `comm` by key.
///
/// On success every rank holds a sorted slice, slices ascend with rank,
/// and the multiset union equals the input union. With `cfg.stable`, equal
/// keys appear in their global input order (rank, then local position).
pub fn sds_sort<T: Sortable, C: Communicator>(
    comm: &C,
    data: Vec<T>,
    cfg: &SdsConfig,
) -> Result<SortOutput<T>, SortError> {
    sds_sort_impl(comm, data, cfg, &InMemoryExchange)
}

/// Record which local-sort kernel ran (and its transient scratch) in the
/// telemetry counters.
fn count_local_sort<C: Communicator>(comm: &C, report: LocalSortReport) {
    let name = match report.kernel {
        LocalKernel::Radix => "local_sort.kernel.radix",
        _ => "local_sort.kernel.comparison",
    };
    comm.count(name, 1);
    if report.scratch_bytes > 0 {
        comm.count("local_sort.scratch_bytes", report.scratch_bytes as u64);
    }
}

/// Full pipeline, generic over the exchange backend.
pub(crate) fn sds_sort_impl<T: Sortable, C: Communicator, B: ExchangeBackend<T, C>>(
    comm: &C,
    mut data: Vec<T>,
    cfg: &SdsConfig,
    backend: &B,
) -> Result<SortOutput<T>, SortError> {
    let p = comm.size();
    let mut stats = SortStats {
        input_count: data.len(),
        ..SortStats::default()
    };
    let t0 = comm.now();

    // Step 1: initial local sort (pivot-selection phase per the paper's
    // "initial ordering" footnote).
    comm.trace_phase("pivot");
    let sp_pivot = comm.span_begin("pivot-select");
    let n0 = data.len();
    let lsr = charged(
        comm,
        cfg,
        |m| m.sort_cost_with(n0, cfg.stable),
        || local_sort_with(&mut data, cfg.local_threads, cfg.stable, cfg.local_kernel),
    );
    count_local_sort(comm, lsr);

    if p == 1 {
        stats.pivot_s = comm.now() - t0;
        stats.recv_count = data.len();
        comm.span_end(sp_pivot);
        return Ok(SortOutput { data, stats });
    }

    // Step 2: adaptive node-level merging. The decision must be uniform
    // across ranks, so it uses the global average local size.
    let n_sum = comm.allreduce(data.len() as u64, |a, b| a + b);
    let n_avg = (n_sum / p as u64) as usize;
    let c = comm.cores_per_node();
    if c > 1 && cfg.should_node_merge::<T>(n_avg, p) {
        stats.node_merged = true;
        if comm.recorder().enabled() && comm.rank() == 0 {
            comm.event(
                "decision.node-merge",
                &format!("avg {n_avg} records/rank over {p} ranks"),
            );
        }
        let sp_nm = comm.span_begin("node-merge");
        let (cg, cl) = comm.refine_comm();
        let node_n = cl.allreduce(data.len(), |a, b| a + b);
        let k = cl.size();
        let merged = charged(
            comm,
            cfg,
            |m| m.kway_merge_cost(node_n, k),
            || node_merge(&cl, &data),
        );
        drop(data);
        comm.span_end(sp_nm);
        return match (cg, merged) {
            (Some(cg), Some(merged)) => inner_sort(&cg, merged, cfg, stats, t0, sp_pivot, backend),
            (None, None) => {
                // Non-leader: its data now lives on the node leader.
                stats.pivot_s = comm.now() - t0;
                comm.span_end(sp_pivot);
                Ok(SortOutput {
                    data: Vec::new(),
                    stats,
                })
            }
            _ => unreachable!("leader status must agree between cg and node_merge"),
        };
    }

    inner_sort(comm, data, cfg, stats, t0, sp_pivot, backend)
}

/// Steps 3–7 on the (possibly refined) communicator. `data` is sorted.
fn inner_sort<T: Sortable, C: Communicator, B: ExchangeBackend<T, C>>(
    comm: &C,
    data: Vec<T>,
    cfg: &SdsConfig,
    mut stats: SortStats,
    t0: f64,
    sp_pivot: telemetry::SpanId,
    backend: &B,
) -> Result<SortOutput<T>, SortError> {
    let p = comm.size();
    if p == 1 {
        stats.pivot_s = comm.now() - t0;
        stats.recv_count = data.len();
        comm.span_end(sp_pivot);
        return Ok(SortOutput { data, stats });
    }

    // Step 3: sampling + global pivot selection.
    let index = LocalPivotIndex::build(&data, cfg.oversample.max(1) * (p - 1));
    let mut pivots = match cfg.pivot_source {
        crate::config::PivotSource::Sampling => {
            let local_pivots = index.keys().to_vec();
            select_global_pivots(comm, &local_pivots, PivotMethod::default())
        }
        crate::config::PivotSource::Histogram => crate::histogram::histogram_splitters(
            comm,
            &data,
            p,
            &crate::histogram::HistogramConfig::default(),
            0x5D55_0000 ^ p as u64,
        ),
    };
    // Degenerate tiny inputs can yield fewer than p-1 pivots; pad by
    // repeating the last pivot — the replicated-run machinery then spreads
    // the padded range evenly.
    if pivots.len() < p - 1 {
        if let Some(&last) = pivots.last() {
            pivots.resize(p - 1, last);
        }
    }

    // Step 4: skew-aware partition.
    let n = data.len();
    let cuts = if pivots.is_empty() {
        // No data anywhere beyond possibly ours: everything to rank 0.
        let mut cuts = vec![n; p + 1];
        cuts[0] = 0;
        cuts
    } else if cfg.stable {
        let runs = replicated_runs(&pivots);
        let my_counts = local_dup_counts(&data, &runs);
        let all_counts = comm.allgather(&my_counts);
        let by_source: Vec<Vec<usize>> = all_counts
            .chunks(runs.len().max(1))
            .map(<[usize]>::to_vec)
            .collect();
        let shares = if runs.is_empty() {
            Vec::new()
        } else {
            shares_for_source(&by_source, comm.rank())
        };
        charged(
            comm,
            cfg,
            |m| m.scan_cost(p * 32),
            || stable_cuts(&data, &pivots, Some(&index), &shares),
        )
    } else {
        match cfg.partition {
            crate::config::PartitionStrategy::SkewAware => charged(
                comm,
                cfg,
                |m| m.scan_cost(p * 32),
                || fast_cuts(&data, &pivots, Some(&index)),
            ),
            // Ablation: duplicate-blind upper_bound partitioning.
            crate::config::PartitionStrategy::Classic => charged(
                comm,
                cfg,
                |m| m.scan_cost(p * 32),
                || crate::partition::classic_cuts(&data, &pivots),
            ),
        }
    };
    let scounts = cuts_to_counts(&cuts);
    debug_assert_eq!(scounts.len(), p);
    stats.pivot_s = comm.now() - t0;
    comm.span_end(sp_pivot);

    // Steps 5–7 are the backend's: collective memory check, exchange,
    // final local ordering.
    comm.trace_phase("exchange");
    let sp_ex = comm.span_begin("exchange");
    let t1 = comm.now();
    let out = backend.exchange(comm, data, &scounts, cfg, &mut stats, t1, sp_ex)?;
    Ok(SortOutput { data: out, stats })
}

/// The paper's exchange behaviour: allocate the whole receive buffer up
/// front; if any rank cannot, the collective sort fails everywhere.
pub(crate) struct InMemoryExchange;

impl<T: Sortable, C: Communicator> ExchangeBackend<T, C> for InMemoryExchange {
    fn exchange(
        &self,
        comm: &C,
        data: Vec<T>,
        scounts: &[usize],
        cfg: &SdsConfig,
        stats: &mut SortStats,
        t1: f64,
        sp_ex: telemetry::SpanId,
    ) -> Result<Vec<T>, SortError> {
        let p = comm.size();
        // Step 5: exchange counts and collectively check the receive buffer
        // against the simulated memory budget.
        let rcounts = comm.alltoall(scounts);
        let m: usize = rcounts.iter().sum();
        let bytes = m * std::mem::size_of::<T>();
        let my_alloc = comm.try_alloc(bytes);
        let any_oom = comm.allreduce(my_alloc.is_err() as u8, |a, b| a.max(b)) > 0;
        if any_oom {
            if my_alloc.is_ok() {
                comm.free(bytes);
            }
            // stats are discarded on the error path: the paper treats this
            // as a whole-job crash.
            comm.span_end(sp_ex);
            return Err(match my_alloc {
                Err(e) => SortError::Oom(e),
                Ok(()) => SortError::PeerOom,
            });
        }
        stats.recv_count = m;

        // Steps 6–7: exchange + final local ordering.
        let out = if !cfg.should_overlap(p) {
            // Synchronous exchange...
            let buf = comm.alltoallv_given_counts(&data, scounts, &rcounts);
            drop(data);
            stats.exchange_s = comm.now() - t1;
            comm.span_end(sp_ex);
            // ...then ordering: merge below τs, adaptive re-sort above.
            comm.trace_phase("local-order");
            let sp_lo = comm.span_begin("local-order");
            let t2 = comm.now();
            let mut disp = Vec::with_capacity(p + 1);
            disp.push(0usize);
            for &rc in &rcounts {
                disp.push(disp.last().copied().expect("non-empty") + rc);
            }
            let sorted = if cfg.should_merge_local(p) {
                charged(
                    comm,
                    cfg,
                    |mo| mo.kway_merge_cost(m, p),
                    || kway_merge_offsets(&buf, &disp),
                )
            } else {
                let mut buf = buf;
                let lsr = charged(
                    comm,
                    cfg,
                    |mo| {
                        let base = mo.adaptive_sort_cost(m, p);
                        if cfg.stable {
                            base * mo.stable_factor
                        } else {
                            base
                        }
                    },
                    || local_sort_with(&mut buf, cfg.local_threads, cfg.stable, cfg.local_kernel),
                );
                count_local_sort(comm, lsr);
                buf
            };
            stats.local_order_s = comm.now() - t2;
            comm.span_end(sp_lo);
            sorted
        } else {
            // Asynchronous exchange overlapped with incremental merging
            // (SdssAlltoallvAsync + SdssFinished + SdssMergeTwo).
            stats.overlapped = true;
            if comm.recorder().enabled() && comm.rank() == 0 {
                comm.event(
                    "decision.overlap",
                    &format!("p {p} below tau_o {}", cfg.tau_o),
                );
            }
            let mut pending = comm.alltoallv_async_given_counts(&data, scounts, rcounts.clone());
            drop(data);
            let mut merge_s = 0.0;
            // Binomial-counter progressive merging: every incoming chunk is a
            // level-0 run; two runs merge only when they are at the same
            // level. Total merged volume is then exactly the balanced
            // cascade's (m·⌈log2 p⌉), independent of chunk-size variance and
            // arrival order — overlapping adds no merge work over the
            // synchronous path, it only moves it earlier.
            let mut runs: Vec<(u32, Vec<T>)> = Vec::new();
            while let Some((_src, chunk)) = pending.wait_any(comm) {
                runs.push((0, chunk));
                while runs.len() >= 2 && runs[runs.len() - 1].0 == runs[runs.len() - 2].0 {
                    let (lvl, hi) = runs.pop().expect("len>=2");
                    let (_, lo) = runs.pop().expect("len>=2");
                    let tm = comm.now();
                    let merged = charged(
                        comm,
                        cfg,
                        |mo| mo.kway_merge_cost(hi.len() + lo.len(), 2),
                        || merge_two(&lo, &hi),
                    );
                    merge_s += comm.now() - tm;
                    runs.push((lvl + 1, merged));
                }
            }
            // Overlap makes exchange and merge inseparable in wall order; the
            // "exchange" span covers the overlapped region, "local-order" the
            // final cascade. stats still split the virtual time exactly.
            comm.span_end(sp_ex);
            let sp_lo = comm.span_begin("local-order");
            // Balanced cascade over whatever the stack still holds (free when
            // the counter already collapsed everything into one run).
            let acc = if runs.len() == 1 {
                runs.pop().expect("len==1").1
            } else {
                let tm = comm.now();
                let refs: Vec<&[T]> = runs.iter().map(|(_, r)| r.as_slice()).collect();
                let left: usize = refs.iter().map(|r| r.len()).sum();
                let k_left = refs.len();
                let acc = charged(
                    comm,
                    cfg,
                    |mo| mo.kway_merge_cost(left, k_left),
                    || crate::merge::kway_merge(&refs),
                );
                merge_s += comm.now() - tm;
                acc
            };
            let elapsed = comm.now() - t1;
            stats.local_order_s = merge_s;
            stats.exchange_s = (elapsed - merge_s).max(0.0);
            comm.span_end(sp_lo);
            acc
        };
        comm.free(bytes);
        debug_assert_eq!(out.len(), m);
        Ok(out)
    }
}
