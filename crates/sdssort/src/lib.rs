//! # sdssort — SDS-Sort: Scalable Dynamic Skew-aware Parallel Sorting
//!
//! A from-scratch Rust reproduction of *SDS-Sort* (Dong, Byna, Wu —
//! HPDC'16): a sample-sort for distributed memory that stays load-balanced
//! on heavily skewed (duplicate-ridden) data **without secondary sort
//! keys**, guarantees an `O(4N/p)` per-rank workload bound (Theorem 1),
//! offers the first sampling-based *stable* distributed sort, and adapts
//! at runtime to the machine: node-level merging (`τm`), exchange/compute
//! overlap (`τo`), and merge-vs-sort final ordering (`τs`).
//!
//! The algorithms are generic over the [`comm::Communicator`] transport
//! trait, with two backends: `mpisim`, a deterministic virtual-time
//! message-passing runtime standing in for MPI on a Cray XC30 (see that
//! crate's docs for the substitution rationale), and `shmem`, a real
//! OS-thread backend that measures wall-clock time.
//!
//! ## Quick example
//!
//! ```
//! use mpisim::{NetModel, World};
//! use sdssort::{sds_sort, SdsConfig};
//!
//! let report = World::new(4).net(NetModel::zero()).run(|comm| {
//!     // Each rank contributes a scrambled run; keys collide heavily.
//!     let data: Vec<u64> = (0..100).map(|i| (i * 7 + comm.rank() as u64) % 13).collect();
//!     sds_sort(comm, data, &SdsConfig::default()).expect("no memory budget set")
//! });
//! // Concatenated rank outputs are globally sorted.
//! let all: Vec<u64> = report.results.iter().flat_map(|o| o.data.clone()).collect();
//! assert!(all.windows(2).all(|w| w[0] <= w[1]));
//! assert_eq!(all.len(), 400);
//! ```

#![warn(missing_docs)]

pub mod autotune;
pub mod config;
pub mod external;
pub mod histogram;
pub mod local_sort;
pub mod merge;
pub mod node_merge;
pub mod partition;
pub mod pivots;
pub mod radix;
pub mod record;
pub mod resilience;
pub mod sampling;
pub mod search;
pub mod selection;
pub mod sort;
pub mod stats;
pub mod validate;

pub use autotune::{autotune, AutotuneReport};
pub use config::{
    ComputeCharge, ComputeModel, LocalKernel, PartitionStrategy, PivotSource, SdsConfig,
};
pub use local_sort::{local_sort, local_sort_with, parallel_merge, LocalSortReport, MergeStrategy};
pub use radix::{
    active_digits, radix_applicable, radix_profitable, radix_sort, RADIX_MAX_AUTO_DIGITS,
    RADIX_MIN_N,
};
pub use record::{OrderedF32, OrderedF64, RadixKey, Record, Sortable, Tagged};
pub use resilience::{sds_sort_resilient, ResilienceConfig};
pub use selection::{kth_smallest_key, top_k};
pub use sort::{sds_sort, SortError, SortOutput};
pub use stats::{rdfa, SortStats};
pub use validate::{is_globally_sorted, is_permutation_of, load_stats};
