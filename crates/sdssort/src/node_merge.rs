//! Node-level merging before the exchange (`SdssNodeMerge`, paper §2.3).
//!
//! When the average all-to-all message (`n/p`) is small, SDS-Sort merges
//! the sorted data of all ranks on a node onto the node leader first: the
//! subsequent exchange then runs between node leaders only, with `c²`-fold
//! fewer, `c`-fold larger messages per node pair — amortizing per-message
//! overhead on low-throughput networks. When messages are large, merging is
//! skipped so every core feeds the network (saturating high-throughput
//! interconnects). The decision threshold is `τm`
//! ([`crate::config::SdsConfig::tau_m_bytes`]); Fig. 5a locates the
//! crossover.

use crate::merge::kway_merge;
use crate::record::Sortable;
use comm::Communicator;

/// Merge each node's sorted per-rank data onto the node's leader using the
/// node-local communicator `cl` (from [`Communicator::refine_comm`]).
///
/// Returns `Some(merged)` on the leader (rank 0 of `cl`), `None` elsewhere.
/// Gathering in `cl` rank order and merging with run-order-stable k-way
/// merge preserves global stability.
pub fn node_merge<T: Sortable, C: Communicator>(cl: &C, data: &[T]) -> Option<Vec<T>> {
    debug_assert!(
        crate::merge::is_sorted_by_key(data),
        "node_merge expects sorted input"
    );
    match cl.gatherv(0, data) {
        Some(parts) => {
            let runs: Vec<&[T]> = parts.iter().map(Vec::as_slice).collect();
            Some(kway_merge(&runs))
        }
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use mpisim::{NetModel, World};

    #[test]
    fn leaders_receive_merged_node_data() {
        let report = World::new(8)
            .cores_per_node(4)
            .net(NetModel::zero())
            .run(|comm| {
                // rank r holds [r*10, r*10 + 5) sorted
                let data: Vec<u64> = (0..5).map(|i| (comm.rank() * 10 + i) as u64).collect();
                let (_cg, cl) = comm.refine_comm();
                node_merge(&cl, &data)
            });
        // node 0 leader = rank 0 gets ranks 0..4's data merged
        let node0: Vec<u64> = report.results[0].clone().expect("leader");
        let mut expect: Vec<u64> = (0..4)
            .flat_map(|r| (0..5).map(move |i| r * 10 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(node0, expect);
        // non-leaders get nothing
        for r in [1, 2, 3, 5, 6, 7] {
            assert!(report.results[r].is_none());
        }
        let node1 = report.results[4].clone().expect("leader");
        assert_eq!(node1.len(), 20);
        assert!(node1.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn node_merge_is_stable_in_rank_order() {
        let report = World::new(4)
            .cores_per_node(4)
            .net(NetModel::zero())
            .run(|comm| {
                // every rank holds two records with the same key 9
                let data = vec![
                    Record::new(9u32, (comm.rank() * 2) as u64),
                    Record::new(9u32, (comm.rank() * 2 + 1) as u64),
                ];
                let (_cg, cl) = comm.refine_comm();
                node_merge(&cl, &data)
            });
        let merged = report.results[0].clone().expect("leader");
        let tags: Vec<u64> = merged.iter().map(|r| r.payload).collect();
        assert_eq!(
            tags,
            (0..8).collect::<Vec<u64>>(),
            "duplicates must stay in rank order"
        );
    }

    #[test]
    fn single_rank_node() {
        let report = World::new(2)
            .cores_per_node(1)
            .net(NetModel::zero())
            .run(|comm| {
                let data = vec![comm.rank() as u32];
                let (_cg, cl) = comm.refine_comm();
                node_merge(&cl, &data)
            });
        assert_eq!(report.results[0], Some(vec![0]));
        assert_eq!(report.results[1], Some(vec![1]));
    }
}
