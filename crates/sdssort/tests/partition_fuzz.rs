//! Fuzz the skew-aware partition arithmetic with adversarial workloads and
//! check the three exchange invariants on every strategy:
//!
//! 1. counts sum to n (the cuts cover the data exactly);
//! 2. displacements are monotone (no negative send count);
//! 3. multi-source consistency: summed over sources, the per-destination
//!    counts of a replicated run's duplicates form the contiguous groups
//!    the stable rule promises (each group at most `sa = ceil(total/rs)`).

use proptest::prelude::*;
use sdssort::partition::{
    classic_cuts, cuts_to_counts, fast_cuts, local_dup_counts, replicated_runs, shares_for_source,
    stable_cuts,
};

fn check_cuts(cuts: &[usize], n: usize, p: usize, label: &str) {
    assert_eq!(cuts.len(), p + 1, "{label}: one cut per destination + 1");
    assert_eq!(cuts[0], 0, "{label}");
    assert_eq!(cuts[p], n, "{label}: cuts must cover the data");
    assert!(
        cuts.windows(2).all(|w| w[0] <= w[1]),
        "{label}: monotone displacements: {cuts:?}"
    );
    assert_eq!(
        cuts_to_counts(cuts).iter().sum::<usize>(),
        n,
        "{label}: counts sum to n"
    );
}

/// Sorted adversarial local data for one source.
fn source_data(kind: u8, n: usize, seed: u64, rank: usize) -> Vec<u64> {
    let mut data = match kind % 4 {
        0 => workloads::adversarial::all_equal(n, 7),
        1 => workloads::adversarial::heavy_hitters(n, 4, 70.0, seed, rank),
        2 => workloads::adversarial::pivot_aligned(n, 5, 50.0, seed, rank),
        _ => workloads::adversarial::one_rank_duplicates(n, seed, rank),
    };
    data.sort_unstable();
    data
}

/// Pivots drawn from the data's own value range so duplicates happen often.
fn pivots_from(data: &[u64], np: usize, seed: u64) -> Vec<u64> {
    let mut pivots: Vec<u64> = (0..np)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64);
            if data.is_empty() {
                h % 16
            } else {
                data[(h % data.len() as u64) as usize]
            }
        })
        .collect();
    pivots.sort_unstable();
    pivots
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn single_source_invariants(
        kind in any::<u8>(),
        n in 0usize..500,
        np in 1usize..12,
        seed in any::<u64>(),
    ) {
        let data = source_data(kind, n, seed, 0);
        let pivots = pivots_from(&data, np, seed);
        let p = pivots.len() + 1;

        check_cuts(&classic_cuts(&data, &pivots), n, p, "classic");
        check_cuts(&fast_cuts(&data, &pivots, None), n, p, "fast");

        // Stable with this source as the entire stream.
        let runs = replicated_runs(&pivots);
        let counts = vec![local_dup_counts(&data, &runs)];
        let shares = shares_for_source(&counts, 0);
        check_cuts(&stable_cuts(&data, &pivots, None, &shares), n, p, "stable");
    }

    #[test]
    fn multi_source_stable_groups_are_contiguous(
        kind in any::<u8>(),
        sources in 2usize..5,
        n in 0usize..300,
        np in 1usize..10,
        seed in any::<u64>(),
    ) {
        let all_data: Vec<Vec<u64>> =
            (0..sources).map(|r| source_data(kind, n, seed, r)).collect();
        let pivots = pivots_from(&all_data[0], np, seed);
        let p = pivots.len() + 1;
        let runs = replicated_runs(&pivots);
        let counts_by_source: Vec<Vec<usize>> = all_data
            .iter()
            .map(|d| local_dup_counts(d, &runs))
            .collect();

        // Per-destination totals across all sources.
        let mut dest_totals = vec![0usize; p];
        for (me, data) in all_data.iter().enumerate() {
            let shares = shares_for_source(&counts_by_source, me);
            let cuts = stable_cuts(data, &pivots, None, &shares);
            check_cuts(&cuts, data.len(), p, "stable/multi");
            for (dst, c) in cuts_to_counts(&cuts).into_iter().enumerate() {
                dest_totals[dst] += c;
            }
        }
        prop_assert_eq!(
            dest_totals.iter().sum::<usize>(),
            all_data.iter().map(Vec::len).sum::<usize>()
        );

        // Invariant 3: within each replicated run, the owning destinations
        // received contiguous groups of the global duplicate stream — at
        // most sa each, all-but-last exactly sa when the stream is full.
        for (ri, run) in runs.iter().enumerate() {
            let total: usize = counts_by_source.iter().map(|c| c[ri]).sum();
            let rs = run.len;
            let sa = total.div_ceil(rs).max(1);
            // Duplicates of the run value delivered to each owner. Owners
            // are destinations run.start .. run.start + rs; counts landing
            // there from these sources are exactly the duplicate split
            // (values strictly between pivots around the run would belong
            // to the first owner, but duplicates dominate by design).
            let mut got = vec![0usize; rs];
            for (me, data) in all_data.iter().enumerate() {
                let shares = shares_for_source(&counts_by_source, me);
                let cuts = stable_cuts(data, &pivots, None, &shares);
                let counts = cuts_to_counts(&cuts);
                // count only the duplicates: the run's owners receive
                // nothing else from a sorted source unless neighbouring
                // values fall in the same bucket — subtract them via the
                // classic boundary.
                for k in 0..rs {
                    got[k] += counts[run.start + k];
                }
            }
            let dup_total: usize = got.iter().sum();
            prop_assert!(dup_total >= total, "owners receive at least every duplicate");
            for (k, &g) in got.iter().enumerate().skip(1) {
                // groups after the first hold only duplicates → bounded by sa
                prop_assert!(
                    g <= sa,
                    "run {ri} group {k} holds {g} > sa {sa} (total {total}, rs {rs})"
                );
            }
        }
    }

    #[test]
    fn fast_split_is_balanced_within_one(
        dups in 0usize..1000,
        rs in 2usize..8,
    ) {
        // The fast rule's even split: owner loads differ by at most 1.
        let data = vec![42u64; dups];
        let pivots = vec![42u64; rs];
        let cuts = fast_cuts(&data, &pivots, None);
        let counts = cuts_to_counts(&cuts);
        let owners = &counts[..rs];
        let (min, max) = (
            owners.iter().copied().min().unwrap_or(0),
            owners.iter().copied().max().unwrap_or(0),
        );
        prop_assert!(max - min <= 1, "uneven split {owners:?}");
        prop_assert_eq!(owners.iter().sum::<usize>(), dups);
    }
}
