//! Driver-level coverage: error surfaces, stats plumbing, and corner
//! configurations of `sds_sort` that the workload-centric suites don't
//! target directly.

use mpisim::{NetModel, World};
use sdssort::{sds_sort, SdsConfig, SortError};

fn world(p: usize) -> World {
    World::new(p).cores_per_node(4).net(NetModel::zero())
}

#[test]
fn oom_and_peer_oom_are_distinguished() {
    // Rank budgets are uniform, but only some ranks' receive buffers
    // overflow: those get Oom, the rest PeerOom — and everyone errors.
    let p = 4;
    let n = 4000usize;
    let budget = n * 8 * 3 / 2; // < all-duplicates concentration
    let report = world(p).memory_budget(budget).run(|comm| {
        let mut cfg = SdsConfig::default();
        cfg.tau_m_bytes = 0;
        cfg.partition = sdssort::PartitionStrategy::Classic; // force imbalance
        let data = vec![42u64; n];
        sds_sort(comm, data, &cfg)
    });
    let mut direct = 0;
    let mut peer = 0;
    for r in &report.results {
        match r {
            Err(SortError::Oom(e)) => {
                assert!(e.requested > e.budget - e.available || e.requested > 0);
                direct += 1;
            }
            Err(SortError::PeerOom) => peer += 1,
            Err(other) => panic!("unexpected error: {other}"),
            Ok(_) => panic!("no rank may succeed once any rank OOMs"),
        }
    }
    assert!(direct >= 1, "at least the overloaded rank reports Oom");
    assert_eq!(direct + peer, p);
}

#[test]
fn sort_error_display_messages() {
    let peer = SortError::PeerOom;
    assert!(peer.to_string().contains("peer rank"));
    // Oom carries the memory numbers through.
    let report = world(2).memory_budget(10).run(|comm| {
        let mut cfg = SdsConfig::default();
        cfg.tau_m_bytes = 0;
        sds_sort(comm, vec![1u64, 2, 3], &cfg)
    });
    let err = report.results[0]
        .as_ref()
        .expect_err("tiny budget must fail");
    let msg = err.to_string();
    assert!(
        msg.contains('B') || msg.contains("peer"),
        "useful message: {msg}"
    );
}

#[test]
fn stats_phases_are_nonnegative_and_total() {
    let report = world(4).run(|comm| {
        let data: Vec<u64> = (0..2000).map(|i| (i * 31) % 500).collect();
        let mut cfg = SdsConfig::default();
        cfg.tau_m_bytes = 0;
        sds_sort(comm, data, &cfg).expect("no budget").stats
    });
    for s in report.results {
        assert!(s.pivot_s >= 0.0);
        assert!(s.exchange_s >= 0.0);
        assert!(s.local_order_s >= 0.0);
        assert!(s.other_s >= 0.0);
        let total = s.total_s();
        assert!(total >= s.pivot_s);
        assert_eq!(s.input_count, 2000);
        assert!(s.recv_count > 0);
        assert!(!s.node_merged);
    }
}

#[test]
fn stats_record_node_merge_and_overlap_flags() {
    // node merging on (huge τm): leaders carry node_merged = true.
    let report = world(8).run(|comm| {
        let mut cfg = SdsConfig::default();
        cfg.tau_m_bytes = usize::MAX;
        let data: Vec<u64> = (0..500).map(|i| i * 7 % 100).collect();
        sds_sort(comm, data, &cfg).expect("no budget").stats
    });
    assert!(report.results.iter().all(|s| s.node_merged));

    // overlap on (huge τo, τm off): overlapped = true on every rank.
    let report = world(4).run(|comm| {
        let mut cfg = SdsConfig::default();
        cfg.tau_m_bytes = 0;
        cfg.tau_o = usize::MAX;
        let data: Vec<u64> = (0..500).map(|i| i * 13 % 100).collect();
        sds_sort(comm, data, &cfg).expect("no budget").stats
    });
    assert!(report.results.iter().all(|s| s.overlapped));
}

#[test]
fn single_rank_world_short_circuits() {
    let report = world(1).run(|comm| {
        let data = vec![5u64, 3, 1, 4];
        let out = sds_sort(comm, data, &SdsConfig::default()).expect("no budget");
        assert_eq!(out.stats.recv_count, 4);
        out.data
    });
    assert_eq!(report.results[0], vec![1, 3, 4, 5]);
}

#[test]
fn stable_flag_survives_every_config_combination() {
    // stable × {τs merge, τs sort} × {node merge on, off}: all stable.
    for tau_s in [0usize, usize::MAX] {
        for tau_m in [0usize, usize::MAX] {
            let report = world(4).run(move |comm| {
                let mut cfg = SdsConfig::stable();
                cfg.tau_s = tau_s;
                cfg.tau_m_bytes = tau_m;
                let data: Vec<sdssort::Tagged<u8>> = (0..600u64)
                    .map(|i| sdssort::Record::new((i % 5) as u8, ((comm.rank() as u64) << 32) | i))
                    .collect();
                sds_sort(comm, data, &cfg).expect("no budget").data
            });
            let flat: Vec<sdssort::Tagged<u8>> = report.results.into_iter().flatten().collect();
            assert_eq!(flat.len(), 2400);
            for w in flat.windows(2) {
                assert!(w[0].key <= w[1].key, "τs={tau_s} τm={tau_m}: key order");
                if w[0].key == w[1].key {
                    assert!(
                        w[0].payload < w[1].payload,
                        "τs={tau_s} τm={tau_m}: stability"
                    );
                }
            }
        }
    }
}

#[test]
fn output_memory_reservation_is_released() {
    // After a successful sort the tracker must show zero bytes in use
    // (high-water > 0 proves the reservation happened).
    let report = world(4).memory_budget(1 << 20).run(|comm| {
        let mut cfg = SdsConfig::default();
        cfg.tau_m_bytes = 0;
        let data: Vec<u64> = (0..2000).map(|i| i * 3 % 700).collect();
        sds_sort(comm, data, &cfg).expect("fits");
        let uni = comm.universe();
        (
            uni.memory().used(comm.world_rank()),
            uni.memory().high_water(comm.world_rank()),
        )
    });
    for (used, high) in report.results {
        assert_eq!(used, 0, "reservations must be released");
        assert!(high > 0, "the receive buffer was actually charged");
    }
}
