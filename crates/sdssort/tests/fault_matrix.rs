//! Fault-injection matrix: sweep fault specs × workloads × exchange paths
//! and assert that every cell still produces a globally sorted permutation
//! with bounded virtual-time inflation; plus the graceful-degradation
//! (spill) scenarios and the faults-layer observer-purity guarantee.

use mpisim::{FaultSpec, NetModel, World};
use sdssort::{
    is_globally_sorted, is_permutation_of, sds_sort, sds_sort_resilient, ComputeModel, Record,
    ResilienceConfig, SdsConfig, SortError,
};
use std::path::PathBuf;

const P: usize = 6;
const N: usize = 300;

fn base_cfg(overlap: bool) -> SdsConfig {
    let mut cfg = SdsConfig::modeled(ComputeModel::nominal());
    cfg.tau_m_bytes = 0; // keep every rank active (no node merging)
    cfg.tau_o = if overlap { usize::MAX } else { 0 };
    cfg
}

fn workload(kind: &str, rank: usize) -> Vec<u64> {
    match kind {
        "uniform" => workloads::uniform::uniform_u64(N, 11, rank),
        "zipf" => workloads::zipf::zipf_keys(N, 1.2, 13, rank),
        "adversarial" => workloads::adversarial::heavy_hitters(N, 3, 60.0, 17, rank),
        other => panic!("unknown workload {other}"),
    }
}

struct Cell {
    sorted: bool,
    permutation: bool,
    makespan: f64,
    messages: u64,
    outputs: Vec<Vec<u64>>,
}

fn run_cell(spec: Option<FaultSpec>, kind: &'static str, overlap: bool) -> Cell {
    let cfg = base_cfg(overlap);
    let mut world = World::new(P)
        .cores_per_node(3)
        .net(NetModel::edison())
        .compute_scale(0.0);
    if let Some(s) = spec {
        world = world.faults(s);
    }
    let report = world.run(move |comm| {
        let input = workload(kind, comm.rank());
        let out = sds_sort(comm, input.clone(), &cfg).expect("no memory budget set");
        let sorted = is_globally_sorted(comm, &out.data);
        let perm = is_permutation_of(comm, &input, &out.data, |&k| k);
        (sorted, perm, out.data)
    });
    Cell {
        sorted: report.results.iter().all(|r| r.0),
        permutation: report.results.iter().all(|r| r.1),
        makespan: report.makespan,
        messages: report.messages,
        outputs: report.results.into_iter().map(|r| r.2).collect(),
    }
}

fn specs() -> Vec<(&'static str, FaultSpec)> {
    vec![
        (
            "delay",
            FaultSpec::parse("seed=1,delay=0.4:5e-5").expect("spec"),
        ),
        (
            "reorder",
            FaultSpec::parse("seed=2,reorder=0.5:6").expect("spec"),
        ),
        (
            "stall+slow",
            FaultSpec::parse("seed=3,stall=2:0.2:2e-4,slow=3:1.5").expect("spec"),
        ),
        (
            "sendbuf",
            FaultSpec::parse("seed=4,sendbuf=0.3:3:2e-5").expect("spec"),
        ),
        (
            "combined",
            FaultSpec::parse(
                "seed=5,delay=0.2:2e-5,reorder=0.3:4,stall=3:0.1:1e-4,sendbuf=0.2:2:1e-5",
            )
            .expect("spec"),
        ),
    ]
}

/// Inflation bound for a faulted run against its clean twin: slowdown can
/// scale every charge, and each message can pay at most
/// `worst_case_per_message_s` on each of a handful of hooks (send, stall
/// on send, stall on receive). Generous but finite.
fn makespan_bound(clean: &Cell, spec: &FaultSpec) -> f64 {
    let slow = if spec.slow_every > 0 {
        spec.slow_factor.max(1.0)
    } else {
        1.0
    };
    clean.makespan * slow
        + (6 * clean.messages + 64) as f64 * spec.worst_case_per_message_s()
        + 1e-3
}

#[test]
fn matrix_sorts_under_every_fault_spec() {
    for overlap in [false, true] {
        for kind in ["uniform", "zipf", "adversarial"] {
            let clean = run_cell(None, kind, overlap);
            assert!(clean.sorted && clean.permutation, "clean {kind} failed");
            for (name, spec) in specs() {
                let cell = run_cell(Some(spec), kind, overlap);
                assert!(
                    cell.sorted,
                    "{kind}/{name}/overlap={overlap}: output not globally sorted"
                );
                assert!(
                    cell.permutation,
                    "{kind}/{name}/overlap={overlap}: output not a permutation of the input"
                );
                let bound = makespan_bound(&clean, &spec);
                assert!(
                    cell.makespan <= bound,
                    "{kind}/{name}/overlap={overlap}: makespan {} exceeds inflation bound {} \
                     (clean {})",
                    cell.makespan,
                    bound,
                    clean.makespan
                );
            }
        }
    }
}

#[test]
fn same_seed_reproduces_clocks_and_outputs() {
    // The synchronous path receives from exact sources, so fault decisions
    // (per-sender program order) make the whole run deterministic.
    let spec =
        FaultSpec::parse("seed=9,delay=0.5:4e-5,reorder=0.4:5,stall=2:0.3:1e-4,sendbuf=0.2:2:1e-5")
            .expect("spec");
    let a = run_cell(Some(spec), "zipf", false);
    let b = run_cell(Some(spec), "zipf", false);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "same fault seed must reproduce virtual time exactly"
    );
    assert_eq!(a.messages, b.messages);
}

#[test]
fn disabled_faults_are_bit_identical_to_no_faults_layer() {
    // Observer purity, extended from the telemetry layer to faults: a world
    // built with the inert spec must match a world built without the layer
    // bit for bit (outputs, makespan, message totals).
    let without = run_cell(None, "zipf", false);
    let inert = run_cell(Some(FaultSpec::none()), "zipf", false);
    assert_eq!(without.outputs, inert.outputs);
    assert_eq!(
        without.makespan.to_bits(),
        inert.makespan.to_bits(),
        "an inert fault layer must not perturb virtual time"
    );
    assert_eq!(without.messages, inert.messages);
}

fn spill_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sdssort-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

// Each rank contributes N records of 8 bytes; budgets below are sized so a
// balanced exchange (~N records back) cannot be held in memory once the
// ramp withholds half the budget, but a single staged chunk still fits.
const BUDGET: usize = 5 * N * 8 / 4; // 1.25× the expected receive buffer

#[test]
fn memory_ramp_kills_plain_sort_but_resilient_survives() {
    let ramp = FaultSpec::parse("ramp=0:0:0.5").expect("spec");

    // Plain sds_sort under the ramp: effective budget is half, the receive
    // buffer no longer fits anywhere, the job dies (the paper's crash).
    let cfg = base_cfg(false);
    let report = World::new(P)
        .cores_per_node(3)
        .net(NetModel::edison())
        .compute_scale(0.0)
        .memory_budget(BUDGET)
        .faults(ramp)
        .run(move |comm| sds_sort(comm, workload("uniform", comm.rank()), &cfg).map(|o| o.data));
    assert!(
        report
            .results
            .iter()
            .any(|r| matches!(r, Err(SortError::Oom(_)))),
        "some rank must report the OOM directly"
    );
    assert!(
        report.results.iter().all(|r| r.is_err()),
        "an OOM is a whole-job crash for the plain driver"
    );

    // The resilient driver under the identical ramp spills and completes.
    let cfg = base_cfg(false);
    let dir = spill_dir("ramp");
    let rcfg = ResilienceConfig::new(dir.clone());
    let report = World::new(P)
        .cores_per_node(3)
        .net(NetModel::edison())
        .compute_scale(0.0)
        .memory_budget(BUDGET)
        .faults(ramp)
        .run(move |comm| {
            let input = workload("uniform", comm.rank());
            let out = sds_sort_resilient(comm, input.clone(), &cfg, &rcfg)
                .expect("resilient driver must survive the ramp");
            let sorted = is_globally_sorted(comm, &out.data);
            let perm = is_permutation_of(comm, &input, &out.data, |&k| k);
            (sorted, perm, out.stats)
        });
    assert!(report.results.iter().all(|r| r.0 && r.1));
    assert!(
        report.results.iter().any(|r| r.2.spilled),
        "at least one rank must have degraded to spilling"
    );
    for r in &report.results {
        if r.2.spilled {
            assert_eq!(r.2.spill_records, r.2.recv_count);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pressure_threshold_triggers_spill_without_faults() {
    // No fault layer at all: a tight budget alone pushes the projected
    // high-water over the threshold and the resilient driver degrades.
    let cfg = base_cfg(false);
    let dir = spill_dir("threshold");
    let mut rcfg = ResilienceConfig::new(dir.clone());
    rcfg.pressure_threshold = 0.5; // receive buffer lands at ~0.8 of budget
    let report = World::new(P)
        .cores_per_node(3)
        .net(NetModel::edison())
        .compute_scale(0.0)
        .memory_budget(BUDGET)
        .run(move |comm| {
            let input = workload("uniform", comm.rank());
            let out = sds_sort_resilient(comm, input.clone(), &cfg, &rcfg).expect("survives");
            (
                is_globally_sorted(comm, &out.data),
                is_permutation_of(comm, &input, &out.data, |&k| k),
                out.stats.spilled,
            )
        });
    assert!(report.results.iter().all(|r| r.0 && r.1));
    assert!(report.results.iter().any(|r| r.2), "threshold must trip");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resilient_matches_plain_when_memory_is_ample() {
    // With an unlimited budget the resilient driver takes the in-memory
    // path on every rank and must agree with the plain driver record for
    // record (both merge source chunks in rank order).
    let cfg = base_cfg(false);
    let dir = spill_dir("ample");
    let rcfg = ResilienceConfig::new(dir.clone());
    let resilient = World::new(P)
        .cores_per_node(3)
        .net(NetModel::edison())
        .compute_scale(0.0)
        .run(move |comm| {
            let out = sds_sort_resilient(comm, workload("zipf", comm.rank()), &cfg, &rcfg)
                .expect("no budget");
            assert!(!out.stats.spilled);
            out.data
        });
    let cfg = base_cfg(false);
    let plain = World::new(P)
        .cores_per_node(3)
        .net(NetModel::edison())
        .compute_scale(0.0)
        .run(move |comm| {
            sds_sort(comm, workload("zipf", comm.rank()), &cfg)
                .expect("no budget")
                .data
        });
    assert_eq!(resilient.results, plain.results);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spill_path_preserves_stability() {
    // Stable sort with duplicate-heavy keys, forced through the spill path:
    // equal keys must keep global input order (rank, then local position).
    let mut cfg = base_cfg(false);
    cfg.stable = true;
    let dir = spill_dir("stable");
    let mut rcfg = ResilienceConfig::new(dir.clone());
    rcfg.pressure_threshold = 0.0; // any nonzero pressure spills
    rcfg.spill_chunk_records = 64; // many runs per chunk
    let report = World::new(4)
        .cores_per_node(2)
        .net(NetModel::edison())
        .compute_scale(0.0)
        // a finite budget makes pressure nonzero, tripping the threshold
        .memory_budget(1 << 20)
        .run(move |comm| {
            let n = 500usize;
            let rank = comm.rank() as u64;
            // 8 distinct keys, payload encodes global input position
            let input: Vec<Record<u64, u64>> = (0..n)
                .map(|i| Record::new((i as u64 * 7 + rank) % 8, rank * n as u64 + i as u64))
                .collect();
            let out = sds_sort_resilient(comm, input, &cfg, &rcfg).expect("survives");
            assert!(out.stats.spilled, "threshold 0 must force the spill path");
            out.data
        });
    let all: Vec<Record<u64, u64>> = report.results.iter().flatten().copied().collect();
    assert_eq!(all.len(), 4 * 500);
    assert!(all.windows(2).all(|w| w[0].key <= w[1].key), "sorted");
    for w in all.windows(2) {
        if w[0].key == w[1].key {
            assert!(
                w[0].payload < w[1].payload,
                "stability violated for key {}: payload {} before {}",
                w[0].key,
                w[0].payload,
                w[1].payload
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
