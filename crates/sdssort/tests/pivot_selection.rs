//! Distributed pivot selection: the bitonic and odd-even block sorters
//! must globally sort sample blocks, and all pivot-selection paths must
//! return the same regular-position pivots on every rank.

use mpisim::{NetModel, World};
use rand::prelude::*;
use sdssort::pivots::{
    bitonic_block_sort, odd_even_block_sort, reference_pivots, select_global_pivots, PivotMethod,
};

fn world(p: usize) -> World {
    World::new(p).cores_per_node(4).net(NetModel::zero())
}

fn assert_block_sorted(blocks: &[Vec<u64>], block_len: usize) {
    let mut last: Option<u64> = None;
    for (r, block) in blocks.iter().enumerate() {
        assert_eq!(block.len(), block_len, "rank {r} block length changed");
        assert!(
            block.windows(2).all(|w| w[0] <= w[1]),
            "rank {r} block not sorted"
        );
        if let (Some(prev), Some(&first)) = (last, block.first()) {
            assert!(prev <= first, "blocks not ordered across ranks at {r}");
        }
        last = block.last().copied();
    }
}

#[test]
fn bitonic_block_sort_power_of_two() {
    for p in [2usize, 4, 8, 16] {
        let b = 7;
        let report = world(p).run(|comm| {
            let mut rng = StdRng::seed_from_u64(comm.rank() as u64 * 31 + 1);
            let block: Vec<u64> = (0..b).map(|_| rng.gen_range(0..1000)).collect();
            bitonic_block_sort(comm, block)
        });
        assert_block_sorted(&report.results, b);
    }
}

#[test]
fn odd_even_block_sort_any_size() {
    for p in [2usize, 3, 5, 6, 9] {
        let b = 5;
        let report = world(p).run(|comm| {
            let mut rng = StdRng::seed_from_u64(comm.rank() as u64 * 17 + 2);
            let block: Vec<u64> = (0..b).map(|_| rng.gen_range(0..500)).collect();
            odd_even_block_sort(comm, block)
        });
        assert_block_sorted(&report.results, b);
    }
}

#[test]
fn block_sorts_preserve_multiset() {
    let p = 8;
    let b = 9;
    let report = world(p).run(|comm| {
        let mut rng = StdRng::seed_from_u64(comm.rank() as u64 ^ 0xAB);
        let block: Vec<u64> = (0..b).map(|_| rng.gen_range(0..50)).collect();
        let sorted = bitonic_block_sort(comm, block.clone());
        (block, sorted)
    });
    let mut input: Vec<u64> = report.results.iter().flat_map(|(i, _)| i.clone()).collect();
    let mut output: Vec<u64> = report.results.iter().flat_map(|(_, o)| o.clone()).collect();
    input.sort_unstable();
    output.sort_unstable();
    assert_eq!(input, output);
}

#[test]
fn distributed_and_gather_pivots_agree() {
    for p in [4usize, 8] {
        let report = world(p).run(move |comm| {
            // Sorted local pivots, as the driver produces them.
            let mut rng = StdRng::seed_from_u64(comm.rank() as u64 * 7 + 3);
            let mut local: Vec<u64> = (0..p - 1).map(|_| rng.gen_range(0..10_000)).collect();
            local.sort_unstable();
            let dist = select_global_pivots(comm, &local, PivotMethod::Distributed);
            let gath = select_global_pivots(comm, &local, PivotMethod::Gather);
            (local, dist, gath)
        });
        // Same pivots on every rank, both methods.
        let (_, first_dist, first_gath) = &report.results[0];
        assert_eq!(first_dist.len(), p - 1);
        assert_eq!(first_dist, first_gath, "methods must agree");
        for (_, dist, gath) in &report.results {
            assert_eq!(dist, first_dist);
            assert_eq!(gath, first_gath);
        }
        // And they equal the sequential reference over the pooled samples.
        let mut all: Vec<u64> = report
            .results
            .iter()
            .flat_map(|(l, _, _)| l.clone())
            .collect();
        let expect = reference_pivots(&mut all, p);
        assert_eq!(first_gath, &expect);
    }
}

#[test]
fn unequal_sample_counts_fall_back_to_gather() {
    let p = 4;
    let report = world(p).run(|comm| {
        // rank 0 contributes fewer samples (tiny local data)
        let local: Vec<u64> = if comm.rank() == 0 {
            vec![5]
        } else {
            vec![10, 20, 30]
        };
        select_global_pivots(comm, &local, PivotMethod::Distributed)
    });
    let first = &report.results[0];
    assert!(!first.is_empty());
    for r in &report.results {
        assert_eq!(r, first, "all ranks agree despite unequal contributions");
    }
    assert!(first.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn single_rank_returns_no_pivots() {
    let report =
        world(1).run(|comm| select_global_pivots(comm, &[1u64, 2, 3], PivotMethod::Distributed));
    assert!(report.results[0].is_empty());
}

#[test]
fn duplicate_heavy_samples_produce_replicated_pivots() {
    // All samples identical → all global pivots identical (the replicated
    // run the partitioner must then split).
    let p = 8;
    let report = world(p).run(move |comm| {
        let local = vec![42u64; p - 1];
        select_global_pivots(comm, &local, PivotMethod::Distributed)
    });
    for r in &report.results {
        assert_eq!(r, &vec![42u64; p - 1]);
    }
}
