//! Observer purity: enabling telemetry must not change *anything* about a
//! sort — outputs, per-rank virtual clocks, makespan, or message totals
//! are bit-identical with the recorder on or off. The recorder only reads
//! clocks (through its callers) and never advances them.
//!
//! Determinism preconditions: modeled compute charging (no wall-clock
//! measurement), `compute_scale(0.0)` (no measured residue), and `τo = 0`
//! (the overlapped exchange consumes chunks in arrival order, which is
//! schedule-dependent).

use mpisim::{NetModel, World};
use sdssort::{sds_sort, ComputeModel, SdsConfig};

/// Deterministic per-rank input: a mix of a shared heavy key (exercises
/// the duplicate machinery) and rank-salted spread keys.
fn gen(rank: usize, n: usize) -> Vec<u64> {
    let mut z = 0x9E37_79B9u64.wrapping_mul(rank as u64 + 1);
    (0..n)
        .map(|_| {
            z = z
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if z.is_multiple_of(4) {
                42 // heavy hitter shared by every rank
            } else {
                z >> 16
            }
        })
        .collect()
}

#[derive(Debug, PartialEq)]
struct RunResult {
    outputs: Vec<Vec<u64>>,
    per_rank_time_bits: Vec<u64>,
    makespan_bits: u64,
    messages: u64,
    bytes: u64,
}

fn run(telemetry: bool, cfg: &SdsConfig) -> RunResult {
    let cfg = *cfg;
    let report = World::new(8)
        .cores_per_node(4)
        .net(NetModel::edison())
        .compute_scale(0.0)
        .telemetry(telemetry)
        .run(move |comm| {
            let data = gen(comm.rank(), 500);
            sds_sort(comm, data, &cfg).expect("no memory budget").data
        });
    RunResult {
        outputs: report.results.clone(),
        per_rank_time_bits: report.per_rank_time.iter().map(|t| t.to_bits()).collect(),
        makespan_bits: report.makespan.to_bits(),
        messages: report.messages,
        bytes: report.bytes,
    }
}

fn purity_case(cfg: &SdsConfig) {
    let off = run(false, cfg);
    let on = run(true, cfg);
    assert_eq!(on, off, "telemetry must be a pure observer");
    // And the baseline run itself is reproducible (guards against the test
    // comparing two equally-nondeterministic runs by luck).
    assert_eq!(run(false, cfg), off, "baseline run must be deterministic");
}

fn base_cfg() -> SdsConfig {
    let mut cfg = SdsConfig::modeled(ComputeModel::nominal());
    cfg.tau_o = 0; // overlapped exchange is schedule-dependent
    cfg
}

#[test]
fn identical_with_and_without_telemetry() {
    let mut cfg = base_cfg();
    cfg.tau_m_bytes = 0; // no node merging
    purity_case(&cfg);
}

#[test]
fn identical_when_node_merging_runs() {
    let mut cfg = base_cfg();
    cfg.tau_m_bytes = usize::MAX; // force the node-merge path
    purity_case(&cfg);
}

#[test]
fn identical_for_stable_variant() {
    let mut cfg = base_cfg();
    cfg.stable = true;
    cfg.tau_m_bytes = 0;
    purity_case(&cfg);
}

#[test]
fn telemetry_run_actually_recorded() {
    // Sanity for the purity tests above: the telemetry-on run is not
    // trivially equal because recording silently failed to happen.
    let mut cfg = base_cfg();
    cfg.tau_m_bytes = 0;
    let cfg2 = cfg;
    let report = World::new(8)
        .cores_per_node(4)
        .net(NetModel::edison())
        .compute_scale(0.0)
        .telemetry(true)
        .run(move |comm| {
            let data = gen(comm.rank(), 500);
            sds_sort(comm, data, &cfg2)
                .expect("no memory budget")
                .data
                .len()
        });
    let snap = report.telemetry.expect("telemetry enabled");
    assert!(snap.total_messages() > 0, "recorder saw traffic");
    assert!(snap.spans.iter().any(|s| s.name == "pivot-select"));
    assert!(snap.spans.iter().any(|s| s.name == "exchange"));
    assert!(snap.spans.iter().any(|s| s.name == "local-order"));
    assert!(snap.phases.iter().any(|p| p.name == "exchange"));
}
