//! Shared collective algorithms over a raw send/recv substrate.
//!
//! The simulator proves which message patterns are correct; the real
//! backends (`shmem` threads, `sockcomm` processes) must then *reproduce*
//! those patterns exactly so `backend_equivalence` can demand bit-identical
//! per-rank output. Rather than each backend re-implementing the
//! dissemination barrier, binomial broadcast, staggered `alltoallv` and the
//! async self-first protocol — and each being a fresh chance to diverge —
//! the algorithm bodies live here once, generic over [`RawComm`]: the
//! minimal reserved-tag send/recv surface a backend must provide. `shmem`
//! delegates to these functions (its behavior was bit-identical before and
//! after the extraction, guarded by the equivalence suite), and `sockcomm`
//! gets collectives parity by construction.
//!
//! All ranks in this module's vocabulary are *communicator* ranks; the
//! backend maps them to world ranks (or socket peers) internally.

use crate::wire::Wire;
use crate::Communicator;

/// The raw substrate a backend supplies to run the shared collectives:
/// reserved-tag point-to-point operations plus the per-communicator
/// collective tag allocator. Tags passed here may be at or above
/// [`crate::MAX_USER_TAG`] — these entry points are exactly the ones that
/// bypass the user-tag check.
pub trait RawComm: Communicator {
    /// Send an owned vector to communicator rank `dst` on any tag
    /// (including reserved collective tags).
    fn send_raw<T: Wire>(&self, dst: usize, tag: u64, data: Vec<T>);

    /// Send a copy of a slice to communicator rank `dst` on any tag.
    fn send_slice_raw<T: Wire>(&self, dst: usize, tag: u64, data: &[T]) {
        self.send_raw(dst, tag, data.to_vec());
    }

    /// Blocking receive from communicator rank `src` on any tag.
    fn recv_vec_raw<T: Wire>(&self, src: usize, tag: u64) -> Vec<T>;

    /// Blocking receive of a single value from communicator rank `src`.
    fn recv_val_raw<T: Wire>(&self, src: usize, tag: u64) -> T {
        let v = self.recv_vec_raw::<T>(src, tag);
        debug_assert_eq!(v.len(), 1, "recv_val expects single-element message");
        v.into_iter().next().expect("non-empty message")
    }

    /// Blocking receive from *any* member on `tag`; returns the sender's
    /// communicator rank with the payload.
    fn recv_any_raw<T: Wire>(&self, tag: u64) -> (usize, Vec<T>);

    /// Non-blocking variant of [`RawComm::recv_any_raw`].
    fn try_recv_any_raw<T: Wire>(&self, tag: u64) -> Option<(usize, Vec<T>)>;

    /// Allocate the base tag for the next collective operation on this
    /// communicator: `MAX_USER_TAG + (op_seq << 12)`, leaving round numbers
    /// (< 4096) for the algorithm to add. Every member must call the
    /// collective entry points in the same order so sequence numbers agree.
    fn next_coll_tag(&self) -> u64;
}

/// Dissemination barrier: `ceil(log2 p)` rounds, round `k` sends to
/// `(r + 2^k) mod p` and receives from `(r - 2^k) mod p`.
pub fn barrier<C: RawComm>(comm: &C) {
    comm.count("coll.barrier", 1);
    let p = comm.size();
    if p == 1 {
        return;
    }
    let base = comm.next_coll_tag();
    let r = comm.rank();
    let mut k = 0u32;
    while (1usize << k) < p {
        let d = 1usize << k;
        let dst = (r + d) % p;
        let src = (r + p - d) % p;
        comm.send_raw::<u8>(dst, base + u64::from(k), Vec::new());
        let _ = comm.recv_vec_raw::<u8>(src, base + u64::from(k));
        k += 1;
    }
}

/// Binomial-tree broadcast from `root` (virtual ranks rotate the root to 0).
pub fn bcast<C: RawComm, T: Wire>(comm: &C, root: usize, data: Option<Vec<T>>) -> Vec<T> {
    comm.count("coll.bcast", 1);
    let p = comm.size();
    let tag = comm.next_coll_tag();
    if p == 1 {
        return data.expect("root must supply data");
    }
    let vr = (comm.rank() + p - root) % p; // virtual rank, root = 0
    let mut buf: Option<Vec<T>> = if vr == 0 {
        Some(data.expect("root must supply data"))
    } else {
        None
    };
    let rounds = (usize::BITS - (p - 1).leading_zeros()) as usize;
    for k in 0..rounds {
        let d = 1usize << k;
        if buf.is_none() && vr >= d && vr < 2 * d {
            let parent_vr = vr - d;
            let parent = (parent_vr + root) % p;
            buf = Some(comm.recv_vec_raw::<T>(parent, tag + k as u64));
        } else if buf.is_some() && vr < d {
            let child_vr = vr + d;
            if child_vr < p {
                let child = (child_vr + root) % p;
                comm.send_slice_raw(child, tag + k as u64, buf.as_ref().expect("buffered"));
            }
        }
    }
    buf.expect("broadcast reached every rank")
}

/// Rank-order gatherv: non-roots send, the root receives in source order.
pub fn gatherv<C: RawComm, T: Wire>(comm: &C, root: usize, data: &[T]) -> Option<Vec<Vec<T>>> {
    comm.count("coll.gatherv", 1);
    let p = comm.size();
    let tag = comm.next_coll_tag();
    if comm.rank() == root {
        let mut out: Vec<Vec<T>> = Vec::with_capacity(p);
        for src in 0..p {
            if src == root {
                out.push(data.to_vec());
            } else {
                out.push(comm.recv_vec_raw::<T>(src, tag));
            }
        }
        Some(out)
    } else {
        comm.send_slice_raw(root, tag, data);
        None
    }
}

/// Personalized all-to-all of one item per rank; receives in source order.
pub fn alltoall<C: RawComm, T: Wire>(comm: &C, data: &[T]) -> Vec<T> {
    comm.count("coll.alltoall", 1);
    let p = comm.size();
    assert_eq!(data.len(), p, "alltoall requires one item per rank");
    let tag = comm.next_coll_tag();
    let me = comm.rank();
    for (dst, item) in data.iter().enumerate() {
        if dst != me {
            comm.send_raw(dst, tag, vec![item.clone()]);
        }
    }
    let mut out: Vec<T> = Vec::with_capacity(p);
    for src in 0..p {
        if src == me {
            out.push(data[me].clone());
        } else {
            out.push(comm.recv_val_raw::<T>(src, tag));
        }
    }
    out
}

/// Variable all-to-all with pre-exchanged receive counts: staggered send
/// order (start at `me + 1`, wrap), receives concatenated in source order,
/// the self chunk copied without touching the network.
pub fn alltoallv_given_counts<C: RawComm, T: Wire>(
    comm: &C,
    data: &[T],
    send_counts: &[usize],
    recv_counts: &[usize],
) -> Vec<T> {
    comm.count("coll.alltoallv", 1);
    let p = comm.size();
    assert_eq!(send_counts.len(), p, "one send count per rank");
    assert_eq!(recv_counts.len(), p, "one recv count per rank");
    let total: usize = send_counts.iter().sum();
    assert_eq!(total, data.len(), "send counts must cover the data");
    let tag = comm.next_coll_tag();
    let me = comm.rank();

    let mut offsets = Vec::with_capacity(p + 1);
    offsets.push(0usize);
    for &c in send_counts {
        offsets.push(offsets.last().copied().expect("non-empty") + c);
    }
    // Staggered send order (start at me+1, wrap), exactly as the
    // simulator and real MPI all-to-alls do, to spread arrivals.
    for i in 1..p {
        let dst = (me + i) % p;
        if send_counts[dst] > 0 {
            comm.send_slice_raw(dst, tag, &data[offsets[dst]..offsets[dst + 1]]);
        }
    }
    let mut out: Vec<T> = Vec::with_capacity(recv_counts.iter().sum());
    for (src, &rc) in recv_counts.iter().enumerate() {
        if src == me {
            out.extend_from_slice(&data[offsets[me]..offsets[me + 1]]);
        } else if rc > 0 {
            let chunk = comm.recv_vec_raw::<T>(src, tag);
            assert_eq!(chunk.len(), rc, "alltoallv count mismatch from {src}");
            out.extend(chunk);
        }
    }
    out
}

/// Handle to an in-flight asynchronous `alltoallv` on a raw-substrate
/// backend. Same protocol as the simulator's: the self chunk is delivered
/// first, then remote chunks in true arrival order, keyed by source with a
/// hard duplicate check.
pub struct RawAsync<T> {
    tag: u64,
    pending: Vec<bool>,
    recv_counts: Vec<usize>,
    self_chunk: Option<Vec<T>>,
    remaining: usize,
}

impl<T> RawAsync<T> {
    /// Number of per-peer chunks not yet delivered. Inherent mirror of
    /// [`crate::AsyncExchange::remaining`]: the trait impl is generic over
    /// every [`RawComm`] backend, so monomorphic call sites would otherwise
    /// need a turbofish to pick one.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Per-source receive counts (inherent mirror, see
    /// [`RawAsync::remaining`]).
    pub fn recv_counts(&self) -> &[usize] {
        &self.recv_counts
    }

    /// Total number of records this rank will receive (inherent mirror,
    /// see [`RawAsync::remaining`]).
    pub fn total_recv(&self) -> usize {
        self.recv_counts.iter().sum()
    }
}

impl<T: Wire, C: RawComm> crate::AsyncExchange<T, C> for RawAsync<T> {
    fn wait_any(&mut self, comm: &C) -> Option<(usize, Vec<T>)> {
        if self.remaining == 0 {
            return None;
        }
        if let Some(chunk) = self.self_chunk.take() {
            self.remaining -= 1;
            return Some((comm.rank(), chunk));
        }
        // Prefer a chunk that already arrived; otherwise block for any.
        let (src, data) = match comm.try_recv_any_raw::<T>(self.tag) {
            Some(hit) => hit,
            None => comm.recv_any_raw::<T>(self.tag),
        };
        // A hard check, not a debug assert: a duplicate or foreign chunk
        // here means the exchange protocol was violated (e.g. a tag
        // collision) and would otherwise corrupt the output silently.
        assert!(
            self.pending[src],
            "async alltoallv protocol violation: unexpected chunk from rank {src} \
             on tag {} ({} records); bookkeeping already marked it delivered",
            self.tag,
            data.len()
        );
        self.pending[src] = false;
        self.remaining -= 1;
        Some((src, data))
    }

    fn remaining(&self) -> usize {
        self.remaining
    }

    fn recv_counts(&self) -> &[usize] {
        &self.recv_counts
    }
}

/// Post every send of an asynchronous variable all-to-all and return the
/// handle that retrieves completed chunks (self chunk first).
pub fn alltoallv_async_given_counts<C: RawComm, T: Wire>(
    comm: &C,
    data: &[T],
    send_counts: &[usize],
    recv_counts: Vec<usize>,
) -> RawAsync<T> {
    comm.count("coll.alltoallv_async", 1);
    let p = comm.size();
    assert_eq!(send_counts.len(), p);
    assert_eq!(send_counts.iter().sum::<usize>(), data.len());
    let tag = comm.next_coll_tag();
    let me = comm.rank();

    let mut offsets = Vec::with_capacity(p + 1);
    offsets.push(0usize);
    for &c in send_counts {
        offsets.push(offsets.last().copied().expect("non-empty") + c);
    }
    let self_slice = &data[offsets[me]..offsets[me + 1]];
    let self_chunk = (!self_slice.is_empty()).then(|| self_slice.to_vec());
    for i in 1..p {
        let dst = (me + i) % p;
        let chunk = &data[offsets[dst]..offsets[dst + 1]];
        if !chunk.is_empty() {
            comm.send_slice_raw(dst, tag, chunk);
        }
    }

    let mut pending = vec![false; p];
    let mut remaining = 0usize;
    for (src, item) in pending.iter_mut().enumerate() {
        if src != me && recv_counts[src] > 0 {
            *item = true;
            remaining += 1;
        }
    }
    let has_self = self_chunk.is_some();
    RawAsync {
        tag,
        pending,
        recv_counts,
        self_chunk,
        remaining: remaining + usize::from(has_self),
    }
}

/// Rank-order scatterv: the root sends each non-root chunk, keeps its own.
pub fn scatterv<C: RawComm, T: Wire>(comm: &C, root: usize, chunks: Option<Vec<Vec<T>>>) -> Vec<T> {
    comm.count("coll.scatterv", 1);
    let p = comm.size();
    let tag = comm.next_coll_tag();
    if comm.rank() == root {
        let chunks = chunks.expect("root must supply chunks");
        assert_eq!(chunks.len(), p, "one chunk per rank");
        let mut mine = Vec::new();
        for (dst, chunk) in chunks.into_iter().enumerate() {
            if dst == root {
                mine = chunk;
            } else {
                comm.send_raw(dst, tag, chunk);
            }
        }
        mine
    } else {
        comm.recv_vec_raw(root, tag)
    }
}

/// The group-computation half of `MPI_Comm_split`: allgathers every
/// member's `(color, key)` (a `None` color rides as an `i64::MIN` sentinel
/// plus validity flag, identical to the simulator's encoding) and returns,
/// for participating ranks, the member list of the caller's color group as
/// `(old_ranks_in_new_order, my_new_rank)`. Ranks passing `None`
/// participate in the allgather (every member must call this) and get
/// `None` back. Context-id allocation for the child communicator is the
/// backend's job — registry-based in shmem, hash-derived in sockcomm.
pub fn split_group<C: RawComm>(
    comm: &C,
    color: Option<i64>,
    key: i64,
) -> Option<(Vec<usize>, usize)> {
    let mine = [(color.unwrap_or(i64::MIN), i64::from(color.is_some()), key)];
    let all = comm.allgather(&mine[..]);
    let my_color = color?;

    let mut group: Vec<(i64, usize)> = all
        .iter()
        .enumerate()
        .filter(|(_, &(c, valid, _))| valid == 1 && c == my_color)
        .map(|(old_rank, &(_, _, k))| (k, old_rank))
        .collect();
    group.sort_unstable();
    let members: Vec<usize> = group.iter().map(|&(_, old)| old).collect();
    let my_index = group
        .iter()
        .position(|&(_, old)| old == comm.rank())
        .expect("calling rank is in its own color group");
    Some((members, my_index))
}
