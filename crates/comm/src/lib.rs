//! # comm — the transport abstraction under SDS-Sort
//!
//! The sort algorithms in `sdssort` are written against the
//! [`Communicator`] trait rather than a concrete runtime, so the same
//! algorithm code runs over three very different substrates:
//!
//! * **`mpisim`** — the deterministic virtual-time simulator: single
//!   logical timeline per rank, LogGP network cost model, per-rank memory
//!   budgets, fault injection, happens-before checking. This is where
//!   correctness is proved.
//! * **`shmem`** — a real OS-thread backend: one thread per rank, bounded
//!   in-memory mailboxes, wall-clock [`std::time::Instant`] timing. This is
//!   where real elapsed time is measured.
//! * **`sockcomm`** — a distributed backend: one OS process per rank,
//!   connected by a full mesh of Unix-domain or TCP sockets with
//!   length-prefixed `(ctx, src, tag)` frames. This is where
//!   serialization boundaries and process death are real.
//!
//! The real backends share more than the trait: the [`mailbox`] module is
//!   the `(ctx, src, tag)` matching discipline both use verbatim, [`Wire`]
//!   is the zero-copy record codec, and [`raw`] holds the collective
//!   *algorithms* (dissemination barrier, binomial bcast, staggered
//!   self-first all-to-all) written once against a minimal [`raw::RawComm`]
//!   core — which is why the same seed yields bit-identical output on all
//!   three substrates.
//!
//! The trait mirrors the MPI-flavoured surface `mpisim::Comm` grew: rank /
//! topology queries, buffered point-to-point sends, the collectives the
//! sort uses, the asynchronous all-to-all protocol (via the [`Communicator::Async`]
//! associated type and [`AsyncExchange`]), communicator splitting, plus the
//! cost-accounting and telemetry hooks (`compute`, `charge_compute`, spans,
//! counters) that feed `telemetry::RunReport`.
//!
//! ## Composed collectives
//!
//! Only the traffic-generating primitives (`barrier`, `bcast`, `gatherv`,
//! `alltoall`, `alltoallv_given_counts`, the async all-to-all, `split`) are
//! required methods. Everything else (`allreduce`, scans, scatters, …) has
//! a provided default composed from those primitives **in exactly the
//! decomposition `mpisim` uses**, so a backend that implements just the
//! primitives produces the same message pattern — and, crucially for the
//! backend-equivalence tests, the same deterministic rank-order reduction
//! results — as the simulator.
//!
//! ## Tags
//!
//! User point-to-point traffic must stay below [`MAX_USER_TAG`]; the space
//! above it is reserved for collectives, which key their traffic by a
//! per-communicator operation sequence number. Backends must implement the
//! same reservation so interleaved collectives and user messages never
//! cross-match.

#![warn(missing_docs)]

pub mod mailbox;
pub mod raw;
pub mod wire;

pub use wire::Wire;

use std::fmt;
use telemetry::{Recorder, SpanId};

/// Largest tag value available to user point-to-point messages. The space
/// at and above this value is reserved for collective operations: backends
/// allocate collective tags as `MAX_USER_TAG + (op_seq << 12) + round`.
pub const MAX_USER_TAG: u64 = 1 << 48;

/// Error returned when a rank exceeds its memory budget.
///
/// The SDS-Sort paper reports HykSort crashing with out-of-memory errors on
/// skewed inputs because load imbalance concentrates most of the data on a
/// few ranks. `mpisim` reproduces that failure mode with a per-rank byte
/// budget; backends without budget enforcement (the threads backend) simply
/// never return it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    /// Rank (in the world communicator) whose budget was exceeded.
    pub rank: usize,
    /// Bytes the allocation requested.
    pub requested: usize,
    /// Bytes that were still available under the budget.
    pub available: usize,
    /// Total per-rank budget in bytes.
    pub budget: usize,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulated OOM on rank {}: requested {} B, {} B available of {} B budget",
            self.rank, self.requested, self.available, self.budget
        )
    }
}

impl std::error::Error for OomError {}

/// Handle to an in-flight asynchronous `alltoallv` (the paper's
/// `SdssAlltoallvAsync` / `SdssFinished` pair, §2.6): all sends are posted
/// up front, and completed per-peer chunks are retrieved incrementally so
/// the caller can merge while the network is still moving data.
pub trait AsyncExchange<T, C: Communicator> {
    /// Retrieve the next completed chunk as `(source_rank, data)`, blocking
    /// if none has arrived yet. Returns `None` once all chunks have been
    /// delivered. The local (self) chunk is delivered first — it is
    /// "complete" immediately — then remote chunks in arrival order.
    fn wait_any(&mut self, comm: &C) -> Option<(usize, Vec<T>)>;

    /// Number of per-peer chunks not yet delivered.
    fn remaining(&self) -> usize;

    /// Per-source receive counts (available immediately).
    fn recv_counts(&self) -> &[usize];

    /// Total number of records this rank will receive.
    fn total_recv(&self) -> usize {
        self.recv_counts().iter().sum()
    }

    /// Drain every remaining chunk, returning them in arrival order.
    fn wait_all(&mut self, comm: &C) -> Vec<(usize, Vec<T>)> {
        let mut out = Vec::with_capacity(self.remaining());
        while let Some(hit) = self.wait_any(comm) {
            out.push(hit);
        }
        out
    }
}

/// A rank-local communicator handle: one rank's view of a communicator,
/// analogous to an `MPI_Comm` plus the calling rank.
///
/// All sends are *buffered* (the payload is copied/moved into an envelope
/// and the call returns once it is enqueued), so the common
/// send-everything-then-receive-everything pattern cannot deadlock on any
/// conforming backend.
pub trait Communicator: Sized {
    /// The backend's asynchronous all-to-all handle.
    type Async<T: Wire>: AsyncExchange<T, Self>;

    // ---- identity & topology ---------------------------------------------

    /// Communicator size (`MPI_Comm_size`).
    fn size(&self) -> usize;

    /// This rank within the communicator (`MPI_Comm_rank`).
    fn rank(&self) -> usize;

    /// This rank in the world communicator.
    fn world_rank(&self) -> usize;

    /// World rank of communicator rank `r`.
    fn world_rank_of(&self, r: usize) -> usize;

    /// Cores per node of the machine (simulated or host).
    fn cores_per_node(&self) -> usize;

    /// Node id hosting this rank.
    fn node(&self) -> usize;

    // ---- time & cost accounting ------------------------------------------

    /// Current time on this rank's timeline, in seconds. Virtual time under
    /// the simulator, wall-clock seconds since world start under a real
    /// backend. Only differences are meaningful.
    fn now(&self) -> f64;

    /// Run `f` and charge its cost to this rank's timeline. Under the
    /// simulator the measured host time is converted to virtual seconds;
    /// under a real backend the work simply takes the time it takes, and
    /// the elapsed seconds are attributed to the compute ledger.
    fn compute<R>(&self, f: impl FnOnce() -> R) -> R;

    /// Charge modeled compute seconds to this rank's timeline, attributing
    /// them to the compute ledger. Real backends record the charge in
    /// telemetry but do not stall the thread: modeled costs exist to shape
    /// virtual time, not to burn host CPU.
    fn charge_compute(&self, seconds: f64);

    // ---- observability ----------------------------------------------------

    /// Attribute subsequent traffic and time to the named phase. No-op when
    /// telemetry is disabled.
    fn trace_phase(&self, name: &str);

    /// The world's telemetry recorder (disabled unless the world enabled it).
    fn recorder(&self) -> &Recorder;

    /// Open a telemetry span on this rank at the current time.
    fn span_begin(&self, name: &str) -> SpanId {
        self.recorder()
            .span_begin(self.world_rank(), name, self.now())
    }

    /// Close a telemetry span at the current time.
    fn span_end(&self, id: SpanId) {
        self.recorder().span_end(id, self.now());
    }

    /// Record a telemetry point event on this rank at the current time.
    fn event(&self, name: &str, detail: &str) {
        self.recorder()
            .event(self.world_rank(), name, detail, self.now());
    }

    /// Bump a named telemetry counter.
    fn count(&self, name: &str, n: u64) {
        self.recorder().count(name, n);
    }

    /// Declare a read of rank-shared host state to a happens-before checker,
    /// if the backend has one. Default: no-op.
    fn check_shared_read(&self, _key: &str) {}

    /// Declare a write of rank-shared host state to a happens-before
    /// checker, if the backend has one. Default: no-op.
    fn check_shared_write(&self, _key: &str) {}

    // ---- memory accounting ------------------------------------------------

    /// Reserve `bytes` against this rank's memory budget. Backends without
    /// budget enforcement always succeed.
    fn try_alloc(&self, bytes: usize) -> Result<(), OomError>;

    /// Release a memory reservation.
    fn free(&self, bytes: usize);

    /// Fraction of this rank's effective memory budget that would be in use
    /// after reserving `extra` more bytes; 0.0 under an unlimited budget.
    fn memory_pressure_with(&self, extra: usize) -> f64;

    // ---- point-to-point ---------------------------------------------------

    /// Send an owned vector to communicator rank `dst` with `tag` (must be
    /// below [`MAX_USER_TAG`]). Buffered: returns as soon as the envelope
    /// is enqueued (a bounded backend may block while the destination's
    /// mailbox is full, but never on the receiver *matching* the message).
    fn send_vec<T: Wire>(&self, dst: usize, tag: u64, data: Vec<T>);

    /// Send a copy of a slice to communicator rank `dst`.
    fn send_slice<T: Wire>(&self, dst: usize, tag: u64, data: &[T]) {
        self.send_vec(dst, tag, data.to_vec());
    }

    /// Send a single value.
    fn send_val<T: Wire>(&self, dst: usize, tag: u64, value: T) {
        self.send_vec(dst, tag, vec![value]);
    }

    /// Blocking receive of a vector from communicator rank `src` with `tag`
    /// (below [`MAX_USER_TAG`]).
    fn recv_vec<T: Wire>(&self, src: usize, tag: u64) -> Vec<T>;

    /// Blocking receive of a single value.
    fn recv_val<T: Wire>(&self, src: usize, tag: u64) -> T {
        let v = self.recv_vec::<T>(src, tag);
        debug_assert_eq!(v.len(), 1, "recv_val expects single-element message");
        v.into_iter().next().expect("non-empty message")
    }

    // ---- collective primitives -------------------------------------------

    /// Synchronize all ranks.
    fn barrier(&self);

    /// Broadcast from `root`. `data` must be `Some` on the root and is
    /// ignored elsewhere; every rank returns the payload.
    fn bcast<T: Wire>(&self, root: usize, data: Option<Vec<T>>) -> Vec<T>;

    /// Gather variable-length contributions to `root`. Root returns one
    /// vector per rank (in rank order); other ranks return `None`.
    fn gatherv<T: Wire>(&self, root: usize, data: &[T]) -> Option<Vec<Vec<T>>>;

    /// Personalized all-to-all: `data` holds exactly one item per rank;
    /// returns the item received from each rank, in rank order.
    fn alltoall<T: Wire>(&self, data: &[T]) -> Vec<T>;

    /// Variable all-to-all when the receive counts are already known.
    /// `data` is partitioned by `send_counts` (one contiguous run per
    /// destination, in rank order); returns the received data concatenated
    /// in source-rank order.
    fn alltoallv_given_counts<T: Wire>(
        &self,
        data: &[T],
        send_counts: &[usize],
        recv_counts: &[usize],
    ) -> Vec<T>;

    /// Begin an asynchronous variable all-to-all with pre-exchanged receive
    /// counts; completed per-peer chunks are retrieved incrementally with
    /// [`AsyncExchange::wait_any`].
    fn alltoallv_async_given_counts<T: Wire>(
        &self,
        data: &[T],
        send_counts: &[usize],
        recv_counts: Vec<usize>,
    ) -> Self::Async<T>;

    /// Split this communicator by `color` (`MPI_Comm_split`). Ranks passing
    /// `None` participate in the collective but receive no communicator.
    /// Within each color group, new ranks are ordered by `(key, old rank)`.
    fn split(&self, color: Option<i64>, key: i64) -> Option<Self>;

    // ---- composed collectives (mpisim's decompositions) ------------------

    /// Gather equal-length contributions to `root`, concatenated in rank
    /// order. Other ranks return `None`.
    fn gather<T: Wire>(&self, root: usize, data: &[T]) -> Option<Vec<T>> {
        self.gatherv(root, data)
            .map(|parts| parts.into_iter().flatten().collect())
    }

    /// All ranks obtain the concatenation (rank order) of every rank's
    /// contribution; returns the flat data and per-rank counts.
    fn allgatherv<T: Wire>(&self, data: &[T]) -> (Vec<T>, Vec<usize>) {
        let root = 0;
        let parts = self.gatherv(root, data);
        let (flat, counts) = if self.rank() == root {
            let parts = parts.expect("root has parts");
            let counts: Vec<usize> = parts.iter().map(Vec::len).collect();
            (parts.into_iter().flatten().collect::<Vec<T>>(), counts)
        } else {
            (Vec::new(), Vec::new())
        };
        let counts = self.bcast(
            root,
            if self.rank() == root {
                Some(counts)
            } else {
                None
            },
        );
        let flat = self.bcast(
            root,
            if self.rank() == root {
                Some(flat)
            } else {
                None
            },
        );
        (flat, counts)
    }

    /// All ranks obtain the concatenation of equal-length contributions.
    fn allgather<T: Wire>(&self, data: &[T]) -> Vec<T> {
        self.allgatherv(data).0
    }

    /// Variable all-to-all (`MPI_Alltoallv`): exchanges counts first, then
    /// the data. Returns the received data and per-source counts.
    fn alltoallv<T: Wire>(&self, data: &[T], send_counts: &[usize]) -> (Vec<T>, Vec<usize>) {
        let p = self.size();
        assert_eq!(send_counts.len(), p, "one send count per rank");
        let total: usize = send_counts.iter().sum();
        assert_eq!(total, data.len(), "send counts must cover the data");
        let recv_counts = self.alltoall(send_counts);
        let out = self.alltoallv_given_counts(data, send_counts, &recv_counts);
        (out, recv_counts)
    }

    /// Begin an asynchronous variable all-to-all, exchanging the per-source
    /// receive counts synchronously first.
    fn alltoallv_async<T: Wire>(&self, data: &[T], send_counts: &[usize]) -> Self::Async<T> {
        let recv_counts = self.alltoall(send_counts);
        self.alltoallv_async_given_counts(data, send_counts, recv_counts)
    }

    /// Reduce to `root` with `op`, folding contributions in rank order (so
    /// results are deterministic even for non-commutative closures).
    fn reduce<T: Wire>(&self, root: usize, value: T, op: impl Fn(T, T) -> T) -> Option<T> {
        self.gatherv(root, std::slice::from_ref(&value))
            .map(|parts| {
                parts
                    .into_iter()
                    .flatten()
                    .reduce(op)
                    .expect("at least one contribution")
            })
    }

    /// Allreduce with `op` (deterministic rank-order fold).
    fn allreduce<T: Wire>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        let root = 0;
        let reduced = self.reduce(root, value, op);
        let v = self.bcast(root, reduced.map(|r| vec![r]));
        v.into_iter().next().expect("bcast payload")
    }

    /// Exclusive prefix scan: rank r returns `op` folded over ranks `0..r`,
    /// or `None` on rank 0.
    fn exscan<T: Wire>(&self, value: T, op: impl Fn(T, T) -> T) -> Option<T> {
        let all = self.allgather(std::slice::from_ref(&value));
        let r = self.rank();
        if r == 0 {
            None
        } else {
            all[..r].iter().cloned().reduce(op)
        }
    }

    /// Inclusive prefix scan: rank r returns `op` folded over ranks `0..=r`.
    fn scan<T: Wire>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        let all = self.allgather(std::slice::from_ref(&value));
        all[..=self.rank()]
            .iter()
            .cloned()
            .reduce(op)
            .expect("at least own contribution")
    }

    /// Scatter variable-length chunks from `root`: the root supplies one
    /// vector per rank (in rank order) and every rank returns its chunk.
    /// A traffic-generating primitive (root sends on a reserved collective
    /// tag), so backends implement it natively.
    fn scatterv<T: Wire>(&self, root: usize, chunks: Option<Vec<Vec<T>>>) -> Vec<T>;

    /// Scatter equal-length chunks of `data` from `root` (`MPI_Scatter`).
    fn scatter<T: Wire>(&self, root: usize, data: Option<&[T]>) -> Vec<T> {
        let p = self.size();
        let chunks = if self.rank() == root {
            let data = data.expect("root must supply data");
            assert_eq!(data.len() % p, 0, "scatter requires p equal chunks");
            let len = data.len() / p;
            Some(data.chunks(len).map(<[T]>::to_vec).collect())
        } else {
            None
        };
        self.scatterv(root, chunks)
    }

    /// Reduce-scatter: element-wise reduce a per-rank vector of length `p`
    /// with `op`, then rank r returns element r of the reduction.
    fn reduce_scatter<T: Wire>(&self, contributions: &[T], op: impl Fn(T, T) -> T) -> T {
        let p = self.size();
        assert_eq!(contributions.len(), p, "one contribution per rank");
        let received = self.alltoall(contributions);
        received.into_iter().reduce(op).expect("p >= 1")
    }

    // ---- derived communicators -------------------------------------------

    /// Split into per-node communicators: the returned communicator
    /// connects exactly the ranks of this communicator hosted on the
    /// caller's node, ordered by their rank in this communicator.
    fn split_shared_node(&self) -> Self {
        let node = self.node() as i64;
        self.split(Some(node), self.rank() as i64)
            .expect("every rank has a node")
    }

    /// Communicator connecting the first rank of this communicator on each
    /// node ("node leaders"). Non-leader ranks return `None`.
    fn split_node_leaders(&self) -> Option<Self> {
        let local = self.split_shared_node();
        let am_leader = local.rank() == 0;
        self.split(if am_leader { Some(0) } else { None }, self.rank() as i64)
    }

    /// The paper's `SdssRefineComm`: returns `(cg, cl)` where `cl` connects
    /// the ranks on this node and `cg` (leaders only) connects node leaders.
    fn refine_comm(&self) -> (Option<Self>, Self) {
        let cl = self.split_shared_node();
        let am_leader = cl.rank() == 0;
        let cg = self.split(if am_leader { Some(0) } else { None }, self.rank() as i64);
        (cg, cl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_display_mentions_rank_and_sizes() {
        let e = OomError {
            rank: 3,
            requested: 100,
            available: 10,
            budget: 50,
        };
        let s = e.to_string();
        assert!(s.contains("rank 3"));
        assert!(s.contains("100 B"));
        assert!(s.contains("50 B"));
    }

    #[test]
    fn user_tag_space_is_wide() {
        // 2^48 user tags leave plenty of room for the byte-offset-keyed
        // schemes in pivots.rs while collectives stay above.
        assert!(MAX_USER_TAG > u32::MAX as u64);
    }
}
