//! Bounded per-rank mailboxes: the p2p matching substrate shared by the
//! real backends.
//!
//! One mailbox per world rank; any producer may push (MPSC in spirit,
//! guarded by a mutex in practice) and only the owning rank takes.
//! Matching is by `(context, source, tag)` exactly as in the simulator's
//! mailbox, and per-`(context, source)` arrival order is preserved because
//! the queue is scanned front to back.
//!
//! The queue is *bounded by envelope count*: a full mailbox blocks the
//! producer until the receiver drains, giving real backpressure. The
//! capacity must therefore exceed the largest number of envelopes a
//! correct protocol can leave undrained in one mailbox — for the
//! collectives used here that is `p - 1` data messages per in-flight
//! collective; the backends' world defaults leave a wide margin.
//!
//! This module lives in `comm` (not a specific backend) because three
//! consumers share it:
//!
//! * `crates/shmem` — one mailbox per rank thread; the sending *rank
//!   thread* pushes directly.
//! * `crates/sockcomm` — one mailbox per rank *process*; per-peer socket
//!   reader threads push decoded frames, and the rank's main thread takes.
//!   A full mailbox blocks the reader thread, which stops draining that
//!   peer's socket, which backpressures the remote sender through the
//!   kernel's buffers.
//! * `crates/service` — the job submission queue is a mailbox (contexts
//!   distinguish queues, sources identify client handles, tags carry the
//!   job class); a full queue blocks the submitting client.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// One queued message.
pub struct Envelope {
    /// Communicator context id the message was sent on.
    pub ctx: u64,
    /// World rank of the sender.
    pub src: usize,
    /// Message tag (user or reserved collective space).
    pub tag: u64,
    /// Type-erased payload (`Vec<T>` in-process; raw frame bytes when the
    /// payload arrived over a socket and the element type is not yet known).
    pub data: Box<dyn Any + Send>,
    /// Payload size in bytes (for stats).
    pub bytes: usize,
}

/// Source selector for a take.
#[derive(Clone, Copy)]
pub enum SrcSel {
    /// Match only this world rank.
    Exact(usize),
    /// Match any source (within the context).
    Any,
}

fn matches(env: &Envelope, ctx: u64, src: SrcSel, tag: u64) -> bool {
    env.ctx == ctx
        && env.tag == tag
        && match src {
            SrcSel::Exact(s) => env.src == s,
            SrcSel::Any => true,
        }
}

/// A bounded, abort-aware mailbox.
pub struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl Mailbox {
    /// A mailbox holding at most `capacity` envelopes (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Deliver an envelope, blocking while the mailbox is full. Returns
    /// `false` if the world aborted while waiting (the envelope is
    /// dropped).
    pub fn push(&self, env: Envelope, aborted: &AtomicBool) -> bool {
        let mut q = self.queue.lock().expect("mailbox mutex poisoned");
        while q.len() >= self.capacity {
            if aborted.load(Ordering::SeqCst) {
                return false;
            }
            q = self
                .not_full
                .wait(q)
                .expect("mailbox mutex poisoned while sender waited");
        }
        if aborted.load(Ordering::SeqCst) {
            return false;
        }
        q.push_back(env);
        drop(q);
        self.not_empty.notify_all();
        true
    }

    /// Non-blocking push: deliver `env` if the mailbox has room, else hand
    /// it back to the caller. Lets a submission queue report "queue full"
    /// instead of blocking the client.
    pub fn try_push(&self, env: Envelope) -> Result<(), Envelope> {
        let mut q = self.queue.lock().expect("mailbox mutex poisoned");
        if q.len() >= self.capacity {
            return Err(env);
        }
        q.push_back(env);
        drop(q);
        self.not_empty.notify_all();
        Ok(())
    }

    /// Non-blocking take of the first envelope matching `(ctx, src, tag)`.
    pub fn try_take(&self, ctx: u64, src: SrcSel, tag: u64) -> Option<Envelope> {
        let mut q = self.queue.lock().expect("mailbox mutex poisoned");
        let pos = q.iter().position(|e| matches(e, ctx, src, tag))?;
        let env = q.remove(pos).expect("position found above");
        drop(q);
        self.not_full.notify_all();
        Some(env)
    }

    /// Blocking take of the first envelope matching `(ctx, src, tag)`.
    /// Returns `None` if the world aborted while waiting.
    pub fn take(&self, ctx: u64, src: SrcSel, tag: u64, aborted: &AtomicBool) -> Option<Envelope> {
        let mut q = self.queue.lock().expect("mailbox mutex poisoned");
        loop {
            if let Some(pos) = q.iter().position(|e| matches(e, ctx, src, tag)) {
                let env = q.remove(pos).expect("position found above");
                drop(q);
                self.not_full.notify_all();
                return Some(env);
            }
            if aborted.load(Ordering::SeqCst) {
                return None;
            }
            q = self
                .not_empty
                .wait(q)
                .expect("mailbox mutex poisoned while receiver waited");
        }
    }

    /// Wake every waiter (sender or receiver) so it can observe an abort.
    pub fn interrupt(&self) {
        // Take the lock so wake-ups cannot race ahead of the abort-flag
        // store in a waiter that is between its check and its wait.
        drop(self.queue.lock().expect("mailbox mutex poisoned"));
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(src: usize, tag: u64) -> Envelope {
        Envelope {
            ctx: 0,
            src,
            tag,
            data: Box::new(vec![0u8]),
            bytes: 1,
        }
    }

    #[test]
    fn matches_by_ctx_src_tag_in_fifo_order() {
        let mb = Mailbox::new(16);
        let ab = AtomicBool::new(false);
        assert!(mb.push(env(1, 7), &ab));
        assert!(mb.push(env(2, 7), &ab));
        assert!(mb.push(env(1, 9), &ab));
        let got = mb.try_take(0, SrcSel::Exact(1), 7).expect("queued");
        assert_eq!((got.src, got.tag), (1, 7));
        let got = mb.try_take(0, SrcSel::Any, 7).expect("queued");
        assert_eq!(got.src, 2);
        assert!(mb.try_take(0, SrcSel::Exact(2), 9).is_none());
        assert!(mb.try_take(1, SrcSel::Exact(1), 9).is_none(), "wrong ctx");
        assert!(mb.try_take(0, SrcSel::Exact(1), 9).is_some());
    }

    #[test]
    fn bounded_push_blocks_until_drained() {
        let mb = Arc::new(Mailbox::new(2));
        let ab = Arc::new(AtomicBool::new(false));
        assert!(mb.push(env(0, 1), &ab));
        assert!(mb.push(env(0, 1), &ab));
        let (mb2, ab2) = (Arc::clone(&mb), Arc::clone(&ab));
        let sender = std::thread::spawn(move || mb2.push(env(0, 1), &ab2));
        // The third push cannot complete until we take one out.
        std::thread::yield_now();
        assert!(mb.take(0, SrcSel::Any, 1, &ab).is_some());
        assert!(sender.join().expect("sender thread"));
        // Queue now holds the two remaining envelopes.
        assert!(mb.try_take(0, SrcSel::Any, 1).is_some());
        assert!(mb.try_take(0, SrcSel::Any, 1).is_some());
        assert!(mb.try_take(0, SrcSel::Any, 1).is_none());
    }

    #[test]
    fn interrupt_unblocks_receiver_on_abort() {
        let mb = Arc::new(Mailbox::new(4));
        let ab = Arc::new(AtomicBool::new(false));
        let (mb2, ab2) = (Arc::clone(&mb), Arc::clone(&ab));
        let receiver = std::thread::spawn(move || mb2.take(0, SrcSel::Any, 1, &ab2));
        std::thread::yield_now();
        ab.store(true, Ordering::SeqCst);
        mb.interrupt();
        assert!(receiver.join().expect("receiver thread").is_none());
    }
}
