//! Wire encoding for message payloads.
//!
//! The simulator and the threads backend move payloads through one address
//! space, so they never serialize: a `Vec<T>` is boxed, handed over, and
//! downcast on the receiving rank. A *distributed* backend (process per
//! rank over sockets, `crates/sockcomm`) has no shared address space — every
//! payload must cross the wire as bytes. [`Wire`] is the contract that makes
//! that possible: any `T` sent through a [`crate::Communicator`] knows how to
//! encode itself onto a byte buffer and decode itself back.
//!
//! ## Format
//!
//! Host-native byte order, fixed layouts per type (documented on each impl).
//! The format never crosses machines: the launcher re-execs *the same
//! binary* for every rank on one host, so native endianness and pointer
//! width are identical on both ends by construction. What the format *does*
//! guarantee is self-consistency: `get` inverts `put` and `get_vec` inverts
//! `put_slice`, byte for byte.
//!
//! ## Zero-copy record buffers
//!
//! The hot path of a sort exchange is a large `Vec<K>` of keys or records.
//! For the primitive pod types (no padding, every bit pattern valid — the
//! same contract as `sdssort`'s `PlainData`), [`Wire::put_slice`] and
//! [`Wire::get_vec`] are overridden with a single `memcpy` instead of an
//! element loop, so encoding a million-key buffer costs one copy.
//! Composite types (tuples, `Record`-style structs with padding) fall back
//! to the element-wise loop, which sidesteps padding bytes entirely.

/// A value that can cross a process boundary as bytes.
///
/// Implementations must be self-consistent round-trips:
/// `get(put(x)) == x` and `get_vec(put_slice(xs)) == xs`. Decoding must be
/// total over the format — malformed input returns `None`, never panics —
/// because the bytes arrive from another process.
pub trait Wire: Clone + Send + 'static {
    /// Append this value's encoding to `out`.
    fn put(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `src`, advancing the slice past
    /// the consumed bytes. `None` if `src` is truncated or malformed.
    fn get(src: &mut &[u8]) -> Option<Self>;

    /// Bulk-encode a slice (element-wise by default; pod types override
    /// with a single copy).
    fn put_slice(items: &[Self], out: &mut Vec<u8>) {
        for item in items {
            item.put(out);
        }
    }

    /// Decode an entire buffer into a vector, consuming every byte. `None`
    /// if the buffer is truncated mid-element or has trailing garbage
    /// (pod override: length not a multiple of the element size).
    fn get_vec(src: &[u8]) -> Option<Vec<Self>> {
        let mut cursor = src;
        let mut out = Vec::new();
        while !cursor.is_empty() {
            out.push(Self::get(&mut cursor)?);
        }
        Some(out)
    }
}

/// Split `count` bytes off the front of `src`, advancing it.
#[inline]
fn take<'a>(src: &mut &'a [u8], count: usize) -> Option<&'a [u8]> {
    if src.len() < count {
        return None;
    }
    let (head, tail) = src.split_at(count);
    *src = tail;
    Some(head)
}

/// Implements [`Wire`] for pod scalars: no padding, every bit pattern
/// valid, encoded as their native-endian bytes. Bulk paths are a single
/// `memcpy` of the whole buffer.
macro_rules! wire_pod {
    ($($ty:ty),+ $(,)?) => {$(
        impl Wire for $ty {
            #[inline]
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_ne_bytes());
            }

            #[inline]
            fn get(src: &mut &[u8]) -> Option<Self> {
                let bytes = take(src, std::mem::size_of::<$ty>())?;
                Some(<$ty>::from_ne_bytes(bytes.try_into().ok()?))
            }

            fn put_slice(items: &[Self], out: &mut Vec<u8>) {
                // SAFETY: `$ty` is a primitive scalar — no padding bytes,
                // so every byte of the slice is initialized and may be
                // viewed as `u8`.
                let bytes = unsafe {
                    std::slice::from_raw_parts(
                        items.as_ptr().cast::<u8>(),
                        std::mem::size_of_val(items),
                    )
                };
                out.extend_from_slice(bytes);
            }

            fn get_vec(src: &[u8]) -> Option<Vec<Self>> {
                let size = std::mem::size_of::<$ty>();
                if src.len() % size != 0 {
                    return None;
                }
                let n = src.len() / size;
                let mut out = Vec::<$ty>::with_capacity(n);
                // SAFETY: every bit pattern of `$ty` is a valid value, the
                // destination has capacity for `n` elements, and the source
                // holds exactly `n * size` bytes (checked above).
                // `copy_nonoverlapping` via u8 pointers tolerates any
                // source alignment.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        src.as_ptr(),
                        out.as_mut_ptr().cast::<u8>(),
                        src.len(),
                    );
                    out.set_len(n);
                }
                Some(out)
            }
        }
    )+};
}

wire_pod!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

// `usize`/`isize` encode as their native width (the two ends are the same
// binary on the same host, so widths agree by construction).
wire_pod!(usize, isize);

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn get(src: &mut &[u8]) -> Option<Self> {
        match u8::get(src)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Wire for char {
    fn put(&self, out: &mut Vec<u8>) {
        u32::from(*self).put(out);
    }

    fn get(src: &mut &[u8]) -> Option<Self> {
        char::from_u32(u32::get(src)?)
    }
}

/// Length-prefixed (u64 count) UTF-8 bytes.
impl Wire for String {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u64).put(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn get(src: &mut &[u8]) -> Option<Self> {
        let len = usize::try_from(u64::get(src)?).ok()?;
        let bytes = take(src, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// Length-prefixed (u64 count) element sequence.
impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u64).put(out);
        for item in self {
            item.put(out);
        }
    }

    fn get(src: &mut &[u8]) -> Option<Self> {
        let len = usize::try_from(u64::get(src)?).ok()?;
        // Cap the pre-allocation: a corrupt length must not OOM the decoder.
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::get(src)?);
        }
        Some(out)
    }
}

/// One presence byte, then the value.
impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.put(out);
            }
        }
    }

    fn get(src: &mut &[u8]) -> Option<Self> {
        match u8::get(src)? {
            0 => Some(None),
            1 => Some(Some(T::get(src)?)),
            _ => None,
        }
    }
}

/// Fixed-count element sequence (no length prefix; the count is the type).
impl<T: Wire + Copy + Default, const N: usize> Wire for [T; N] {
    fn put(&self, out: &mut Vec<u8>) {
        for item in self {
            item.put(out);
        }
    }

    fn get(src: &mut &[u8]) -> Option<Self> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::get(src)?;
        }
        Some(out)
    }
}

macro_rules! wire_tuple {
    ($(($($name:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn put(&self, out: &mut Vec<u8>) {
                $(self.$idx.put(out);)+
            }

            fn get(src: &mut &[u8]) -> Option<Self> {
                Some(($($name::get(src)?,)+))
            }
        }
    )+};
}

wire_tuple!(
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6),
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7),
);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.put(&mut buf);
        let mut src = &buf[..];
        assert_eq!(T::get(&mut src), Some(v));
        assert!(src.is_empty(), "decode must consume every byte");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(u64::MAX);
        round_trip(-17i64);
        round_trip(u128::MAX - 5);
        round_trip(3.25f64);
        round_trip(f32::NEG_INFINITY);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip('λ');
    }

    #[test]
    fn composites_round_trip() {
        round_trip("hëllo wire".to_string());
        round_trip(String::new());
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(Some(42u64));
        round_trip(Option::<u64>::None);
        round_trip((1u8, 2u64, -3i32));
        round_trip((true, Some(7u64), "x".to_string(), vec![1u16]));
        round_trip([1.5f32, -2.0, 0.0]);
        round_trip((false, Option::<u64>::None, Option::<u64>::Some(9)));
    }

    #[test]
    fn bulk_pod_matches_element_wise() {
        let items: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut bulk = Vec::new();
        u64::put_slice(&items, &mut bulk);
        let mut elem = Vec::new();
        for it in &items {
            it.put(&mut elem);
        }
        assert_eq!(bulk, elem, "pod bulk path must match the element loop");
        assert_eq!(u64::get_vec(&bulk), Some(items));
    }

    #[test]
    fn get_vec_rejects_ragged_pod_buffers() {
        let mut buf = Vec::new();
        u64::put_slice(&[1u64, 2], &mut buf);
        buf.pop();
        assert_eq!(u64::get_vec(&buf), None);
    }

    #[test]
    fn truncation_is_detected_not_panicking() {
        let mut buf = Vec::new();
        ("abc".to_string(), 7u64).put(&mut buf);
        for cut in 0..buf.len() {
            let mut src = &buf[..cut];
            assert_eq!(<(String, u64)>::get(&mut src), None, "cut at {cut}");
        }
    }

    #[test]
    fn bogus_discriminants_rejected() {
        let mut src: &[u8] = &[2u8];
        assert_eq!(bool::get(&mut src), None);
        let mut src: &[u8] = &[9u8, 0, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(Option::<u64>::get(&mut src), None);
        // Surrogate code point is not a char.
        let mut buf = Vec::new();
        0xD800u32.put(&mut buf);
        let mut src = &buf[..];
        assert_eq!(char::get(&mut src), None);
    }

    #[test]
    fn corrupt_vec_length_does_not_preallocate_unbounded() {
        let mut buf = Vec::new();
        u64::MAX.put(&mut buf); // absurd element count, no elements
        let mut src = &buf[..];
        assert_eq!(Vec::<u64>::get(&mut src), None);
    }
}
